//===- service/Service.cpp - Batch DVS-scheduling service ------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include "dvs/DvsScheduler.h"
#include "dvs/ScheduleIO.h"
#include "milp/Fingerprint.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "power/VfModel.h"
#include "support/Clock.h"
#include "support/Hash.h"
#include "taskgraph/Online.h"
#include "taskgraph/PlanIO.h"
#include "verify/TaskGraphChecker.h"
#include "verify/Verify.h"
#include "workloads/Workloads.h"

#include <algorithm>

using namespace cdvs;

const char *cdvs::jobStatusName(JobStatus Status) {
  switch (Status) {
  case JobStatus::Done:
    return "done";
  case JobStatus::Rejected:
    return "rejected";
  case JobStatus::Infeasible:
    return "infeasible";
  case JobStatus::Failed:
    return "failed";
  }
  cdvsUnreachable("bad JobStatus");
}

const char *cdvs::verifyModeName(VerifyMode Mode) {
  switch (Mode) {
  case VerifyMode::Off:
    return "off";
  case VerifyMode::Warn:
    return "warn";
  case VerifyMode::Strict:
    return "strict";
  }
  cdvsUnreachable("bad VerifyMode");
}

bool cdvs::parseVerifyMode(const std::string &Text, VerifyMode &Out) {
  if (Text == "off")
    Out = VerifyMode::Off;
  else if (Text == "warn")
    Out = VerifyMode::Warn;
  else if (Text == "strict")
    Out = VerifyMode::Strict;
  else
    return false;
  return true;
}

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point T0) {
  return std::chrono::duration<double>(Clock::now() - T0).count();
}

/// The service's workload registry, built once per process. Workload
/// functions are immutable after construction, so sharing them across
/// worker threads is safe.
const std::map<std::string, Workload> &workloadRegistry() {
  static const std::map<std::string, Workload> Registry = [] {
    std::map<std::string, Workload> M;
    for (Workload &W : allWorkloads())
      M.emplace(W.Name, std::move(W));
    return M;
  }();
  return Registry;
}

std::string knownWorkloadNames() {
  std::string Names;
  for (const auto &[Name, W] : workloadRegistry())
    Names += (Names.empty() ? "" : ", ") + Name;
  return Names;
}

/// Content digest of a mode table, for profile-cache keys.
std::string modeTableDigest(const ModeTable &Modes) {
  HashBuilder H;
  H.add(static_cast<uint64_t>(Modes.size()));
  for (const VoltageLevel &L : Modes.levels()) {
    H.add(L.Volts);
    H.add(L.Hertz);
  }
  return H.digest();
}

/// Deadline-free lower bound on any schedule's energy: every block at
/// its cheapest mode, transitions free. Valid because transition
/// energies are nonnegative and every k[e][m] choice pays at least the
/// cheapest per-invocation energy of the destination block.
double energyLowerBound(const std::vector<CategoryProfile> &Categories) {
  double Bound = 0.0;
  for (const CategoryProfile &C : Categories) {
    double CatBound = 0.0;
    const Profile &P = C.Data;
    for (int J = 0; J < P.NumBlocks; ++J) {
      if (P.EnergyPerInvocation[J].empty())
        continue;
      double Cheapest = P.EnergyPerInvocation[J][0];
      for (double E : P.EnergyPerInvocation[J])
        Cheapest = std::min(Cheapest, E);
      CatBound +=
          static_cast<double>(P.BlockExecs[J]) * Cheapest;
    }
    Bound += C.Probability * CatBound;
  }
  return Bound;
}

/// Process-registry handles for the service pipeline, resolved once.
/// Job terminal states are counters; queue depth is a gauge pair
/// (instantaneous + monotone peak); stage latencies share one histogram
/// family keyed by a `stage` label so dashboards can overlay them.
struct ServiceMetrics {
  obs::Counter &Submitted, &Rejected, &Completed, &Infeasible, &Failed;
  obs::Counter &VerifyFailures;
  obs::Counter &PresolveVarsFixed, &PresolveRowsDropped, &PresolveDeadGroups;
  obs::Gauge &QueueDepth, &QueueDepthPeak;
  obs::Histogram &Queue, &Profile, &Bound, &Analyze, &Solve, &Serialize,
      &Total;
  obs::Histogram &PresolveSeconds;
};

ServiceMetrics &serviceMetrics() {
  auto stageHist = [](const char *Stage) -> obs::Histogram & {
    return obs::metrics().histogram(
        "cdvs_stage_latency_seconds",
        "Per-stage job latency through the scheduling pipeline",
        obs::latencyBucketsSeconds(), obs::Labels{{"stage", Stage}});
  };
  static ServiceMetrics M{
      obs::metrics().counter("cdvs_jobs_submitted_total",
                             "Jobs accepted into the admission queue"),
      obs::metrics().counter("cdvs_jobs_rejected_total",
                             "Jobs refused at admission"),
      obs::metrics().counter("cdvs_jobs_completed_total",
                             "Jobs that produced a schedule"),
      obs::metrics().counter("cdvs_jobs_infeasible_total",
                             "Jobs whose deadline no schedule can meet"),
      obs::metrics().counter("cdvs_jobs_failed_total",
                             "Jobs that failed (malformed or transient)"),
      obs::metrics().counter(
          "cdvs_verify_failures_total",
          "Jobs whose post-solve verification drew errors"),
      obs::metrics().counter(
          "cdvs_presolve_vars_fixed_total",
          "MILP variables eliminated by the certified presolve"),
      obs::metrics().counter(
          "cdvs_presolve_rows_dropped_total",
          "MILP rows dropped by the certified presolve"),
      obs::metrics().counter(
          "cdvs_presolve_dead_groups_total",
          "Presolve-fixed edge groups that were statically dead"),
      obs::metrics().gauge("cdvs_admission_queue_depth",
                           "Jobs currently pending admission"),
      obs::metrics().gauge("cdvs_admission_queue_depth_peak",
                           "Deepest the admission queue has been"),
      stageHist("queue"),
      stageHist("profile"),
      stageHist("bound"),
      stageHist("analyze"),
      stageHist("solve"),
      stageHist("serialize"),
      stageHist("total"),
      obs::metrics().histogram(
          "cdvs_presolve_seconds",
          "Time spent in the certified MILP presolve per fresh solve",
          obs::latencyBucketsSeconds()),
  };
  return M;
}

/// Task-graph pipeline instruments. The replan counters live in
/// taskgraph/Online.cpp next to the loop that drives them; these cover
/// the service-side job accounting.
struct GraphMetrics {
  obs::Counter &Jobs, &Tasks;
  obs::Histogram &Plan;
};

GraphMetrics &graphMetrics() {
  static GraphMetrics M{
      obs::metrics().counter("cdvs_taskgraph_jobs_total",
                             "Task-graph jobs executed (fresh or cached)"),
      obs::metrics().counter("cdvs_taskgraph_tasks_total",
                             "Tasks across all executed task-graph jobs"),
      obs::metrics().histogram(
          "cdvs_taskgraph_plan_seconds",
          "Static plan + online re-plan time per fresh graph solve",
          obs::latencyBucketsSeconds()),
  };
  return M;
}

} // namespace

SchedulerService::SchedulerService(ServiceOptions Options)
    : Opts(Options), Cache(Options.CacheCapacity, Options.CacheShards),
      Paused(Options.StartPaused), Pool(Options.NumWorkers) {
  for (int W = 0; W < Pool.numThreads(); ++W)
    Pool.submit([this] { workerLoop(); });
}

SchedulerService::~SchedulerService() { shutdown(); }

std::string SchedulerService::admit(std::unique_ptr<PendingJob> &Job) {
  obs::TraceSpan Admit("admit", "service");

  // Urgency: tighter deadlines run first. Absolute deadlines and
  // tightness fractions are both "smaller = more stringent"; mixing the
  // two in one queue is a heuristic, but batches are normally uniform.
  double Urgency = Job->Request.DeadlineSeconds > 0.0
                       ? Job->Request.DeadlineSeconds
                       : Job->Request.DeadlineTightness;

  std::string RejectReason;
  size_t Depth = 0;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Stopping) {
      RejectReason = "service is shutting down";
    } else if (Queue.size() >= Opts.QueueCapacity) {
      RejectReason = "queue full (capacity " +
                     std::to_string(Opts.QueueCapacity) + ", " +
                     std::to_string(Queue.size()) + " jobs pending)";
    } else {
      Job->Enqueued = Clock::now();
      Queue.emplace(QueueKey{Urgency, AdmitSeq++}, std::move(Job));
      Depth = Queue.size();
    }
  }
  Admit.arg("queue_depth", static_cast<double>(Depth));

  ServiceMetrics &M = serviceMetrics();
  if (!RejectReason.empty()) {
    M.Rejected.inc();
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Counters.Rejected;
  } else {
    M.Submitted.inc();
    M.QueueDepth.set(static_cast<double>(Depth));
    M.QueueDepthPeak.max(static_cast<double>(Depth));
    {
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Counters.Submitted;
      Counters.PeakQueueDepth = std::max(Counters.PeakQueueDepth, Depth);
    }
    Cv.notify_one();
  }
  return RejectReason;
}

std::future<JobResult> SchedulerService::submit(JobRequest Request) {
  auto Job = std::make_unique<PendingJob>();
  Job->Request = std::move(Request);
  std::future<JobResult> Fut = Job->Promise.get_future();

  std::string RejectReason = admit(Job);
  if (!RejectReason.empty()) {
    JobResult R;
    R.Id = Job->Request.Id;
    R.Status = JobStatus::Rejected;
    R.Reason = RejectReason;
    Job->Promise.set_value(std::move(R));
  }
  return Fut;
}

bool SchedulerService::submitAsync(JobRequest Request,
                                   std::function<void(JobResult)> OnDone) {
  assert(OnDone && "submitAsync needs a completion callback");
  auto Job = std::make_unique<PendingJob>();
  Job->Request = std::move(Request);
  Job->OnDone = std::move(OnDone);

  std::string RejectReason = admit(Job);
  if (RejectReason.empty())
    return true;
  JobResult R;
  R.Id = Job->Request.Id;
  R.Status = JobStatus::Rejected;
  R.Reason = RejectReason;
  Job->OnDone(std::move(R));
  return false;
}

std::vector<JobResult>
SchedulerService::runBatch(std::vector<JobRequest> Requests) {
  std::vector<std::future<JobResult>> Futures;
  Futures.reserve(Requests.size());
  for (JobRequest &R : Requests)
    Futures.push_back(submit(std::move(R)));
  std::vector<JobResult> Results;
  Results.reserve(Futures.size());
  for (std::future<JobResult> &F : Futures)
    Results.push_back(F.get());
  return Results;
}

void SchedulerService::pause() {
  std::lock_guard<std::mutex> Lock(Mu);
  Paused = true;
}

void SchedulerService::resume() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Paused = false;
  }
  Cv.notify_all();
}

void SchedulerService::shutdown() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopping = true;
  }
  Cv.notify_all();
  Pool.shutdown(); // joins the worker loops; they drain the queue first
}

ServiceStats SchedulerService::stats() const {
  std::lock_guard<std::mutex> Lock(StatsMu);
  return Counters;
}

CacheStats SchedulerService::cacheStats() const { return Cache.stats(); }

void SchedulerService::workerLoop() {
  for (;;) {
    std::unique_ptr<PendingJob> Job;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      Cv.wait(Lock, [this] {
        return Stopping || (!Paused && !Queue.empty());
      });
      if (Queue.empty()) {
        if (Stopping)
          return;
        continue;
      }
      if (Paused && !Stopping)
        continue; // re-check the predicate; shutdown overrides pause
      auto It = Queue.begin();
      Job = std::move(It->second);
      Queue.erase(It);
      serviceMetrics().QueueDepth.set(
          static_cast<double>(Queue.size()));
    }
    long Seq = DequeueSeq.fetch_add(1, std::memory_order_relaxed);
    double QueueSeconds =
        std::chrono::duration<double>(Clock::now() - Job->Enqueued)
            .count();
    JobResult R = execute(Job->Request, QueueSeconds, Seq);
    ServiceMetrics &M = serviceMetrics();
    {
      std::lock_guard<std::mutex> Lock(StatsMu);
      switch (R.Status) {
      case JobStatus::Done:
        ++Counters.Completed;
        M.Completed.inc();
        break;
      case JobStatus::Infeasible:
        ++Counters.Infeasible;
        M.Infeasible.inc();
        break;
      default:
        ++Counters.Failed;
        M.Failed.inc();
        break;
      }
    }
    if (Job->OnDone)
      Job->OnDone(std::move(R));
    else
      Job->Promise.set_value(std::move(R));
  }
}

ErrorOr<std::vector<CategoryProfile>>
SchedulerService::profileStage(const JobRequest &Request,
                               const ModeTable &Modes,
                               double *ProfileSeconds) {
  auto RegIt = workloadRegistry().find(Request.Workload);
  if (RegIt == workloadRegistry().end())
    return makeError("unknown workload '" + Request.Workload +
                     "' (known: " + knownWorkloadNames() + ")");
  const Workload &W = RegIt->second;

  // Default category: the workload's first input, weight 1.
  std::vector<JobCategory> Categories = Request.Categories;
  if (Categories.empty())
    Categories.push_back({W.Inputs.front().Name, 1.0});

  double WeightSum = 0.0;
  for (const JobCategory &C : Categories) {
    if (C.Weight <= 0.0)
      return makeError("category weight must be positive (input '" +
                       C.Input + "')");
    WeightSum += C.Weight;
  }

  std::string ModesKey = modeTableDigest(Modes);
  std::vector<CategoryProfile> Out;
  Out.reserve(Categories.size());
  for (const JobCategory &C : Categories) {
    ErrorOr<std::shared_ptr<const Profile>> Cached =
        profileOne(Request.Workload, C.Input, Modes, ModesKey,
                   ProfileSeconds);
    if (!Cached)
      return makeError(Cached.message());
    Out.push_back({**Cached, C.Weight / WeightSum});
  }
  return Out;
}

ErrorOr<std::shared_ptr<const Profile>>
SchedulerService::profileOne(const std::string &WorkloadName,
                             const std::string &InputName,
                             const ModeTable &Modes,
                             const std::string &ModesKey,
                             double *ProfileSeconds) {
  auto RegIt = workloadRegistry().find(WorkloadName);
  if (RegIt == workloadRegistry().end())
    return makeError("unknown workload '" + WorkloadName +
                     "' (known: " + knownWorkloadNames() + ")");
  const Workload &W = RegIt->second;
  const std::string &Wanted =
      InputName.empty() ? W.Inputs.front().Name : InputName;
  const WorkloadInput *Input = nullptr;
  for (const WorkloadInput &In : W.Inputs)
    if (In.Name == Wanted)
      Input = &In;
  if (!Input) {
    std::string Known;
    for (const WorkloadInput &In : W.Inputs)
      Known += (Known.empty() ? "" : ", ") + In.Name;
    return makeError("unknown input '" + Wanted + "' for workload '" +
                     WorkloadName + "' (known: " + Known + ")");
  }

  std::string Key = WorkloadName + "\x1f" + Wanted + "\x1f" + ModesKey;
  std::shared_ptr<const Profile> Cached;
  {
    std::lock_guard<std::mutex> Lock(ProfileMu);
    auto It = ProfileCache.find(Key);
    if (It != ProfileCache.end())
      Cached = It->second;
  }
  if (!Cached) {
    // Collect outside the lock: profiling runs the simulator once per
    // mode. A racing duplicate collection is idempotent.
    auto T0 = Clock::now();
    Simulator Sim(*W.Fn);
    Input->Setup(Sim);
    auto Collected =
        std::make_shared<const Profile>(collectProfile(Sim, Modes));
    *ProfileSeconds += secondsSince(T0);
    std::lock_guard<std::mutex> Lock(ProfileMu);
    // If a racing worker inserted first, its (identical) profile wins.
    Cached = ProfileCache.emplace(Key, Collected).first->second;
    std::lock_guard<std::mutex> SLock(StatsMu);
    ++Counters.ProfileCacheMisses;
  } else {
    std::lock_guard<std::mutex> SLock(StatsMu);
    ++Counters.ProfileCacheHits;
  }
  return Cached;
}

JobResult SchedulerService::execute(const JobRequest &Request,
                                    double QueueSeconds, long DequeueSeq) {
  if (Request.Graph)
    return executeGraph(Request, QueueSeconds, DequeueSeq);
  // Requests that arrived over the wire carry a distributed trace
  // context; installing it here makes every pipeline span below (job,
  // profile, bound, solve, peer_fill, serialize, verify) a child of
  // the sender's span under one trace id.
  obs::SpanContext Ctx;
  Ctx.TraceHi = Request.TraceHi;
  Ctx.TraceLo = Request.TraceLo;
  Ctx.Span = Request.TraceParentSpan;
  Ctx.Sampled = Request.TraceSampled;
  obs::ScopedSpanContext CtxGuard(Ctx);
  obs::TraceSpan JobSpan("job", "service");
  JobSpan.arg("dequeue_seq", static_cast<double>(DequeueSeq));
  auto T0 = Clock::now();
  JobResult R;
  R.Id = Request.Id;
  R.QueueSeconds = QueueSeconds;
  R.DequeueSeq = DequeueSeq;

  auto finish = [&](JobStatus Status, std::string Reason = "") {
    R.Status = Status;
    R.Reason = std::move(Reason);
    R.TotalSeconds = QueueSeconds + secondsSince(T0);
    ServiceMetrics &M = serviceMetrics();
    M.Queue.observe(R.QueueSeconds);
    M.Total.observe(R.TotalSeconds);
    // Per-stage observations only for stages the job reached; a
    // validation failure should not pollute the profile histogram with
    // zeros.
    if (R.ProfileSeconds > 0.0 || Status == JobStatus::Done)
      M.Profile.observe(R.ProfileSeconds);
    if (R.BoundSeconds > 0.0 || Status == JobStatus::Done)
      M.Bound.observe(R.BoundSeconds);
    if (Status == JobStatus::Done && !R.CacheHit && !R.SharedFlight) {
      M.Solve.observe(R.SolveSeconds);
      M.Serialize.observe(R.SerializeSeconds);
    }
    return R;
  };

  // Request validation (stage 0): reject malformed knobs with reasons.
  if (Request.Workload.empty())
    return finish(JobStatus::Failed, "missing workload name");
  if (Request.FilterThreshold < 0.0 || Request.FilterThreshold >= 1.0)
    return finish(JobStatus::Failed,
                  "filter threshold must be in [0, 1)");
  if (Request.DeadlineSeconds <= 0.0 && Request.DeadlineTightness < 0.0)
    return finish(JobStatus::Failed,
                  "deadline tightness must be nonnegative");
  if (Request.NumLevels != 0 &&
      (Request.NumLevels < 2 || Request.NumLevels > 64))
    return finish(JobStatus::Failed,
                  "voltage level count must be 0 (XScale table) or in "
                  "[2, 64]");
  if (Request.CapacitanceF < 0.0)
    return finish(JobStatus::Failed,
                  "regulator capacitance must be nonnegative");

  ModeTable Modes =
      Request.NumLevels == 0
          ? ModeTable::xscale3()
          : ModeTable::evenVoltageLevels(Request.NumLevels, 0.7, 1.65,
                                         VfModel::paperDefault());
  int InitialMode = Request.InitialMode < 0
                        ? static_cast<int>(Modes.size()) - 1
                        : Request.InitialMode;
  if (InitialMode >= static_cast<int>(Modes.size()))
    return finish(JobStatus::Failed,
                  "initial mode " + std::to_string(InitialMode) +
                      " out of range (table has " +
                      std::to_string(Modes.size()) + " modes)");
  TransitionModel Transitions(Request.CapacitanceF, 0.9, 1.0);

  // Stage 1: profiles (memoized).
  ErrorOr<std::vector<CategoryProfile>> Profiled = [&] {
    obs::TraceSpan Span("profile", "service");
    return profileStage(Request, Modes, &R.ProfileSeconds);
  }();
  if (!Profiled)
    return finish(JobStatus::Failed, Profiled.message());
  std::vector<CategoryProfile> &Categories = *Profiled;

  // Stage 2: deadline resolution, early feasibility, lower bound, and
  // the instance fingerprint (all the analytic, pre-MILP work).
  obs::TraceSpan BoundSpan("bound", "service");
  uint64_t BoundT0 = monotonicNanos();
  std::vector<double> Deadlines(Categories.size(), 0.0);
  for (size_t C = 0; C < Categories.size(); ++C) {
    const Profile &P = Categories[C].Data;
    double TFast = P.TotalTimeAtMode.back();
    double TSlow = P.TotalTimeAtMode.front();
    Deadlines[C] =
        Request.DeadlineSeconds > 0.0
            ? Request.DeadlineSeconds
            : TFast + Request.DeadlineTightness * (TSlow - TFast);
    if (Deadlines[C] < TFast) {
      R.BoundSeconds = nanosToSeconds(monotonicNanos() - BoundT0);
      return finish(
          JobStatus::Infeasible,
          "deadline " + std::to_string(Deadlines[C] * 1e3) +
              " ms is below the fastest single-mode time " +
              std::to_string(TFast * 1e3) + " ms (category " +
              std::to_string(C) + ")");
    }
  }
  R.DeadlineSeconds = Deadlines.front();
  R.LowerBoundJoules = energyLowerBound(Categories);

  // Stage 3: fingerprint, then solve through the content-addressed
  // cache with single-flight deduplication.
  R.Fingerprint = fingerprintDvsInstance(
      Categories, Deadlines, Modes, Transitions, Request.FilterThreshold,
      InitialMode);
  R.BoundSeconds = nanosToSeconds(monotonicNanos() - BoundT0);
  BoundSpan.end();

  const Workload &W = workloadRegistry().at(Request.Workload);

  // Analyze stage: static CFG analysis feeding the certified presolve,
  // computed once per workload and shared across workers (the facts are
  // profile-independent).
  std::shared_ptr<const analysis::FunctionAnalysis> FA;
  if (Opts.Presolve) {
    obs::TraceSpan AnalyzeSpan("analyze", "service");
    uint64_t AnalyzeT0 = monotonicNanos();
    {
      std::lock_guard<std::mutex> Lock(AnalysisMu);
      auto It = AnalysisCache.find(Request.Workload);
      if (It != AnalysisCache.end())
        FA = It->second;
    }
    bool Hit = FA != nullptr;
    if (!FA) {
      // Compute outside the lock; a racing duplicate is idempotent.
      auto Computed = std::make_shared<const analysis::FunctionAnalysis>(
          analysis::analyzeFunction(*W.Fn));
      std::lock_guard<std::mutex> Lock(AnalysisMu);
      FA = AnalysisCache.emplace(Request.Workload, Computed).first->second;
    }
    serviceMetrics().Analyze.observe(
        nanosToSeconds(monotonicNanos() - AnalyzeT0));
    AnalyzeSpan.arg("cache_hit", Hit ? 1.0 : 0.0);
  }

  double LowerBound = R.LowerBoundJoules;
  std::string TransientError;
  obs::TraceSpan SolveSpan("solve", "service");
  ResultCache::Lookup L = Cache.getOrCompute(
      R.Fingerprint,
      [&]() -> std::shared_ptr<const CachedSchedule> {
        if (Opts.PeerFill) {
          // Cluster mode: a key that migrated here on a ring rebuild may
          // already be solved on its previous owner — fetch beats a cold
          // MILP by orders of magnitude. Misses fall through to solving.
          obs::TraceSpan FillSpan("peer_fill", "service");
          std::shared_ptr<const CachedSchedule> Fetched =
              Opts.PeerFill(Request, R.Fingerprint);
          FillSpan.arg("hit", Fetched ? 1.0 : 0.0);
          if (Fetched) {
            std::lock_guard<std::mutex> Lock(StatsMu);
            ++Counters.PeerFills;
            return Fetched;
          }
        }
        DvsOptions O;
        O.FilterThreshold = Request.FilterThreshold;
        O.InitialMode = InitialMode;
        O.Milp.NumThreads = Opts.MilpThreadsPerJob;
        // The certificate pass needs the exact MILP instance and raw
        // solution the scheduler otherwise discards.
        O.KeepArtifacts = Opts.Verify != VerifyMode::Off;
        O.Presolve = Opts.Presolve;
        O.Analysis = FA.get();
        DvsScheduler Scheduler(*W.Fn, Categories, Modes, Transitions, O);
        auto TSolve = Clock::now();
        ErrorOr<ScheduleResult> SR = Scheduler.schedule(Deadlines);
        if (SR && Opts.Presolve) {
          ServiceMetrics &M = serviceMetrics();
          M.PresolveVarsFixed.inc(SR->PresolveVarsFixed);
          M.PresolveRowsDropped.inc(SR->PresolveRowsDropped);
          M.PresolveDeadGroups.inc(SR->PresolveDeadGroups);
          M.PresolveSeconds.observe(SR->PresolveSeconds);
        }
        auto C = std::make_shared<CachedSchedule>();
        C->SolveSeconds = secondsSince(TSolve);
        C->LowerBoundJoules = LowerBound;
        if (!SR) {
          // Infeasibility is a deterministic property of the instance:
          // cache it. Search-limit failures are transient: don't.
          if (SR.message().find("infeasible") == std::string::npos) {
            TransientError = SR.message();
            return nullptr;
          }
          C->Feasible = false;
          C->Reason = SR.message();
          C->Milp = MilpStatus::Infeasible;
          return C;
        }
        {
          obs::TraceSpan Serialize("serialize", "service");
          uint64_t SerT0 = monotonicNanos();
          C->ScheduleText = writeSchedule(SR->Assignment);
          C->SerializeSeconds = nanosToSeconds(monotonicNanos() - SerT0);
        }
        C->PredictedEnergyJoules = SR->PredictedEnergyJoules;
        C->Milp = SR->Status;
        if (Opts.Verify != VerifyMode::Off) {
          // Verify the fresh solve once; hits and shared flights reuse
          // the outcome (the instance, and hence the verdict, is
          // content-addressed by the same fingerprint).
          obs::TraceSpan VerifySpan("verify", "service");
          uint64_t VerT0 = monotonicNanos();
          verify::AuditOptions AOpts;
          AOpts.FilterThreshold = Request.FilterThreshold;
          verify::Audit A = verify::auditScheduleResult(
              *W.Fn, Categories, Modes, Transitions, *SR, Deadlines,
              AOpts);
          C->VerifyErrors = A.R.errorCount();
          C->VerifyDetail = A.R.firstError();
          C->VerifySeconds = nanosToSeconds(monotonicNanos() - VerT0);
          VerifySpan.arg("errors",
                         static_cast<double>(C->VerifyErrors));
        }
        return C;
      });
  SolveSpan.arg("cache_hit", L.Hit ? 1.0 : 0.0);
  SolveSpan.arg("shared_flight", L.Shared ? 1.0 : 0.0);
  SolveSpan.end();

  R.CacheHit = L.Hit;
  R.SharedFlight = L.Shared;
  if (!L.Value)
    return finish(JobStatus::Failed,
                  TransientError.empty()
                      ? std::string("shared solve failed; retry")
                      : TransientError);
  R.ScheduleText = L.Value->ScheduleText;
  R.PredictedEnergyJoules = L.Value->PredictedEnergyJoules;
  R.Milp = L.Value->Milp;
  R.SolveSeconds = L.Value->SolveSeconds;
  R.SerializeSeconds = L.Value->SerializeSeconds;
  R.VerifySeconds = L.Value->VerifySeconds;
  R.VerifyErrors = L.Value->VerifyErrors;
  R.VerifyDetail = L.Value->VerifyDetail;
  if (!L.Value->Feasible)
    return finish(JobStatus::Infeasible, L.Value->Reason);
  if (R.VerifyErrors > 0) {
    serviceMetrics().VerifyFailures.inc();
    {
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Counters.VerifyFailures;
    }
    if (Opts.Verify == VerifyMode::Strict)
      return finish(JobStatus::Failed,
                    "verification failed (" +
                        std::to_string(R.VerifyErrors) + " errors): " +
                        R.VerifyDetail);
  }
  return finish(JobStatus::Done);
}

JobResult SchedulerService::executeGraph(const JobRequest &Request,
                                         double QueueSeconds,
                                         long DequeueSeq) {
  obs::SpanContext Ctx;
  Ctx.TraceHi = Request.TraceHi;
  Ctx.TraceLo = Request.TraceLo;
  Ctx.Span = Request.TraceParentSpan;
  Ctx.Sampled = Request.TraceSampled;
  obs::ScopedSpanContext CtxGuard(Ctx);
  obs::TraceSpan JobSpan("job", "service");
  JobSpan.arg("dequeue_seq", static_cast<double>(DequeueSeq));
  const taskgraph::TaskGraph &G = *Request.Graph;
  JobSpan.arg("graph_tasks", static_cast<double>(G.Nodes.size()));
  auto T0 = Clock::now();
  JobResult R;
  R.Id = Request.Id;
  R.QueueSeconds = QueueSeconds;
  R.DequeueSeq = DequeueSeq;

  auto finish = [&](JobStatus Status, std::string Reason = "") {
    R.Status = Status;
    R.Reason = std::move(Reason);
    R.TotalSeconds = QueueSeconds + secondsSince(T0);
    ServiceMetrics &M = serviceMetrics();
    M.Queue.observe(R.QueueSeconds);
    M.Total.observe(R.TotalSeconds);
    if (R.ProfileSeconds > 0.0 || Status == JobStatus::Done)
      M.Profile.observe(R.ProfileSeconds);
    if (R.BoundSeconds > 0.0 || Status == JobStatus::Done)
      M.Bound.observe(R.BoundSeconds);
    if (Status == JobStatus::Done && !R.CacheHit && !R.SharedFlight) {
      M.Solve.observe(R.SolveSeconds);
      M.Serialize.observe(R.SerializeSeconds);
    }
    return R;
  };

  // Stage 0: validation. The JSON codec validates graphs it parses, but
  // in-process callers can hand the service anything.
  if (!Request.Workload.empty() || !Request.Categories.empty())
    return finish(JobStatus::Failed,
                  "graph requests must not carry workload/categories");
  ErrorOr<bool> Valid = taskgraph::validateGraph(G);
  if (!Valid)
    return finish(JobStatus::Failed, Valid.message());
  if (G.DeadlineSeconds <= 0.0 && G.DeadlineTightness < 0.0)
    return finish(JobStatus::Failed,
                  "graph deadline tightness must be nonnegative");
  if (Request.NumLevels != 0 &&
      (Request.NumLevels < 2 || Request.NumLevels > 64))
    return finish(JobStatus::Failed,
                  "voltage level count must be 0 (XScale table) or in "
                  "[2, 64]");
  if (Request.CapacitanceF < 0.0)
    return finish(JobStatus::Failed,
                  "regulator capacitance must be nonnegative");

  ModeTable Modes =
      Request.NumLevels == 0
          ? ModeTable::xscale3()
          : ModeTable::evenVoltageLevels(Request.NumLevels, 0.7, 1.65,
                                         VfModel::paperDefault());

  // Stage 1: per-node profiles through the shared memoized cache; a
  // graph reusing one workload profiles it once.
  taskgraph::TaskCosts Costs;
  {
    obs::TraceSpan Span("profile", "service");
    std::string ModesKey = modeTableDigest(Modes);
    Costs.TimeAtMode.reserve(G.Nodes.size());
    Costs.EnergyAtMode.reserve(G.Nodes.size());
    for (const taskgraph::TaskNode &N : G.Nodes) {
      ErrorOr<std::shared_ptr<const Profile>> P = profileOne(
          N.Workload, N.Input, Modes, ModesKey, &R.ProfileSeconds);
      if (!P)
        return finish(JobStatus::Failed,
                      "task '" + N.Name + "': " + P.message());
      Costs.TimeAtMode.push_back((*P)->TotalTimeAtMode);
      Costs.EnergyAtMode.push_back((*P)->TotalEnergyAtMode);
    }
  }

  // Stage 2: deadline resolution against the critical path (fastest
  // modes = the tightest meetable deadline), graph lower bound, and the
  // instance fingerprint.
  obs::TraceSpan BoundSpan("bound", "service");
  uint64_t BoundT0 = monotonicNanos();
  double TFast = taskgraph::criticalPathSeconds(G, Costs, -1);
  double TSlow = taskgraph::criticalPathSeconds(G, Costs, 0);
  double Deadline = G.DeadlineSeconds > 0.0
                        ? G.DeadlineSeconds
                        : TFast + G.DeadlineTightness * (TSlow - TFast);
  if (Deadline < TFast * (1.0 - 1e-12)) {
    R.BoundSeconds = nanosToSeconds(monotonicNanos() - BoundT0);
    return finish(JobStatus::Infeasible,
                  "graph deadline " + std::to_string(Deadline * 1e3) +
                      " ms is below the all-fastest critical path " +
                      std::to_string(TFast * 1e3) + " ms");
  }
  R.DeadlineSeconds = Deadline;
  {
    // Deadline-free bound: every task at its cheapest mode.
    double Bound = 0.0;
    for (const auto &E : Costs.EnergyAtMode)
      Bound += *std::min_element(E.begin(), E.end());
    R.LowerBoundJoules = Bound;
  }
  {
    HashBuilder H;
    H.add(std::string("cdvs-taskgraph-instance-v1"));
    Fingerprint128 GF = taskgraph::fingerprintTaskGraph(G);
    H.add(GF.Hi);
    H.add(GF.Lo);
    H.add(modeTableDigest(Modes));
    H.add(Deadline);
    H.add(static_cast<uint64_t>(Request.GraphReplan ? 1 : 0));
    Fingerprint128 F;
    H.digestRaw(F.Hi, F.Lo);
    R.Fingerprint = F.toHex();
  }
  R.BoundSeconds = nanosToSeconds(monotonicNanos() - BoundT0);
  BoundSpan.end();

  double LowerBound = R.LowerBoundJoules;
  std::string TransientError;
  obs::TraceSpan SolveSpan("solve", "service");
  ResultCache::Lookup L = Cache.getOrCompute(
      R.Fingerprint,
      [&]() -> std::shared_ptr<const CachedSchedule> {
        if (Opts.PeerFill) {
          obs::TraceSpan FillSpan("peer_fill", "service");
          std::shared_ptr<const CachedSchedule> Fetched =
              Opts.PeerFill(Request, R.Fingerprint);
          FillSpan.arg("hit", Fetched ? 1.0 : 0.0);
          if (Fetched) {
            std::lock_guard<std::mutex> Lock(StatsMu);
            ++Counters.PeerFills;
            return Fetched;
          }
        }
        taskgraph::OnlineOptions OO;
        OO.Replan = Request.GraphReplan;
        OO.Planner.Milp.NumThreads = Opts.MilpThreadsPerJob;
        auto TSolve = Clock::now();
        taskgraph::OnlineResult OR =
            taskgraph::runOnline(G, Costs, Deadline, OO);
        auto C = std::make_shared<CachedSchedule>();
        C->SolveSeconds = secondsSince(TSolve);
        C->LowerBoundJoules = LowerBound;
        graphMetrics().Plan.observe(C->SolveSeconds);
        if (!OR.Feasible) {
          // Like single-program infeasibility: a deterministic property
          // of the instance, cached as such.
          C->Feasible = false;
          C->Reason = "no mode assignment meets the shared deadline";
          C->Milp = MilpStatus::Infeasible;
          C->Replans = 0;
          return C;
        }
        {
          obs::TraceSpan Serialize("serialize", "service");
          uint64_t SerT0 = monotonicNanos();
          C->ScheduleText = taskgraph::writeTaskPlan(G, OR);
          C->SerializeSeconds = nanosToSeconds(monotonicNanos() - SerT0);
        }
        C->PredictedEnergyJoules = OR.PlannedEnergyJoules;
        C->Milp = OR.StaticPlan.Status;
        C->Replans = OR.Replans;
        C->ReplansAccepted = OR.ReplansAccepted;
        C->StaticEnergyJoules = OR.StaticEnergyJoules;
        C->ActualEnergyJoules = OR.ActualEnergyJoules;
        C->MakespanSeconds = OR.MakespanSeconds;
        if (Opts.Verify != VerifyMode::Off) {
          obs::TraceSpan VerifySpan("verify", "service");
          uint64_t VerT0 = monotonicNanos();
          verify::Report Rep =
              verify::checkTaskPlan(G, Costs, Deadline, OR);
          C->VerifyErrors = Rep.errorCount();
          C->VerifyDetail = Rep.firstError();
          C->VerifySeconds = nanosToSeconds(monotonicNanos() - VerT0);
          VerifySpan.arg("errors", static_cast<double>(C->VerifyErrors));
        }
        return C;
      });
  SolveSpan.arg("cache_hit", L.Hit ? 1.0 : 0.0);
  SolveSpan.arg("shared_flight", L.Shared ? 1.0 : 0.0);
  SolveSpan.end();

  GraphMetrics &GM = graphMetrics();
  GM.Jobs.inc();
  GM.Tasks.inc(static_cast<double>(G.Nodes.size()));

  R.CacheHit = L.Hit;
  R.SharedFlight = L.Shared;
  if (!L.Value)
    return finish(JobStatus::Failed,
                  TransientError.empty()
                      ? std::string("shared solve failed; retry")
                      : TransientError);
  R.ScheduleText = L.Value->ScheduleText;
  R.PredictedEnergyJoules = L.Value->PredictedEnergyJoules;
  R.Milp = L.Value->Milp;
  R.SolveSeconds = L.Value->SolveSeconds;
  R.SerializeSeconds = L.Value->SerializeSeconds;
  R.VerifySeconds = L.Value->VerifySeconds;
  R.VerifyErrors = L.Value->VerifyErrors;
  R.VerifyDetail = L.Value->VerifyDetail;
  R.Replans = L.Value->Replans >= 0 ? L.Value->Replans : 0;
  R.ReplansAccepted = L.Value->ReplansAccepted;
  R.StaticEnergyJoules = L.Value->StaticEnergyJoules;
  R.ActualEnergyJoules = L.Value->ActualEnergyJoules;
  R.MakespanSeconds = L.Value->MakespanSeconds;
  if (!L.Value->Feasible)
    return finish(JobStatus::Infeasible, L.Value->Reason);
  if (R.VerifyErrors > 0) {
    serviceMetrics().VerifyFailures.inc();
    {
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Counters.VerifyFailures;
    }
    if (Opts.Verify == VerifyMode::Strict)
      return finish(JobStatus::Failed,
                    "verification failed (" +
                        std::to_string(R.VerifyErrors) + " errors): " +
                        R.VerifyDetail);
  }
  return finish(JobStatus::Done);
}
