//===- service/Job.h - DVS scheduling job requests and results --*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The request/response vocabulary of the scheduling service. A
/// JobRequest names a workload (plus optional input categories) and a
/// deadline — either absolute seconds or a tightness fraction of the
/// profile's single-mode time range — along with the processor and
/// regulator configuration. A JobResult carries the serialized schedule
/// (dvs/ScheduleIO format), the instance fingerprint it is cached under,
/// cache/single-flight provenance, and per-stage latency.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_SERVICE_JOB_H
#define CDVS_SERVICE_JOB_H

#include "milp/MilpSolver.h"
#include "taskgraph/TaskGraph.h"

#include <memory>
#include <string>
#include <vector>

namespace cdvs {

/// One input category of a job: a named workload input plus its
/// occurrence probability (the paper's Section 4.3 weights).
struct JobCategory {
  std::string Input;
  double Weight = 1.0;
};

/// A batch DVS-scheduling request.
struct JobRequest {
  /// Caller-chosen identifier, echoed in the result.
  std::string Id;
  /// Workload name from workloads/Workloads.h (e.g. "gsm").
  std::string Workload;
  /// Input categories; empty means the workload's default input with
  /// weight 1. Weights are normalized to probabilities by the service.
  std::vector<JobCategory> Categories;

  /// Absolute deadline in seconds; a value > 0 wins over the tightness.
  double DeadlineSeconds = 0.0;
  /// Relative deadline when DeadlineSeconds <= 0: 0 is the fastest
  /// single-mode time (stringent), 1 the slowest (lax), resolved per
  /// category as Tfast + t * (Tslow - Tfast) on that category's profile.
  double DeadlineTightness = 0.5;

  /// Section 5.2 edge-filter threshold (0 disables filtering).
  double FilterThreshold = 0.02;
  /// Pre-launch mode index; -1 means the fastest level.
  int InitialMode = -1;
  /// Voltage levels: 0 selects the paper's XScale-like 3-mode table,
  /// otherwise evenVoltageLevels(NumLevels) over the paper's 0.7-1.65 V
  /// range with the alpha-power-law V/f curve.
  int NumLevels = 0;
  /// Regulator capacitance in farads (efficiency 0.9 and Imax 1 A are
  /// fixed, as in the paper's typical configuration).
  double CapacitanceF = 10e-6;

  /// Task-graph payload. Non-null turns this request into a graph job:
  /// Workload/Categories/FilterThreshold/InitialMode are ignored and the
  /// graph's own deadline knobs replace DeadlineSeconds/Tightness, while
  /// NumLevels/CapacitanceF still pick the shared mode table. Carried by
  /// GraphRequest wire frames and keyed separately on the cluster ring.
  std::shared_ptr<const taskgraph::TaskGraph> Graph;
  /// Online slack reclamation on/off for graph jobs (off = execute the
  /// static plan; the bench pairing's baseline rows).
  bool GraphReplan = true;

  /// Distributed trace context, stamped by the wire layer when the
  /// carrying frame had one. Deliberately NOT part of the request's
  /// identity: it never enters requestKey/fingerprints and is never
  /// serialized with the request. An all-zero trace id means untraced.
  uint64_t TraceHi = 0;
  uint64_t TraceLo = 0;
  uint64_t TraceParentSpan = 0;
  bool TraceSampled = false;
};

/// Terminal state of a job.
enum class JobStatus {
  Done,       ///< Schedule produced (possibly from cache).
  Rejected,   ///< Refused at admission (backpressure or shutdown).
  Infeasible, ///< No schedule meets the deadline.
  Failed,     ///< Malformed request (unknown workload/input, bad knobs).
};

/// \returns a printable lower-case name for a JobStatus.
const char *jobStatusName(JobStatus Status);

/// The service's answer to one JobRequest.
struct JobResult {
  std::string Id;
  JobStatus Status = JobStatus::Failed;
  /// Rejection/failure/infeasibility explanation; empty on Done.
  std::string Reason;

  /// Content address of the solved instance (milp/Fingerprint.h).
  std::string Fingerprint;
  /// True when the schedule came from the result cache.
  bool CacheHit = false;
  /// True when this request waited on another in-flight identical solve
  /// (single-flight collapse) instead of solving itself.
  bool SharedFlight = false;

  /// The schedule in dvs/ScheduleIO `cdvs-schedule v1` text form.
  std::string ScheduleText;
  double PredictedEnergyJoules = 0.0;
  /// Deadline-free analytic lower bound on any schedule's energy (every
  /// block at its cheapest mode, transitions free).
  double LowerBoundJoules = 0.0;
  /// Resolved absolute deadline (first category's, for reporting).
  double DeadlineSeconds = 0.0;
  MilpStatus Milp = MilpStatus::Limit;

  /// Post-solve verification: error-severity diagnostic count, or -1
  /// when verification was off / did not run for this instance.
  int VerifyErrors = -1;
  /// First verify error (rendered line) when VerifyErrors > 0.
  std::string VerifyDetail;

  /// "host:port" of the backend that served this result; stamped by
  /// dvs-router on the way back to the client (empty in single-node
  /// deployments). Loadgen's per-backend latency breakdown keys on it.
  std::string Backend;

  /// Graph-job extension; Replans == -1 marks a single-program result
  /// (the fields below are then absent from every serialization, which
  /// keeps single-program JSON byte-identical to before graphs existed).
  int Replans = -1;
  int ReplansAccepted = 0;
  /// Profiled energy of the static (no-reclamation) plan.
  double StaticEnergyJoules = 0.0;
  /// Factor-scaled energy actually spent by the executed timeline.
  double ActualEnergyJoules = 0.0;
  double MakespanSeconds = 0.0; ///< actual makespan of the executed plan

  double QueueSeconds = 0.0;   ///< admission to worker pickup
  double ProfileSeconds = 0.0; ///< profiling stage (0 on profile-cache hit)
  double BoundSeconds = 0.0;   ///< deadline resolution + energy lower bound
  double SolveSeconds = 0.0;   ///< MILP stage of the original solve
  double SerializeSeconds = 0.0; ///< schedule text emission (original solve)
  double VerifySeconds = 0.0;  ///< verify stage (original solve)
  double TotalSeconds = 0.0;   ///< admission to completion
  /// Global pickup order (0-based); exposes the deadline-aware priority
  /// queue's decisions to tests and the CLI. -1 when never dequeued.
  long DequeueSeq = -1;
};

} // namespace cdvs

#endif // CDVS_SERVICE_JOB_H
