//===- analytic/AnalyticModel.h - Section 3 energy-bound model --*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's analytical model (Section 3) of the maximum energy saving
/// compile-time intra-program DVS can extract, given four program
/// parameters and a deadline:
///
///   Noverlap    compute cycles that can run concurrently with memory
///   Ndependent  compute cycles dependent on memory results
///   Ncache      memory-operation cycles serviced by the caches
///   tinvariant  DRAM service time in seconds (frequency invariant)
///   tdeadline   the time budget
///
/// With a single frequency f, total time is
///   T(f) = max(tinvariant + Ncache/f, Noverlap/f) + Ndependent/f
/// and energy counts the region-dominant cycles quadratically in voltage:
///   E = max(Noverlap, Ncache)·v1² + Ndependent·v2².
///
/// Three regimes (paper Figure 1):
///  * computation dominated  (fideal <= finvariant): one frequency is
///    optimal — no intra-program DVS benefit;
///  * memory dominated       (Ncache < Noverlap, fideal > finvariant):
///    two frequencies are optimal — slow overlap hidden under the miss,
///    fast "hurry-up" dependent phase;
///  * memory dominated with slack (Ncache >= Noverlap): one frequency
///    again — slowing the overlap dilates the hit stream itself.
///
/// where finvariant = (Noverlap-Ncache)/tinvariant balances compute
/// against the miss window and fideal is the single frequency that
/// exactly meets the deadline.
///
/// The discrete-level variant restricts voltages to a ModeTable: the
/// single-frequency regimes use the two levels bracketing the continuous
/// optimum; the memory-dominated regime needs four levels, found by the
/// paper's sweep over y, the execution time granted to the Ncache stream
/// (Figure 8).
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_ANALYTIC_ANALYTICMODEL_H
#define CDVS_ANALYTIC_ANALYTICMODEL_H

#include "power/ModeTable.h"
#include "power/VfModel.h"

#include <limits>
#include <vector>

namespace cdvs {

/// Program parameters + deadline for the analytic model.
struct AnalyticParams {
  double NoverlapCycles = 0.0;
  double NdependentCycles = 0.0;
  double NcacheCycles = 0.0;
  double TinvariantSeconds = 0.0;
  double TdeadlineSeconds = 0.0;
};

/// Which regime of the model applies.
enum class AnalyticCase {
  ComputationDominated,
  MemoryDominated,
  MemoryDominatedSlack,
  Infeasible,
};

/// \returns a printable regime name.
const char *analyticCaseName(AnalyticCase Case);

/// Result of the continuous-voltage analysis.
struct ContinuousSolution {
  AnalyticCase Kind = AnalyticCase::Infeasible;
  double V1 = 0.0, F1 = 0.0; ///< overlap-region operating point
  double V2 = 0.0, F2 = 0.0; ///< dependent-region operating point
  /// Energies in normalized units (cycles × volts²).
  double EnergyMulti = std::numeric_limits<double>::infinity();
  double EnergySingle = std::numeric_limits<double>::infinity();
  double SavingRatio = 0.0; ///< (single − multi)/single, clamped to >= 0
};

/// Result of the discrete-level analysis.
struct DiscreteSolution {
  AnalyticCase Kind = AnalyticCase::Infeasible;
  double EnergyMulti = std::numeric_limits<double>::infinity();
  double EnergySingle = std::numeric_limits<double>::infinity();
  double SavingRatio = 0.0;
  double BestY = 0.0; ///< memory-dominated case: chosen Ncache time
};

/// Section 3 model over an alpha-power-law V/f curve and a voltage range.
class AnalyticModel {
public:
  AnalyticModel(VfModel Model, double VMin, double VMax);

  /// finvariant: frequency at which Noverlap−Ncache compute cycles
  /// exactly fill the miss window. Zero when Ncache >= Noverlap.
  double finvariant(const AnalyticParams &P) const;

  /// Single-frequency total execution time at frequency \p F (Hz).
  double totalTimeAt(const AnalyticParams &P, double F) const;

  /// Classifies the regime.
  AnalyticCase classify(const AnalyticParams &P) const;

  /// Energy of the best schedule restricted to ONE continuous frequency
  /// that meets the deadline; +inf if no frequency in range does.
  double singleFrequencyEnergy(const AnalyticParams &P) const;

  /// The paper's inter-program by-product: the single (V, f) operating
  /// point an OS should program for the whole run, from the same four
  /// parameters. 
  /// returns {0, 0} when the deadline is infeasible.
  VoltageLevel optimalSingleSetting(const AnalyticParams &P) const;

  /// Energy when the overlap region runs at voltage \p V1 and the
  /// dependent region at the slowest feasible v2 (Figures 2–4 curves).
  /// +inf when no feasible v2 exists for this V1.
  double energyAtV1(const AnalyticParams &P, double V1) const;

  /// Full continuous-voltage optimization (Section 3.3).
  ContinuousSolution solveContinuous(const AnalyticParams &P) const;

  /// Energy of the best single discrete level meeting the deadline;
  /// +inf if none does.
  double discreteSingleBest(const AnalyticParams &P,
                            const ModeTable &Levels) const;

  /// Discrete-level Emin(y) for the memory-dominated case (Figure 8);
  /// +inf for infeasible y.
  double discreteEminAtY(const AnalyticParams &P, const ModeTable &Levels,
                         double Y) const;

  /// Full discrete-level optimization (Section 3.4).
  DiscreteSolution solveDiscrete(const AnalyticParams &P,
                                 const ModeTable &Levels) const;

  const VfModel &vfModel() const { return Model; }
  double vMin() const { return VMin; }
  double vMax() const { return VMax; }

private:
  /// Splits \p Cycles across the two levels bracketing the continuous
  /// optimum so the split exactly consumes \p TimeBudget seconds;
  /// \returns the energy, or +inf if infeasible.
  double twoLevelSplitEnergy(double Cycles, double TimeBudget,
                             const ModeTable &Levels) const;

  VfModel Model;
  double VMin;
  double VMax;
};

} // namespace cdvs

#endif // CDVS_ANALYTIC_ANALYTICMODEL_H
