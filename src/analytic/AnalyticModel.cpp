//===- analytic/AnalyticModel.cpp - Section 3 energy-bound model ----------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "analytic/AnalyticModel.h"

#include "support/Error.h"
#include "support/Numeric.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace cdvs;

namespace {
constexpr double Inf = std::numeric_limits<double>::infinity();
constexpr double RelTol = 1e-9;
} // namespace

const char *cdvs::analyticCaseName(AnalyticCase Case) {
  switch (Case) {
  case AnalyticCase::ComputationDominated:
    return "computation-dominated";
  case AnalyticCase::MemoryDominated:
    return "memory-dominated";
  case AnalyticCase::MemoryDominatedSlack:
    return "memory-dominated-with-slack";
  case AnalyticCase::Infeasible:
    return "infeasible";
  }
  cdvsUnreachable("bad AnalyticCase");
}

AnalyticModel::AnalyticModel(VfModel InModel, double VMin, double VMax)
    : Model(InModel), VMin(VMin), VMax(VMax) {
  assert(VMin > Model.thresholdVoltage() && VMin < VMax &&
         "voltage range must sit above threshold");
}

double AnalyticModel::finvariant(const AnalyticParams &P) const {
  if (P.NoverlapCycles <= P.NcacheCycles)
    return 0.0;
  if (P.TinvariantSeconds <= 0.0)
    return Inf;
  return (P.NoverlapCycles - P.NcacheCycles) / P.TinvariantSeconds;
}

double AnalyticModel::totalTimeAt(const AnalyticParams &P, double F) const {
  assert(F > 0.0 && "frequency must be positive");
  double Region1 = std::max(P.TinvariantSeconds + P.NcacheCycles / F,
                            P.NoverlapCycles / F);
  return Region1 + P.NdependentCycles / F;
}

AnalyticCase AnalyticModel::classify(const AnalyticParams &P) const {
  double FMax = Model.frequencyAt(VMax);
  if (totalTimeAt(P, FMax) > P.TdeadlineSeconds * (1.0 + RelTol))
    return AnalyticCase::Infeasible;
  if (P.NcacheCycles >= P.NoverlapCycles)
    return AnalyticCase::MemoryDominatedSlack;
  double FIdeal =
      (P.NoverlapCycles + P.NdependentCycles) / P.TdeadlineSeconds;
  if (FIdeal <= finvariant(P))
    return AnalyticCase::ComputationDominated;
  return AnalyticCase::MemoryDominated;
}

double AnalyticModel::singleFrequencyEnergy(const AnalyticParams &P) const {
  double FMax = Model.frequencyAt(VMax);
  double FMin = Model.frequencyAt(VMin);
  if (totalTimeAt(P, FMax) > P.TdeadlineSeconds * (1.0 + RelTol))
    return Inf;

  // T(f) = tdl has one of two closed forms depending on whether memory
  // is hidden at the solution.
  double FInv = finvariant(P);
  double FStar;
  double FCompute =
      (P.NoverlapCycles + P.NdependentCycles) / P.TdeadlineSeconds;
  if (FCompute <= FInv) {
    FStar = FCompute;
  } else {
    double Remaining = P.TdeadlineSeconds - P.TinvariantSeconds;
    if (Remaining <= 0.0)
      return Inf; // only possible when the FMax check above was marginal
    FStar = (P.NcacheCycles + P.NdependentCycles) / Remaining;
  }
  FStar = std::min(std::max(FStar, FMin), FMax);
  double V = Model.voltageFor(FStar);
  double Cycles = std::max(P.NoverlapCycles, P.NcacheCycles) +
                  P.NdependentCycles;
  return Cycles * V * V;
}

VoltageLevel AnalyticModel::optimalSingleSetting(
    const AnalyticParams &P) const {
  double FMax = Model.frequencyAt(VMax);
  double FMin = Model.frequencyAt(VMin);
  if (totalTimeAt(P, FMax) > P.TdeadlineSeconds * (1.0 + RelTol))
    return {0.0, 0.0};
  double FInv = finvariant(P);
  double FStar;
  double FCompute =
      (P.NoverlapCycles + P.NdependentCycles) / P.TdeadlineSeconds;
  if (FCompute <= FInv) {
    FStar = FCompute;
  } else {
    double Remaining = P.TdeadlineSeconds - P.TinvariantSeconds;
    if (Remaining <= 0.0)
      return {0.0, 0.0};
    FStar = (P.NcacheCycles + P.NdependentCycles) / Remaining;
  }
  FStar = std::min(std::max(FStar, FMin), FMax);
  return {Model.voltageFor(FStar), FStar};
}

double AnalyticModel::energyAtV1(const AnalyticParams &P, double V1) const {
  if (V1 < VMin - 1e-12 || V1 > VMax + 1e-12)
    return Inf;
  double F1 = Model.frequencyAt(V1);
  if (F1 <= 0.0)
    return Inf;
  double Region1 = std::max(P.TinvariantSeconds + P.NcacheCycles / F1,
                            P.NoverlapCycles / F1);
  double Remaining = P.TdeadlineSeconds - Region1;
  double C1 = std::max(P.NoverlapCycles, P.NcacheCycles);
  if (P.NdependentCycles <= 0.0)
    return Remaining >= -1e-15 ? C1 * V1 * V1 : Inf;
  if (Remaining <= 0.0)
    return Inf;
  double F2 = P.NdependentCycles / Remaining;
  double FMax = Model.frequencyAt(VMax);
  if (F2 > FMax * (1.0 + RelTol))
    return Inf;
  double V2 = std::max(Model.voltageFor(F2), VMin);
  return C1 * V1 * V1 + P.NdependentCycles * V2 * V2;
}

ContinuousSolution AnalyticModel::solveContinuous(
    const AnalyticParams &P) const {
  ContinuousSolution Sol;
  Sol.Kind = classify(P);
  if (Sol.Kind == AnalyticCase::Infeasible)
    return Sol;

  auto Objective = [&](double V1) {
    double E = energyAtV1(P, V1);
    return std::isfinite(E) ? E : 1e300;
  };
  MinResult R = gridRefineMinimize(Objective, VMin, VMax, 512, 1e-10);

  Sol.V1 = R.X;
  Sol.F1 = Model.frequencyAt(Sol.V1);
  double Region1 =
      std::max(P.TinvariantSeconds + P.NcacheCycles / Sol.F1,
               P.NoverlapCycles / Sol.F1);
  double Remaining = P.TdeadlineSeconds - Region1;
  if (P.NdependentCycles > 0.0 && Remaining > 0.0) {
    Sol.F2 = P.NdependentCycles / Remaining;
    Sol.V2 = std::max(Model.voltageFor(Sol.F2), VMin);
  } else {
    Sol.F2 = Sol.F1;
    Sol.V2 = Sol.V1;
  }
  Sol.EnergySingle = singleFrequencyEnergy(P);
  Sol.EnergyMulti = std::min(R.Fx, Sol.EnergySingle);
  if (std::isfinite(Sol.EnergySingle) && Sol.EnergySingle > 0.0)
    Sol.SavingRatio =
        std::max(0.0, 1.0 - Sol.EnergyMulti / Sol.EnergySingle);
  return Sol;
}

double AnalyticModel::discreteSingleBest(const AnalyticParams &P,
                                         const ModeTable &Levels) const {
  double Best = Inf;
  double Cycles = std::max(P.NoverlapCycles, P.NcacheCycles) +
                  P.NdependentCycles;
  for (const VoltageLevel &L : Levels.levels()) {
    if (totalTimeAt(P, L.Hertz) > P.TdeadlineSeconds * (1.0 + RelTol))
      continue;
    Best = std::min(Best, Cycles * L.Volts * L.Volts);
  }
  return Best;
}

double AnalyticModel::twoLevelSplitEnergy(double Cycles, double TimeBudget,
                                          const ModeTable &Levels) const {
  if (Cycles <= 0.0)
    return TimeBudget >= -1e-15 ? 0.0 : Inf;
  if (TimeBudget <= 0.0)
    return Inf;
  double FNeeded = Cycles / TimeBudget;
  double FMin = Levels.minFrequency();
  double FMax = Levels.maxFrequency();
  if (FNeeded > FMax * (1.0 + RelTol))
    return Inf;
  if (FNeeded <= FMin) {
    double V = Levels.level(0).Volts;
    return Cycles * V * V;
  }
  auto [A, B] = Levels.neighborsOfFrequency(FNeeded);
  if (A == B) {
    double V = Levels.level(A).Volts;
    return Cycles * V * V;
  }
  double Fa = Levels.level(A).Hertz, Fb = Levels.level(B).Hertz;
  double Va = Levels.level(A).Volts, Vb = Levels.level(B).Volts;
  // xa/fa + xb/fb = TimeBudget, xa + xb = Cycles.
  double Xa = (TimeBudget - Cycles / Fb) / (1.0 / Fa - 1.0 / Fb);
  Xa = std::min(std::max(Xa, 0.0), Cycles);
  double Xb = Cycles - Xa;
  return Xa * Va * Va + Xb * Vb * Vb;
}

double AnalyticModel::discreteEminAtY(const AnalyticParams &P,
                                      const ModeTable &Levels,
                                      double Y) const {
  // Only meaningful in the memory-dominated regime (Ncache < Noverlap).
  double NovExtra = P.NoverlapCycles - P.NcacheCycles;
  if (NovExtra < 0.0)
    return Inf;
  double FMax = Levels.maxFrequency();

  // Region 1 lasts tinvariant + Y; region 2 gets the rest.
  double T2 = P.TdeadlineSeconds - P.TinvariantSeconds - Y;
  if (Y <= 0.0 || T2 < 0.0)
    return Inf;

  // (a) The Ncache cycles paced to take exactly Y (the compute hidden
  //     under the cache-hit stream runs at the same pace).
  double ECache = twoLevelSplitEnergy(P.NcacheCycles, Y, Levels);
  if (!std::isfinite(ECache))
    return Inf;

  // (b) The Noverlap - Ncache compute cycles that execute during the
  //     DRAM window tinvariant: as many as possible at the lower of the
  //     two levels bracketing f1 = Ncache/Y, the rest at the upper.
  double EExtra = 0.0;
  if (NovExtra > 0.0) {
    if (P.TinvariantSeconds <= 0.0 ||
        NovExtra > P.TinvariantSeconds * FMax * (1.0 + RelTol))
      return Inf;
    double F1 = P.NcacheCycles > 0.0 ? P.NcacheCycles / Y
                                     : Levels.minFrequency();
    auto [A, B] = Levels.neighborsOfFrequency(
        std::min(std::max(F1, Levels.minFrequency()), FMax));
    double Fa = Levels.level(A).Hertz, Fb = Levels.level(B).Hertz;
    double Va = Levels.level(A).Volts, Vb = Levels.level(B).Volts;
    double CapLow = P.TinvariantSeconds * Fa;
    if (NovExtra <= CapLow || A == B) {
      // Everything fits at the lower level (or only one level applies);
      // if even that level cannot fit them in tinvariant, push to the
      // fastest level.
      if (NovExtra <= P.TinvariantSeconds * Fa)
        EExtra = NovExtra * Va * Va;
      else
        EExtra = twoLevelSplitEnergy(NovExtra, P.TinvariantSeconds,
                                     Levels);
    } else {
      // Mix: spend tau at Fb and tinv - tau at Fa to fit exactly.
      double XHigh = Fb * (NovExtra - CapLow) / (Fb - Fa);
      XHigh = std::min(std::max(XHigh, 0.0), NovExtra);
      double XLow = NovExtra - XHigh;
      if (NovExtra > P.TinvariantSeconds * Fb * (1.0 + RelTol))
        return Inf;
      EExtra = XLow * Va * Va + XHigh * Vb * Vb;
    }
    if (!std::isfinite(EExtra))
      return Inf;
  }

  // (c) The dependent cycles in the remaining budget.
  double EDep = twoLevelSplitEnergy(P.NdependentCycles, T2, Levels);
  if (!std::isfinite(EDep))
    return Inf;

  return ECache + EExtra + EDep;
}

DiscreteSolution AnalyticModel::solveDiscrete(const AnalyticParams &P,
                                              const ModeTable &Levels)
    const {
  DiscreteSolution Sol;
  Sol.EnergySingle = discreteSingleBest(P, Levels);
  if (!std::isfinite(Sol.EnergySingle)) {
    Sol.Kind = AnalyticCase::Infeasible;
    return Sol;
  }
  Sol.Kind = classify(P);

  double Multi = Inf;
  switch (Sol.Kind) {
  case AnalyticCase::ComputationDominated:
    Multi = twoLevelSplitEnergy(P.NoverlapCycles + P.NdependentCycles,
                                P.TdeadlineSeconds, Levels);
    break;
  case AnalyticCase::MemoryDominatedSlack:
    Multi = twoLevelSplitEnergy(
        P.NcacheCycles + P.NdependentCycles,
        P.TdeadlineSeconds - P.TinvariantSeconds, Levels);
    break;
  case AnalyticCase::MemoryDominated: {
    double FMax = Levels.maxFrequency();
    double FMin = Levels.minFrequency();
    double YLo = P.NcacheCycles > 0.0 ? P.NcacheCycles / FMax : 0.0;
    double YHi = P.TdeadlineSeconds - P.TinvariantSeconds -
                 (P.NdependentCycles > 0.0 ? P.NdependentCycles / FMax
                                           : 0.0);
    if (P.NcacheCycles > 0.0)
      YHi = std::min(YHi, P.NcacheCycles / FMin);
    if (YHi > YLo && YLo >= 0.0) {
      auto Objective = [&](double Y) {
        double E = discreteEminAtY(P, Levels, Y);
        return std::isfinite(E) ? E : 1e300;
      };
      MinResult R = gridRefineMinimize(Objective, std::max(YLo, 1e-12),
                                       YHi, 384, 1e-12);
      Multi = R.Fx >= 1e299 ? Inf : R.Fx;
      Sol.BestY = R.X;
    }
    break;
  }
  case AnalyticCase::Infeasible:
    break;
  }

  Sol.EnergyMulti = std::min(Multi, Sol.EnergySingle);
  if (Sol.EnergySingle > 0.0)
    Sol.SavingRatio =
        std::max(0.0, 1.0 - Sol.EnergyMulti / Sol.EnergySingle);
  return Sol;
}
