//===- sim/ModeAssignment.h - Per-edge DVS mode map --------------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The result of DVS scheduling: a mode index for every CFG edge (the
/// compile-time "mode-set instruction" placed on that edge) plus the mode
/// the program starts in. An edge whose assigned mode equals the current
/// mode is a *silent* mode-set: it costs nothing at run time, exactly as
/// in the paper (transition costs apply only to actual changes).
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_SIM_MODEASSIGNMENT_H
#define CDVS_SIM_MODEASSIGNMENT_H

#include "ir/Function.h"

#include <map>
#include <tuple>

namespace cdvs {

/// Mode-set decisions for a whole function.
struct ModeAssignment {
  int InitialMode = 0;
  /// Mode to set when traversing each edge; edges absent from the map
  /// carry no mode-set instruction (the current mode persists).
  std::map<CfgEdge, int> EdgeMode;
  /// Context-sensitive refinement (the paper's Section 7 "paths"
  /// direction): mode to set when traversing edge (I, J) having entered
  /// block I from H. Takes precedence over EdgeMode; the edge map is
  /// the fallback for contexts the profile never saw.
  std::map<std::tuple<int, int, int>, int> PathMode;

  /// \returns the mode after traversing \p E from mode \p Current.
  int modeAfterEdge(const CfgEdge &E, int Current) const {
    auto It = EdgeMode.find(E);
    return It == EdgeMode.end() ? Current : It->second;
  }

  /// Context-aware lookup: (\p H -> E.From -> E.To), falling back to
  /// the plain edge rule.
  int modeAfterPath(int H, const CfgEdge &E, int Current) const {
    if (!PathMode.empty()) {
      auto It = PathMode.find({H, E.From, E.To});
      if (It != PathMode.end())
        return It->second;
    }
    return modeAfterEdge(E, Current);
  }

  /// An assignment that runs everything at \p Mode.
  static ModeAssignment uniform(int Mode) {
    ModeAssignment MA;
    MA.InitialMode = Mode;
    return MA;
  }
};

} // namespace cdvs

#endif // CDVS_SIM_MODEASSIGNMENT_H
