//===- sim/SimConfig.h - Processor timing/energy configuration --*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Timing and energy parameters of the profiling simulator, defaulted to
/// the paper's Table 2 configuration (caches, latencies) plus an energy
/// model in which each operation class switches an effective capacitance
/// so that per-op energy is Ceff(class) * V^2 — the same quadratic
/// voltage dependence the paper's analytic model and Wattch assume. The
/// DRAM access time is expressed in seconds because memory is
/// asynchronous with the core: it does not scale with core frequency
/// (Section 3.1, assumption 2).
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_SIM_SIMCONFIG_H
#define CDVS_SIM_SIMCONFIG_H

#include "ir/Instruction.h"
#include "sim/Cache.h"

#include <cstdint>

namespace cdvs {

/// Simulator configuration: latencies in core cycles, DRAM in seconds,
/// per-class effective capacitances in farads.
struct SimConfig {
  // Functional-unit latencies (cycles).
  int IntAluLatency = 1;
  int IntMulLatency = 3;
  int IntDivLatency = 12;
  int FpAddLatency = 2;
  int FpMulLatency = 4;
  int FpDivLatency = 12;

  // Memory hierarchy (paper Table 2: L1 64K/4-way/32B 1-cycle, unified
  // L2 512K/4-way/32B 16-cycle; the L1 I-cache mirrors the D-cache).
  CacheConfig L1 = {64 * 1024, 4, 32};
  CacheConfig L2 = {512 * 1024, 4, 32};
  CacheConfig L1I = {64 * 1024, 4, 32};

  /// Model instruction fetch through the L1 I-cache (paper Table 2 has
  /// one, but the reproduction-scale programs fit it trivially, so this
  /// defaults off; turn on for fetch-sensitive studies). Each
  /// instruction fetches 4 bytes from a synthetic code image laid out
  /// block-by-block; an I-miss charges the L2 (and DRAM on an L2 miss)
  /// like a blocking load.
  bool ModelICache = false;
  int L1HitCycles = 1;
  int L2HitCycles = 16;
  /// DRAM service time per miss, frequency invariant.
  double DramSeconds = 80e-9;

  /// Effective switched capacitance per operation class (farads);
  /// energy per op = Ceff * V^2. Values are sized so a full-speed
  /// multimedia kernel lands in the tens-of-mW regime at 800 MHz/1.65 V,
  /// the XScale class the paper targets.
  double CeffIntAlu = 80e-12;
  double CeffIntMul = 220e-12;
  double CeffIntDiv = 500e-12;
  double CeffFpAdd = 260e-12;
  double CeffFpMul = 340e-12;
  double CeffFpDiv = 700e-12;
  double CeffLoad = 150e-12;
  double CeffStore = 150e-12;

  /// Hard cap on executed instructions per run, a guard against
  /// malformed (non-terminating) workloads.
  uint64_t MaxInstructions = 400u * 1000 * 1000;

  /// \returns the latency in cycles of \p Class (memory classes return
  /// the L1 hit latency; the hierarchy adds the rest).
  int latency(OpClass Class) const {
    switch (Class) {
    case OpClass::IntAlu:
      return IntAluLatency;
    case OpClass::IntMul:
      return IntMulLatency;
    case OpClass::IntDiv:
      return IntDivLatency;
    case OpClass::FpAdd:
      return FpAddLatency;
    case OpClass::FpMul:
      return FpMulLatency;
    case OpClass::FpDiv:
      return FpDivLatency;
    case OpClass::MemLoad:
    case OpClass::MemStore:
      return L1HitCycles;
    }
    return 1;
  }

  /// \returns the effective capacitance in farads of \p Class.
  double ceff(OpClass Class) const {
    switch (Class) {
    case OpClass::IntAlu:
      return CeffIntAlu;
    case OpClass::IntMul:
      return CeffIntMul;
    case OpClass::IntDiv:
      return CeffIntDiv;
    case OpClass::FpAdd:
      return CeffFpAdd;
    case OpClass::FpMul:
      return CeffFpMul;
    case OpClass::FpDiv:
      return CeffFpDiv;
    case OpClass::MemLoad:
      return CeffLoad;
    case OpClass::MemStore:
      return CeffStore;
    }
    return 0.0;
  }
};

} // namespace cdvs

#endif // CDVS_SIM_SIMCONFIG_H
