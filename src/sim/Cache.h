//===- sim/Cache.h - Set-associative LRU cache model -------------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic set-associative LRU cache used for the L1 data cache and the
/// unified L2 of the profiling simulator (the paper's Table 2 uses
/// 64 KB 4-way 32 B-block L1s and a 512 KB 4-way 32 B-block L2).
/// Timing lives in the simulator; this class tracks only hit/miss state.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_SIM_CACHE_H
#define CDVS_SIM_CACHE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cdvs {

/// Geometry of one cache level.
struct CacheConfig {
  size_t SizeBytes = 64 * 1024;
  int Ways = 4;
  int BlockBytes = 32;
};

/// Set-associative LRU cache.
class Cache {
public:
  explicit Cache(CacheConfig Config);

  /// Looks up \p Addr; on a miss the block is filled (LRU evicted).
  /// \returns true on hit.
  bool access(uint64_t Addr);

  /// Invalidates all contents and clears statistics.
  void reset();

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  size_t numSets() const { return Sets.size(); }
  const CacheConfig &config() const { return Config; }

private:
  struct Set {
    // Tags in LRU order: front = most recently used. Empty slots absent.
    std::vector<uint64_t> Tags;
  };

  CacheConfig Config;
  std::vector<Set> Sets;
  uint64_t SetMask = 0;
  int BlockShift = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

} // namespace cdvs

#endif // CDVS_SIM_CACHE_H
