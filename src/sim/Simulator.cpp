//===- sim/Simulator.cpp - Cycle-level CPU/memory simulator ---------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
//
// Timing model. All times are absolute seconds so that mid-run frequency
// changes compose naturally:
//  * each register has a ready time RT[r];
//  * compute op: issues at max(core time, source RTs); occupies the core
//    for latency(class)/f; the wait before issue is clock-gated;
//  * load: L1 hit and L2 hit occupy the core for their hit latencies in
//    cycles (these scale with f and are the paper's "Ncache" memory
//    cycles); an L2 miss additionally puts DRAM service time — a fixed
//    number of *seconds* — on the destination register's ready time
//    while the core moves on (non-blocking, one outstanding miss);
//  * store: occupies the core for the L1 hit latency; a write buffer
//    hides any miss (no invariant time, no stall);
//  * compute issued while a DRAM miss is outstanding counts toward
//    Noverlap, otherwise Ndependent — the operational version of the
//    paper's overlap/dependent split.
//
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace cdvs;

Simulator::Simulator(const Function &F, SimConfig InConfig)
    : F(F), Config(InConfig), InitRegs(F.numRegs(), 0),
      InitMem(F.memBytes(), 0) {
  ErrorOr<bool> Ok = F.verify();
  if (!Ok)
    cdvsUnreachable(("simulating invalid function: " + Ok.message()).c_str());
  assert(F.memBytes() >= 4 && "memory image must hold at least one word");
}

void Simulator::setInitialReg(int Reg, int64_t Value) {
  assert(Reg >= 0 && Reg < F.numRegs() && "register out of range");
  InitRegs[Reg] = Value;
}

void Simulator::setInitialMem32(uint64_t Addr, uint32_t Value) {
  assert(Addr + 4 <= InitMem.size() && "address out of range");
  std::memcpy(&InitMem[Addr], &Value, 4);
}

namespace {

/// Mutable machine state of one run.
struct Machine {
  std::vector<int64_t> Regs;
  std::vector<uint8_t> Mem;
  std::vector<double> RegReady; // seconds

  uint64_t maskAddr(int64_t Addr) const {
    // Word-align and wrap into the memory image: the interpreter is
    // total so profiling runs can never trap.
    uint64_t A = static_cast<uint64_t>(Addr) & ~static_cast<uint64_t>(3);
    uint64_t Cap = (Mem.size() / 4) * 4; // multiple of 4, >= 4 (verified)
    return A % Cap;
  }

  uint32_t read32(int64_t Addr) const {
    uint32_t V;
    std::memcpy(&V, &Mem[maskAddr(Addr)], 4);
    return V;
  }

  void write32(int64_t Addr, uint32_t V) {
    std::memcpy(&Mem[maskAddr(Addr)], &V, 4);
  }
};

int64_t evalBinary(Opcode Op, int64_t A, int64_t B) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::FAdd:
    return A + B;
  case Opcode::Sub:
  case Opcode::FSub:
    return A - B;
  case Opcode::Mul:
  case Opcode::FMul:
    return A * B;
  case Opcode::Div:
  case Opcode::FDiv:
    return B == 0 ? 0 : A / B;
  case Opcode::Rem:
    return B == 0 ? 0 : A % B;
  case Opcode::And:
    return A & B;
  case Opcode::Or:
    return A | B;
  case Opcode::Xor:
    return A ^ B;
  case Opcode::Shl:
    return A << (B & 63);
  case Opcode::Shr:
    return static_cast<int64_t>(static_cast<uint64_t>(A) >> (B & 63));
  case Opcode::CmpEq:
    return A == B;
  case Opcode::CmpNe:
    return A != B;
  case Opcode::CmpLt:
    return A < B;
  case Opcode::CmpLe:
    return A <= B;
  default:
    cdvsUnreachable("not a binary opcode");
  }
}

} // namespace

/// Folds one finished run into the process-wide registry: simulated
/// instruction/cycle/energy/stall totals, so a service or bench exposes
/// how much simulation work hid behind its profiling stages. Called once
/// per run — the per-instruction hot loop is untouched.
static void exportRunMetrics(const RunStats &S) {
  using namespace obs;
  static Counter &Runs = metrics().counter(
      "cdvs_sim_runs_total", "Simulated executions completed");
  static Counter &Insts = metrics().counter(
      "cdvs_sim_instructions_total", "Simulated instructions retired");
  static Counter &SimSeconds = metrics().counter(
      "cdvs_sim_simulated_seconds_total",
      "Simulated wall time accumulated across runs");
  static Counter &Energy = metrics().counter(
      "cdvs_sim_energy_joules_total",
      "Simulated processor energy accumulated across runs");
  static Counter &Gated = metrics().counter(
      "cdvs_sim_gated_seconds_total",
      "Simulated clock-gated (memory stall) time");
  static Counter &Transitions = metrics().counter(
      "cdvs_sim_mode_transitions_total",
      "Voltage/frequency transitions executed in simulation");
  static Counter &Overlap = metrics().counter(
      "cdvs_sim_overlap_cycles_total",
      "Compute cycles overlapped with an open DRAM miss");
  static Counter &Dependent = metrics().counter(
      "cdvs_sim_dependent_cycles_total",
      "Compute cycles with no open DRAM miss");
  static Counter &L2Misses = metrics().counter(
      "cdvs_sim_l2_misses_total", "Simulated L2 misses (DRAM accesses)");
  Runs.inc();
  Insts.inc(static_cast<double>(S.Instructions));
  SimSeconds.inc(S.TimeSeconds);
  Energy.inc(S.EnergyJoules);
  Gated.inc(S.GatedSeconds);
  Transitions.inc(static_cast<double>(S.Transitions));
  Overlap.inc(static_cast<double>(S.NoverlapCycles));
  Dependent.inc(static_cast<double>(S.NdependentCycles));
  L2Misses.inc(static_cast<double>(S.L2Misses));
}

RunStats Simulator::run(const ModeTable &Modes,
                        const ModeAssignment &Assignment,
                        const TransitionModel &Transitions) {
  obs::TraceSpan Span("sim_run", "sim");
  Machine M;
  M.Regs = InitRegs;
  M.Mem = InitMem;
  M.RegReady.assign(F.numRegs(), 0.0);

  Cache L1(Config.L1);
  Cache L2(Config.L2);
  Cache L1I(Config.L1I);

  // Synthetic code layout for instruction fetch: blocks packed in id
  // order, 4 bytes per instruction plus 4 for the terminator. Mapped
  // beyond the data image so code and data never alias in L2.
  std::vector<uint64_t> CodeBase(F.numBlocks(), 0);
  if (Config.ModelICache) {
    uint64_t Addr = (InitMem.size() + 63) & ~uint64_t(63);
    for (int B = 0; B < F.numBlocks(); ++B) {
      CodeBase[B] = Addr;
      Addr += 4 * (F.block(B).Insts.size() + 1);
    }
  }

  RunStats S;
  S.BlockExecs.assign(F.numBlocks(), 0);
  S.BlockTimeSeconds.assign(F.numBlocks(), 0.0);
  S.BlockEnergyJoules.assign(F.numBlocks(), 0.0);

  int Mode = Assignment.InitialMode;
  assert(Mode >= 0 && Mode < static_cast<int>(Modes.size()) &&
         "initial mode out of range");
  double Volts = Modes.level(Mode).Volts;
  double Freq = Modes.level(Mode).Hertz;
  double CycleTime = 1.0 / Freq;

  double Now = 0.0;              // core time, seconds
  double MissBusyUntil = 0.0;    // DRAM busy until (one outstanding miss)

  int Block = 0;
  int PrevBlock = -1;  // block we arrived from (for Dhij)
  int PrevPrev = -2;   // block before that (for the 4-gram counts)

  auto gatedWait = [&](double Until) {
    if (Until > Now) {
      S.GatedSeconds += Until - Now;
      S.BlockTimeSeconds[Block] += Until - Now;
      Now = Until;
    }
  };

  auto chargeOp = [&](OpClass Class, int Cycles) {
    double Dt = Cycles * CycleTime;
    double E = Config.ceff(Class) * Volts * Volts;
    S.BlockTimeSeconds[Block] += Dt;
    S.BlockEnergyJoules[Block] += E;
    S.EnergyJoules += E;
    Now += Dt;
  };

  auto classifyCompute = [&](int Cycles, double IssueTime) {
    if (IssueTime < MissBusyUntil)
      S.NoverlapCycles += Cycles;
    else
      S.NdependentCycles += Cycles;
  };

  while (true) {
    if (S.Instructions >= Config.MaxInstructions) {
      S.Completed = false;
      S.TimeSeconds = Now;
      S.FinalRegs = M.Regs;
      Span.arg("instructions", static_cast<double>(S.Instructions));
      exportRunMetrics(S);
      return S;
    }
    ++S.BlockExecs[Block];
    const BasicBlock &BB = F.block(Block);

    int InstIndex = 0;
    auto fetch = [&](int Index) {
      if (!Config.ModelICache)
        return;
      uint64_t A = CodeBase[Block] + 4 * static_cast<uint64_t>(Index);
      if (L1I.access(A))
        return;
      ++S.L1IMisses;
      // I-fetch misses stall the front end: charge the L2 cycles (and
      // the DRAM wait on an L2 miss) before the instruction issues.
      bool UnderMiss = Now < MissBusyUntil;
      chargeOp(OpClass::MemLoad, Config.L2HitCycles);
      if (UnderMiss)
        S.NoverlapCycles += Config.L2HitCycles;
      else
        S.NcacheCycles += Config.L2HitCycles;
      if (!L2.access(A)) {
        ++S.L2Misses;
        double Start = std::max(Now, MissBusyUntil);
        double Done = Start + Config.DramSeconds;
        MissBusyUntil = Done;
        S.TinvariantSeconds += Config.DramSeconds;
        gatedWait(Done); // fetch blocks the pipeline
      }
    };

    for (const Instruction &I : BB.Insts) {
      fetch(InstIndex++);
      ++S.Instructions;
      OpClass Class = opClass(I.Op);
      switch (Class) {
      case OpClass::MemLoad: {
        gatedWait(M.RegReady[I.Src1]);
        int64_t Addr = M.Regs[I.Src1] + I.Imm;
        M.Regs[I.Dst] = static_cast<int64_t>(M.read32(Addr));
        ++S.Loads;
        uint64_t A = M.maskAddr(Addr);
        bool HitL1 = L1.access(A);
        int CoreCycles = Config.L1HitCycles;
        bool HitL2 = true;
        if (!HitL1) {
          ++S.L1DMisses;
          HitL2 = L2.access(A);
          CoreCycles += Config.L2HitCycles;
        }
        // Hit-serviced cycles issued while a DRAM miss is outstanding
        // are hidden under the miss: they belong to the overlap stream
        // in the analytic model's region structure, not to Ncache.
        bool UnderMiss = Now < MissBusyUntil;
        chargeOp(OpClass::MemLoad, CoreCycles);
        if (UnderMiss)
          S.NoverlapCycles += CoreCycles;
        else
          S.NcacheCycles += CoreCycles;
        if (!HitL1 && !HitL2) {
          ++S.L2Misses;
          double Start = std::max(Now, MissBusyUntil);
          double Done = Start + Config.DramSeconds;
          MissBusyUntil = Done;
          M.RegReady[I.Dst] = Done;
          S.TinvariantSeconds += Config.DramSeconds;
        } else {
          M.RegReady[I.Dst] = Now;
        }
        break;
      }
      case OpClass::MemStore: {
        gatedWait(std::max(M.RegReady[I.Src1], M.RegReady[I.Src2]));
        int64_t Addr = M.Regs[I.Src1] + I.Imm;
        M.write32(Addr, static_cast<uint32_t>(M.Regs[I.Src2]));
        ++S.Stores;
        uint64_t A = M.maskAddr(Addr);
        bool HitL1 = L1.access(A);
        if (!HitL1) {
          ++S.L1DMisses;
          if (!L2.access(A))
            ++S.L2Misses; // write buffer: no core-visible DRAM wait
        }
        bool UnderMiss = Now < MissBusyUntil;
        chargeOp(OpClass::MemStore, Config.L1HitCycles);
        if (UnderMiss)
          S.NoverlapCycles += Config.L1HitCycles;
        else
          S.NcacheCycles += Config.L1HitCycles;
        break;
      }
      default: {
        // Compute classes. Mov is register renaming: it never stalls on
        // its source — the destination inherits the source's readiness —
        // matching the behaviour of the out-of-order cores the paper
        // profiles on (and of modulo-scheduled compiler output).
        if (I.Op == Opcode::Mov) {
          double Issue = Now;
          M.Regs[I.Dst] = M.Regs[I.Src1];
          chargeOp(OpClass::IntAlu, Config.IntAluLatency);
          classifyCompute(Config.IntAluLatency, Issue);
          M.RegReady[I.Dst] = std::max(M.RegReady[I.Src1], Now);
          break;
        }
        double SrcReady = 0.0;
        if (I.Op != Opcode::MovImm)
          SrcReady = std::max(M.RegReady[I.Src1], M.RegReady[I.Src2]);
        gatedWait(SrcReady);
        double Issue = Now;
        int Lat = Config.latency(Class);
        if (I.Op == Opcode::MovImm)
          M.Regs[I.Dst] = I.Imm;
        else
          M.Regs[I.Dst] = evalBinary(I.Op, M.Regs[I.Src1], M.Regs[I.Src2]);
        chargeOp(Class, Lat);
        classifyCompute(Lat, Issue);
        M.RegReady[I.Dst] = Now;
        break;
      }
      }
    }

    // Terminator.
    int Next = -1;
    switch (BB.Term) {
    case TermKind::Ret: {
      // Drain: the run ends when core and memory are both done.
      double End = std::max(Now, MissBusyUntil);
      S.BlockTimeSeconds[Block] += End - Now;
      Now = End;
      S.Completed = true;
      S.TimeSeconds = Now;
      S.FinalRegs = M.Regs;
      Span.arg("instructions", static_cast<double>(S.Instructions));
      exportRunMetrics(S);
      return S;
    }
    case TermKind::Jump: {
      // The branch itself costs one ALU cycle.
      double Issue = Now;
      chargeOp(OpClass::IntAlu, 1);
      classifyCompute(1, Issue);
      Next = BB.Succs[0];
      break;
    }
    case TermKind::CondBr: {
      gatedWait(M.RegReady[BB.CondReg]);
      double Issue = Now;
      chargeOp(OpClass::IntAlu, 1);
      classifyCompute(1, Issue);
      Next = M.Regs[BB.CondReg] != 0 ? BB.Succs[0] : BB.Succs[1];
      break;
    }
    }

    CfgEdge E{Block, Next};
    ++S.EdgeCounts[E];
    ++S.PathCounts[{PrevBlock, Block, Next}];
    ++S.QuadCounts[{PrevPrev, PrevBlock, Block, Next}];

    int NewMode = Assignment.modeAfterPath(PrevBlock, E, Mode);
    if (NewMode != Mode) {
      assert(NewMode >= 0 && NewMode < static_cast<int>(Modes.size()) &&
             "assigned mode out of range");
      double Vi = Modes.level(Mode).Volts;
      double Vj = Modes.level(NewMode).Volts;
      double St = Transitions.switchTime(Vi, Vj);
      double Se = Transitions.switchEnergy(Vi, Vj);
      Now += St;
      S.EnergyJoules += Se;
      S.TransitionSeconds += St;
      S.TransitionJoules += Se;
      ++S.Transitions;
      // Attribute the switch to the source block of the edge.
      S.BlockTimeSeconds[Block] += St;
      S.BlockEnergyJoules[Block] += Se;
      Mode = NewMode;
      Volts = Modes.level(Mode).Volts;
      Freq = Modes.level(Mode).Hertz;
      CycleTime = 1.0 / Freq;
    }

    PrevPrev = PrevBlock;
    PrevBlock = Block;
    Block = Next;
  }
}

RunStats Simulator::runAtLevel(const VoltageLevel &Level) {
  ModeTable Single({Level});
  TransitionModel Free(0.0, 0.0, 1.0);
  return run(Single, ModeAssignment::uniform(0), Free);
}
