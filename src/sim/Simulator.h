//===- sim/Simulator.h - Cycle-level CPU/memory simulator -------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profiling simulator standing in for Wattch/SimpleScalar. It
/// interprets the register-machine IR with an in-order, single-issue
/// scoreboard core, non-blocking loads (one outstanding DRAM miss), an
/// L1/L2 LRU hierarchy, an asynchronous DRAM whose service time is fixed
/// in *seconds* (frequency invariant), and perfect clock gating while the
/// core waits on memory. Energy is Ceff(class)·V² per operation; gated
/// time consumes nothing; memory energy is not modeled (the paper keeps
/// it constant and out of the optimization).
///
/// The same run produces everything the paper's toolchain needs:
///  * wall time and processor energy under any per-edge mode assignment,
///  * per-block, per-mode time/energy profiles (Tjm, Ejm),
///  * edge counts Gij and local-path counts Dhij,
///  * the analytic model's program parameters Noverlap, Ndependent,
///    Ncache (cycles) and tinvariant (seconds).
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_SIM_SIMULATOR_H
#define CDVS_SIM_SIMULATOR_H

#include "ir/Function.h"
#include "power/ModeTable.h"
#include "power/TransitionModel.h"
#include "sim/Cache.h"
#include "sim/ModeAssignment.h"
#include "sim/SimConfig.h"

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

namespace cdvs {

/// A local path through a block: entered via (H, I), left via (I, J).
/// H == -1 marks entry-block invocations with no incoming edge.
using LocalPath = std::tuple<int, int, int>;

/// Two consecutive local paths: (H,I,J) followed by (I,J,K). H == -2
/// marks the virtual pre-entry context.
using PathPair = std::tuple<int, int, int, int>;

/// Everything measured during one simulated execution.
struct RunStats {
  bool Completed = false; ///< False if the instruction cap was hit.
  double TimeSeconds = 0.0;
  double EnergyJoules = 0.0;

  uint64_t Instructions = 0;
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t L1DMisses = 0;
  uint64_t L1IMisses = 0; ///< only with SimConfig::ModelICache
  uint64_t L2Misses = 0;

  std::vector<uint64_t> BlockExecs;
  std::vector<double> BlockTimeSeconds;
  std::vector<double> BlockEnergyJoules;

  std::map<CfgEdge, uint64_t> EdgeCounts;   ///< Gij
  std::map<LocalPath, uint64_t> PathCounts; ///< Dhij
  /// 4-gram counts: consecutive local-path pairs, for the path-context
  /// scheduler's transition terms.
  std::map<PathPair, uint64_t> QuadCounts;

  uint64_t Transitions = 0;
  double TransitionSeconds = 0.0;
  double TransitionJoules = 0.0;

  /// Register file at exit (functional results for tests/examples).
  std::vector<int64_t> FinalRegs;

  // Analytic-model program parameters (Section 3), measured at the run's
  // operating point(s).
  uint64_t NoverlapCycles = 0;   ///< compute cycles under an open miss
  uint64_t NdependentCycles = 0; ///< compute cycles with no open miss
  uint64_t NcacheCycles = 0;     ///< core cycles of cache-serviced memory
  double TinvariantSeconds = 0.0;///< DRAM service time (asynchronous)
  double GatedSeconds = 0.0;     ///< clock-gated stall time (zero energy)
};

/// Interpreter + timing/energy model over one Function.
class Simulator {
public:
  explicit Simulator(const Function &F, SimConfig Config = SimConfig());

  /// Pre-run machine state: registers and the initial memory image.
  void setInitialReg(int Reg, int64_t Value);
  void setInitialMem32(uint64_t Addr, uint32_t Value);
  /// Direct access to the initial memory image (size = F.memBytes()).
  std::vector<uint8_t> &initialMemory() { return InitMem; }

  /// Runs the program with DVS control: \p Assignment names a mode of
  /// \p Modes per edge; real mode changes pay \p Transitions costs.
  RunStats run(const ModeTable &Modes, const ModeAssignment &Assignment,
               const TransitionModel &Transitions);

  /// Runs entirely at one operating point with no transition costs.
  RunStats runAtLevel(const VoltageLevel &Level);

  const Function &function() const { return F; }
  const SimConfig &config() const { return Config; }

private:
  const Function &F;
  SimConfig Config;
  std::vector<int64_t> InitRegs;
  std::vector<uint8_t> InitMem;
};

} // namespace cdvs

#endif // CDVS_SIM_SIMULATOR_H
