//===- sim/Cache.cpp - Set-associative LRU cache model --------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/Cache.h"

#include <algorithm>
#include <cassert>

using namespace cdvs;

static bool isPowerOfTwo(uint64_t X) { return X != 0 && (X & (X - 1)) == 0; }

Cache::Cache(CacheConfig InConfig) : Config(InConfig) {
  assert(Config.BlockBytes > 0 && isPowerOfTwo(Config.BlockBytes) &&
         "block size must be a power of two");
  assert(Config.Ways > 0 && "need at least one way");
  size_t NumSets =
      Config.SizeBytes / (static_cast<size_t>(Config.Ways) *
                          static_cast<size_t>(Config.BlockBytes));
  assert(NumSets > 0 && isPowerOfTwo(NumSets) &&
         "sets must be a nonzero power of two");
  Sets.resize(NumSets);
  SetMask = NumSets - 1;
  BlockShift = 0;
  while ((1 << BlockShift) < Config.BlockBytes)
    ++BlockShift;
}

bool Cache::access(uint64_t Addr) {
  uint64_t Block = Addr >> BlockShift;
  Set &S = Sets[Block & SetMask];
  uint64_t Tag = Block >> 0; // full block id as tag (set bits redundant)
  auto It = std::find(S.Tags.begin(), S.Tags.end(), Tag);
  if (It != S.Tags.end()) {
    // Move to front (most recently used).
    S.Tags.erase(It);
    S.Tags.insert(S.Tags.begin(), Tag);
    ++Hits;
    return true;
  }
  ++Misses;
  if (static_cast<int>(S.Tags.size()) >= Config.Ways)
    S.Tags.pop_back();
  S.Tags.insert(S.Tags.begin(), Tag);
  return false;
}

void Cache::reset() {
  for (Set &S : Sets)
    S.Tags.clear();
  Hits = 0;
  Misses = 0;
}
