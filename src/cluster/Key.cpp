//===- cluster/Key.cpp - Ring key of a job request -------------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "cluster/Key.h"

#include "support/Hash.h"
#include "taskgraph/TaskGraph.h"

#include <algorithm>

using namespace cdvs;
using namespace cdvs::cluster;

Fingerprint128 cdvs::cluster::requestKey(const JobRequest &R) {
  HashBuilder H;
  H.add(std::string("cdvs-request-key-v1"));
  // Job-kind discriminator, folded in for BOTH kinds: a task-graph key
  // and a single-program key can never collide, whatever their
  // contents, because their digests diverge at this token.
  if (R.Graph) {
    H.add(static_cast<uint64_t>(1));
    // Graph jobs key on the normalized graph content plus the request
    // fields the graph pipeline still reads. The graph's own deadline
    // knobs are part of fingerprintTaskGraph.
    Fingerprint128 GF = taskgraph::fingerprintTaskGraph(*R.Graph);
    H.add(GF.Hi);
    H.add(GF.Lo);
    H.add(R.NumLevels);
    H.add(R.CapacitanceF);
    H.add(static_cast<uint64_t>(R.GraphReplan ? 1 : 0));
    Fingerprint128 Key;
    H.digestRaw(Key.Hi, Key.Lo);
    return Key;
  }
  H.add(static_cast<uint64_t>(0));
  H.add(R.Workload);

  // Categories mirror the service's normalization: weights become
  // probabilities (weight / sum), an empty list means the workload's
  // default input at probability 1, and order is insignificant (the
  // objective is a commutative weighted sum) — so per-category digests
  // are folded in sorted order, like milp/Fingerprint does.
  double WeightSum = 0.0;
  for (const JobCategory &C : R.Categories)
    WeightSum += C.Weight;
  std::vector<std::string> Digests;
  if (R.Categories.empty()) {
    HashBuilder Sub;
    Sub.add(std::string());
    Sub.add(1.0);
    Digests.push_back(Sub.digest());
  } else {
    Digests.reserve(R.Categories.size());
    for (const JobCategory &C : R.Categories) {
      HashBuilder Sub;
      Sub.add(C.Input);
      Sub.add(WeightSum > 0.0 ? C.Weight / WeightSum : C.Weight);
      Digests.push_back(Sub.digest());
    }
    std::sort(Digests.begin(), Digests.end());
  }
  H.add(static_cast<uint64_t>(Digests.size()));
  for (const std::string &D : Digests)
    H.add(D);

  // An absolute deadline wins over tightness in the service, so only
  // the field that will actually resolve enters the key.
  if (R.DeadlineSeconds > 0.0) {
    H.add(static_cast<uint64_t>(1));
    H.add(R.DeadlineSeconds);
  } else {
    H.add(static_cast<uint64_t>(0));
    H.add(R.DeadlineTightness);
  }
  H.add(R.FilterThreshold);
  H.add(R.InitialMode);
  H.add(R.NumLevels);
  H.add(R.CapacitanceF);

  Fingerprint128 Key;
  H.digestRaw(Key.Hi, Key.Lo);
  return Key;
}
