//===- cluster/Key.h - Ring key of a job request ----------------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The routing key the cluster layer hashes onto the ring. The true
/// instance fingerprint (milp/Fingerprint.h) is only computable *after*
/// profiling, which happens on a backend — so the router keys on the
/// normalized request content instead: everything in a JobRequest that
/// feeds the instance (workload, categories with weights normalized to
/// probabilities, the resolved deadline field, filter threshold, initial
/// mode, level count, capacitance), and nothing that does not (the
/// caller-chosen id). Two requests describing the same optimization
/// problem therefore land on the same shard, which is exactly what the
/// per-shard content-addressed cache and single-flight dedup need; the
/// backend-side PeerFiller computes the same key, so router and backend
/// agree on a key's previous owner after a ring rebuild without talking.
///
/// The key starts with a job-kind discriminator (0 = single program,
/// 1 = task graph), so a graph job and a single-program job can never
/// hash to the same key. Graph jobs then key on the normalized graph
/// content (taskgraph::fingerprintTaskGraph) plus the mode-table and
/// replan fields the graph pipeline reads.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_CLUSTER_KEY_H
#define CDVS_CLUSTER_KEY_H

#include "milp/Fingerprint.h"
#include "service/Job.h"

namespace cdvs {
namespace cluster {

/// \returns the 128-bit ring key of \p R; see the file comment.
Fingerprint128 requestKey(const JobRequest &R);

} // namespace cluster
} // namespace cdvs

#endif // CDVS_CLUSTER_KEY_H
