//===- cluster/Router.cpp - Sharding front end over dvs-servers ------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "cluster/Router.h"

#include "cluster/Key.h"
#include "obs/Trace.h"
#include "service/JobIO.h"
#include "service/JsonLite.h"
#include "support/Clock.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace cdvs;
using namespace cdvs::cluster;
using net::EvErr;
using net::EvHup;
using net::EvIn;
using net::EvOut;

Router::Router(RouterOptions O)
    : Opts(std::move(O)), Ring(Opts.VirtualNodes),
      Flight(Opts.FlightCapacity) {}

namespace {

std::string hex128(uint64_t Hi, uint64_t Lo) {
  char Buf[33];
  std::snprintf(Buf, sizeof(Buf), "%016llx%016llx",
                static_cast<unsigned long long>(Hi),
                static_cast<unsigned long long>(Lo));
  return Buf;
}

std::string flightRecordJson(const FlightRecord &R) {
  char Num[64];
  std::string J = "{\"trace_id\":\"" + R.TraceId + "\",\"key\":\"" +
                  R.Key + "\",\"client\":" + std::to_string(R.ClientId) +
                  ",\"corr\":" + std::to_string(R.ClientCorr) +
                  ",\"owner\":\"" + jsonEscape(R.Owner) +
                  "\",\"retries\":" + std::to_string(R.Retries) +
                  ",\"hops\":[";
  for (size_t I = 0; I < R.Hops.size(); ++I) {
    if (I)
      J += ',';
    std::snprintf(Num, sizeof(Num), "%.6f", R.Hops[I].second);
    J += "{\"backend\":\"" + jsonEscape(R.Hops[I].first) +
         "\",\"seconds\":" + Num + "}";
  }
  std::snprintf(Num, sizeof(Num), "%.6f", R.TotalSeconds);
  J += std::string("],\"verdict\":\"") + jsonEscape(R.Verdict) +
       "\",\"seconds\":" + Num + "}";
  return J;
}

} // namespace

Router::~Router() { stop(); }

Router::Backend *Router::backendByName(const std::string &Name) {
  for (auto &B : Backends)
    if (B->Name == Name)
      return B.get();
  return nullptr;
}

ErrorOr<bool> Router::start() {
  if (Started)
    return makeError("router already started");
  if (Opts.Backends.empty())
    return makeError("router needs at least one backend");
  if (!Wakeup.valid())
    return makeError("wakeup fd unavailable");

  for (const std::string &Text : Opts.Backends) {
    ErrorOr<Address> A = parseAddress(Text);
    if (!A)
      return makeError(A.message());
    const std::string Name = A->name();
    if (backendByName(Name))
      return makeError("duplicate backend '" + Name + "'");
    auto B = std::make_unique<Backend>(Opts.MaxFrameBytes);
    B->Addr = *A;
    B->Name = Name;
    B->RequestsCtr = &obs::metrics().counter(
        "cdvs_cluster_requests_total",
        "requests proxied to each backend, retries included",
        {{"backend", Name}});
    B->UpGauge = &obs::metrics().gauge(
        "cdvs_cluster_backend_up",
        "1 while the backend is on the ring, 0 while evicted",
        {{"backend", Name}});
    B->UpGauge->set(1);
    B->LatencyHist = &obs::metrics().histogram(
        "cdvs_cluster_upstream_latency_seconds",
        "router-observed time from proxied send to backend answer",
        obs::latencyBucketsSeconds(), {{"backend", Name}});
    Ring.add(Name);
    HealthView[Name] = true;
    Backends.push_back(std::move(B));
  }

  BackendsGauge = &obs::metrics().gauge(
      "cdvs_cluster_backends", "backends currently on the ring");
  BackendsGauge->set(static_cast<double>(Ring.size()));
  ClientConnsGauge = &obs::metrics().gauge(
      "cdvs_cluster_client_connections",
      "client connections open on the router");
  ClientConnsGauge->set(0);
  RetriesCtr = &obs::metrics().counter(
      "cdvs_cluster_retries_total",
      "in-flight requests re-routed to the next ring owner");
  EvictionsCtr = &obs::metrics().counter(
      "cdvs_cluster_backend_evictions_total",
      "backends evicted from the ring after consecutive transport "
      "failures");
  ReinstatementsCtr = &obs::metrics().counter(
      "cdvs_cluster_backend_reinstatements_total",
      "evicted backends that answered a probe and rejoined the ring");
  RejectsCtr = &obs::metrics().counter(
      "cdvs_cluster_rejects_total",
      "router-originated rejects (bad request, no backends, exhausted "
      "retry budget)");
  SlowCtr = &obs::metrics().counter(
      "cdvs_cluster_slow_requests_total",
      "requests the flight recorder saw finish over the slow-log "
      "threshold, or fail");
  ScrapesCtr = &obs::metrics().counter(
      "cdvs_stats_scrapes_total",
      "StatsFetch scrapes answered over the wire.");
  // Pre-registered so the family exists (at zero) in every scrape even
  // before the trace ring first overwrites.
  obs::metrics().counter(
      "cdvs_trace_dropped_total",
      "Trace events lost to ring-buffer overwrite since process start.");

  if (Opts.SlowLogMs > 0) {
    if (Opts.SlowLogPath.empty() || Opts.SlowLogPath == "-") {
      SlowLog = stderr;
    } else {
      SlowLog = std::fopen(Opts.SlowLogPath.c_str(), "a");
      if (!SlowLog)
        return makeError("cannot open slow log '" + Opts.SlowLogPath +
                         "'");
      SlowLogOwned = true;
    }
  }

  ErrorOr<int> L = net::listenTcp(Opts.BindAddress, Opts.Port,
                                  Opts.Backlog);
  if (!L)
    return makeError(L.message());
  ListenFd = *L;
  ErrorOr<uint16_t> P = net::localPort(ListenFd);
  if (!P) {
    ::close(ListenFd);
    ListenFd = -1;
    return makeError(P.message());
  }
  BoundPort = *P;

  Io = net::Poller::create(Opts.ForcePoll);
  IoBackend = Io->backendName();
  Io->add(Wakeup.fd(), EvIn);
  Io->add(ListenFd, EvIn);

  StopRequested.store(false, std::memory_order_release);
  DrainRequested.store(false, std::memory_order_release);
  Started = true;
  LoopThread = std::thread([this] { loop(); });
  return true;
}

void Router::beginDrain() {
  DrainRequested.store(true, std::memory_order_release);
  Wakeup.notify();
}

bool Router::waitDrained(double TimeoutSeconds) {
  std::unique_lock<std::mutex> Lock(StateMu);
  if (TimeoutSeconds <= 0)
    return Drained;
  return DrainedCv.wait_for(Lock,
                            std::chrono::duration<double>(TimeoutSeconds),
                            [this] { return Drained; });
}

void Router::stop() {
  if (!Started)
    return;
  StopRequested.store(true, std::memory_order_release);
  Wakeup.notify();
  if (LoopThread.joinable())
    LoopThread.join();
  Started = false;
  if (SlowLogOwned && SlowLog)
    std::fclose(SlowLog);
  SlowLog = nullptr;
  SlowLogOwned = false;
}

RouterStats Router::stats() const {
  std::lock_guard<std::mutex> Lock(StatsMu);
  RouterStats S = Counters;
  S.HealthyBackends = 0;
  for (const auto &KV : HealthView)
    if (KV.second)
      ++S.HealthyBackends;
  return S;
}

std::vector<std::pair<std::string, bool>> Router::backendHealth() const {
  std::lock_guard<std::mutex> Lock(StatsMu);
  return {HealthView.begin(), HealthView.end()};
}

std::vector<FlightRecord> Router::flightRecords() const {
  std::lock_guard<std::mutex> Lock(FlightMu);
  std::vector<FlightRecord> Out;
  Out.reserve(Flight.size());
  Flight.forEach([&Out](const FlightRecord &R) { Out.push_back(R); });
  return Out;
}

void Router::recordFlight(const PendingRequest &P,
                          const std::string &Verdict, uint64_t NowNs) {
  double Total = static_cast<double>(NowNs - P.StartNs) * 1e-9;
  if (P.HasTrace && obs::trace().enabled()) {
    // The router's span for this request: admission to answer, parented
    // under the client's span, parent of every upstream send — the hinge
    // of the cross-process timeline.
    obs::TraceEvent E;
    E.Name = "route";
    E.Cat = "cluster";
    E.Phase = 'X';
    E.Tid = obs::traceThreadId();
    E.StartNs = P.StartNs;
    E.DurNs = NowNs - P.StartNs;
    E.TraceHi = P.Trace.TraceHi;
    E.TraceLo = P.Trace.TraceLo;
    E.SpanId = P.RouteSpanId;
    E.ParentSpan = P.Trace.ParentSpan;
    E.ArgKey0 = "retries";
    E.ArgVal0 = P.Tried.empty()
                    ? 0.0
                    : static_cast<double>(P.Tried.size() - 1);
    obs::trace().record(E);
  }
  if (Opts.FlightCapacity == 0)
    return;
  FlightRecord R;
  if (P.HasTrace)
    R.TraceId = hex128(P.Trace.TraceHi, P.Trace.TraceLo);
  R.Key = P.Key.toHex();
  R.ClientId = P.ClientId;
  R.ClientCorr = P.ClientCorr;
  R.Owner = P.Tried.empty() ? std::string() : P.Tried.front();
  R.Retries = P.Tried.empty()
                  ? 0
                  : static_cast<int>(P.Tried.size()) - 1;
  R.Hops = P.Hops;
  R.Verdict = Verdict;
  R.TotalSeconds = Total;
  bool Slow = Opts.SlowLogMs > 0 &&
              (Verdict != "response" ||
               Total * 1e3 >= static_cast<double>(Opts.SlowLogMs));
  if (Slow) {
    SlowCtr->inc();
    if (SlowLog) {
      std::string Line = flightRecordJson(R);
      std::fprintf(SlowLog, "%s\n", Line.c_str());
      std::fflush(SlowLog);
    }
  }
  std::lock_guard<std::mutex> Lock(FlightMu);
  Flight.push(std::move(R));
}

//===----------------------------------------------------------------------===//
// The loop
//===----------------------------------------------------------------------===//

void Router::loop() {
  uint64_t Now = monotonicNanos();
  for (auto &B : Backends)
    startConnect(*B, Now);
  armHealthTimer(Now);

  std::vector<net::PollEvent> Events;
  while (!StopRequested.load(std::memory_order_acquire)) {
    if (DrainRequested.load(std::memory_order_acquire) && !DrainStarted)
      startDrainOnLoop();
    Now = monotonicNanos();
    Wheel.advance(Now);
    int N = Io->wait(Events, Wheel.pollTimeoutMs(Now));
    if (N < 0)
      break;
    Now = monotonicNanos();
    Tombstones.clear();
    for (const net::PollEvent &E : Events) {
      if (StopRequested.load(std::memory_order_acquire))
        break;
      if (Tombstones.count(E.Fd))
        continue;
      if (E.Fd == Wakeup.fd()) {
        Wakeup.drain();
        continue;
      }
      if (E.Fd == ListenFd) {
        if (E.Events & (EvIn | EvErr))
          acceptReady(Now);
        continue;
      }
      auto BIt = BackendByFd.find(E.Fd);
      if (BIt != BackendByFd.end()) {
        backendEvent(*BIt->second, E.Events, Now);
        continue;
      }
      auto CIt = ClientByFd.find(E.Fd);
      if (CIt != ClientByFd.end())
        clientEvent(CIt->second, E.Events, Now);
    }
  }
  teardown();
}

void Router::teardown() {
  std::vector<uint64_t> Ids;
  Ids.reserve(ClientsById.size());
  for (const auto &KV : ClientsById)
    Ids.push_back(KV.first);
  for (uint64_t Id : Ids)
    closeClient(Id);
  for (auto &B : Backends)
    closeBackendLink(*B);
  if (ListenFd >= 0) {
    Io->remove(ListenFd);
    ::close(ListenFd);
    ListenFd = -1;
  }
  Io->remove(Wakeup.fd());
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    Drained = true;
  }
  DrainedCv.notify_all();
}

void Router::startDrainOnLoop() {
  DrainStarted = true;
  if (ListenFd >= 0) {
    Io->remove(ListenFd);
    ::close(ListenFd);
    ListenFd = -1;
  }
  std::vector<uint64_t> Ids;
  Ids.reserve(ClientsById.size());
  for (const auto &KV : ClientsById)
    Ids.push_back(KV.first);
  for (uint64_t Id : Ids) {
    auto It = ClientsById.find(Id);
    if (It == ClientsById.end())
      continue;
    ClientConn &C = *It->second;
    updateClientSubscription(C);
    maybeFinishClient(C);
  }
  finishDrainIfIdle();
}

void Router::finishDrainIfIdle() {
  if (!DrainStarted || !ClientsById.empty())
    return;
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    Drained = true;
  }
  DrainedCv.notify_all();
}

//===----------------------------------------------------------------------===//
// Client side
//===----------------------------------------------------------------------===//

void Router::acceptReady(uint64_t NowNs) {
  (void)NowNs;
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (ClientsById.size() >= Opts.MaxConnections) {
      // Best-effort structured refusal; the socket is still blocking so
      // a tiny frame either goes out now or not at all.
      std::string R = net::encodeFrame(
          net::FrameType::Reject, 0,
          net::encodeReject("busy", "router connection limit reached"));
      ::send(Fd, R.data(), R.size(), MSG_NOSIGNAL);
      ::close(Fd);
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Counters.ConnectionsRejected;
      continue;
    }
    net::setNonBlocking(Fd);
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    uint64_t Id = NextClientId++;
    auto C = std::make_unique<ClientConn>(Opts.MaxFrameBytes);
    C->Fd = Fd;
    C->Id = Id;
    if (!Io->add(Fd, EvIn)) {
      ::close(Fd);
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Counters.ConnectionsRejected;
      continue;
    }
    C->Subscribed = EvIn;
    ClientByFd[Fd] = Id;
    ClientsById[Id] = std::move(C);
    ClientConnsGauge->set(static_cast<double>(ClientsById.size()));
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Counters.ConnectionsAccepted;
    Counters.OpenConnections = ClientsById.size();
  }
}

void Router::clientEvent(uint64_t Id, unsigned Events, uint64_t NowNs) {
  auto It = ClientsById.find(Id);
  if (It == ClientsById.end())
    return;
  ClientConn &C = *It->second;
  if (Events & EvErr) {
    closeClient(Id);
    return;
  }
  if (Events & EvOut) {
    flushClient(C);
    if (!ClientsById.count(Id))
      return;
  }
  if (!(Events & (EvIn | EvHup)))
    return;
  char Buf[64 * 1024];
  for (;;) {
    ssize_t N = ::recv(C.Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      C.Parser.feed(Buf, static_cast<size_t>(N));
      processClientFrames(C, NowNs);
      if (!ClientsById.count(Id))
        return;
      continue;
    }
    if (N == 0) {
      C.SawEof = true;
      if (C.Parser.buffered() > 0) {
        // Hung up mid-frame: nothing more can be trusted or answered.
        {
          std::lock_guard<std::mutex> Lock(StatsMu);
          ++Counters.ProtocolErrors;
        }
        closeClient(Id);
        return;
      }
      updateClientSubscription(C);
      maybeFinishClient(C);
      return;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return;
    closeClient(Id);
    return;
  }
}

void Router::processClientFrames(ClientConn &C, uint64_t NowNs) {
  net::Frame F;
  for (;;) {
    if (C.CloseAfterFlush)
      return;
    net::FrameParser::Next R = C.Parser.next(F);
    if (R == net::FrameParser::Next::NeedMore)
      return;
    if (R == net::FrameParser::Next::Error) {
      {
        std::lock_guard<std::mutex> Lock(StatsMu);
        ++Counters.ProtocolErrors;
      }
      sendClientReject(C, 0, net::wireStatusName(C.Parser.error()),
                       "framing error; closing");
      C.CloseAfterFlush = true;
      updateClientSubscription(C);
      return;
    }
    {
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Counters.FramesIn;
    }
    switch (F.Type) {
    case net::FrameType::Request:
    case net::FrameType::GraphRequest:
      routeRequest(C, F, NowNs);
      break;
    case net::FrameType::Ping:
      // The monotonic-clock stamp lets scrapers align per-process
      // clocks from the RTT midpoint; old clients ignore Pong payloads.
      enqueueClientFrame(C, net::FrameType::Pong, F.Correlation,
                         "{\"now_ns\":" +
                             std::to_string(monotonicNanos()) + "}");
      break;
    case net::FrameType::StatsFetch:
      handleStatsFetch(C, F);
      break;
    default:
      {
        std::lock_guard<std::mutex> Lock(StatsMu);
        ++Counters.ProtocolErrors;
      }
      sendClientReject(C, F.Correlation, "bad_type",
                       std::string("unexpected frame type ") +
                           net::frameTypeName(F.Type));
      C.CloseAfterFlush = true;
      updateClientSubscription(C);
      return;
    }
  }
}

void Router::routeRequest(ClientConn &C, net::Frame &F, uint64_t NowNs) {
  if (!C.Pending.insert(F.Correlation).second) {
    {
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Counters.ProtocolErrors;
    }
    sendClientReject(C, F.Correlation, "bad_request",
                     "correlation id already in flight");
    return;
  }
  ErrorOr<JobRequest> Req = jobRequestFromJsonText(F.Payload);
  if (!Req) {
    C.Pending.erase(F.Correlation);
    sendClientReject(C, F.Correlation, "bad_request", Req.message());
    return;
  }
  if (Ring.empty()) {
    C.Pending.erase(F.Correlation);
    sendClientReject(C, F.Correlation, "no_backends",
                     "no healthy backends on the ring");
    return;
  }
  PendingRequest P;
  P.ClientId = C.Id;
  P.ClientCorr = F.Correlation;
  P.Payload = std::move(F.Payload);
  P.Kind = F.Type;
  P.Key = requestKey(*Req);
  P.RetriesLeft = Opts.RetryBudget;
  P.StartNs = NowNs;
  if (F.HasTrace && F.Trace.valid()) {
    P.Trace = F.Trace;
    P.HasTrace = true;
    // Allocated now so upstream sends can name it as their parent; the
    // span's completion event is recorded when the request retires.
    P.RouteSpanId = obs::nextSpanId();
  }
  ++C.InFlight;
  const std::string *Owner = Ring.ownerOf(P.Key);
  Backend *B = Owner ? backendByName(*Owner) : nullptr;
  if (!B) {
    rejectPending(P, "no_backends", "ring lookup failed");
    return;
  }
  sendToBackend(*B, std::move(P), NowNs);
}

void Router::handleStatsFetch(ClientConn &C, net::Frame &F) {
  // Served inline on the loop like every other frame: the renders take
  // the registry/ring locks briefly, and scrapes are rare (human or CI
  // cadence) next to request traffic.
  ScrapesCtr->inc();
  std::string Flights = "[";
  {
    std::lock_guard<std::mutex> Lock(FlightMu);
    bool First = true;
    Flight.forEach([&Flights, &First](const FlightRecord &R) {
      if (!First)
        Flights += ',';
      First = false;
      Flights += flightRecordJson(R);
    });
  }
  Flights += ']';
  std::string Payload =
      "{\"role\":\"router\",\"pid\":" +
      std::to_string(static_cast<long>(getpid())) + ",\"now_ns\":" +
      std::to_string(monotonicNanos()) + ",\"trace_dropped\":" +
      std::to_string(obs::trace().dropped()) + ",\"flight\":" +
      Flights + ",\"metrics\":\"" +
      jsonEscape(obs::metrics().renderPrometheus()) + "\",\"trace\":" +
      obs::trace().renderChromeTrace(static_cast<int>(getpid()),
                                     "dvs-router") +
      "}";
  enqueueClientFrame(C, net::FrameType::StatsData, F.Correlation,
                     Payload);
}

void Router::enqueueClientFrame(ClientConn &C, net::FrameType Type,
                                uint64_t Correlation,
                                const std::string &Payload) {
  C.WriteQ.push_back(net::encodeFrame(Type, Correlation, Payload));
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Counters.FramesOut;
  }
  updateClientSubscription(C);
}

void Router::sendClientReject(ClientConn &C, uint64_t Correlation,
                              const std::string &Code,
                              const std::string &Reason) {
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Counters.RejectsSent;
  }
  RejectsCtr->inc();
  enqueueClientFrame(C, net::FrameType::Reject, Correlation,
                     net::encodeReject(Code, Reason));
}

void Router::flushClient(ClientConn &C) {
  uint64_t Id = C.Id;
  while (!C.WriteQ.empty()) {
    const std::string &Front = C.WriteQ.front();
    ssize_t N = ::send(C.Fd, Front.data() + C.WriteOff,
                       Front.size() - C.WriteOff, MSG_NOSIGNAL);
    if (N > 0) {
      C.WriteOff += static_cast<size_t>(N);
      if (C.WriteOff == Front.size()) {
        C.WriteQ.pop_front();
        C.WriteOff = 0;
      }
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      break;
    closeClient(Id);
    return;
  }
  if (C.WriteQ.empty()) {
    bool Done = C.CloseAfterFlush ||
                ((C.SawEof || DrainStarted) && C.InFlight == 0);
    if (Done) {
      closeClient(Id);
      return;
    }
  }
  updateClientSubscription(C);
}

void Router::updateClientSubscription(ClientConn &C) {
  unsigned Want = 0;
  if (!C.CloseAfterFlush && !C.SawEof && !DrainStarted)
    Want |= EvIn;
  if (!C.WriteQ.empty())
    Want |= EvOut;
  if (Want != C.Subscribed) {
    Io->update(C.Fd, Want);
    C.Subscribed = Want;
  }
}

void Router::maybeFinishClient(ClientConn &C) {
  if (!C.WriteQ.empty())
    return;
  if (C.CloseAfterFlush ||
      ((C.SawEof || DrainStarted) && C.InFlight == 0))
    closeClient(C.Id);
}

void Router::closeClient(uint64_t Id) {
  auto It = ClientsById.find(Id);
  if (It == ClientsById.end())
    return;
  ClientConn &C = *It->second;
  Io->remove(C.Fd);
  ClientByFd.erase(C.Fd);
  Tombstones.insert(C.Fd);
  ::close(C.Fd);
  // Requests still riding backends are left in place; their answers
  // will find no client and count as orphans, which is the truth.
  ClientsById.erase(It);
  ClientConnsGauge->set(static_cast<double>(ClientsById.size()));
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Counters.ConnectionsClosed;
    Counters.OpenConnections = ClientsById.size();
  }
  finishDrainIfIdle();
}

//===----------------------------------------------------------------------===//
// Backend side
//===----------------------------------------------------------------------===//

void Router::startConnect(Backend &B, uint64_t NowNs) {
  if (B.Conn != Backend::Link::Idle)
    return;
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    transportFailure(B, "socket() failed", NowNs);
    return;
  }
  net::setNonBlocking(Fd);
  sockaddr_in A{};
  A.sin_family = AF_INET;
  A.sin_port = htons(B.Addr.Port);
  if (::inet_pton(AF_INET, B.Addr.Host.c_str(), &A.sin_addr) != 1) {
    ::close(Fd);
    transportFailure(B, "address not numeric IPv4", NowNs);
    return;
  }
  int Rc = ::connect(Fd, reinterpret_cast<sockaddr *>(&A), sizeof(A));
  if (Rc != 0 && errno != EINPROGRESS) {
    ::close(Fd);
    transportFailure(B, "connect failed", NowNs);
    return;
  }
  B.Fd = Fd;
  B.Parser = net::FrameParser(Opts.MaxFrameBytes);
  BackendByFd[Fd] = &B;
  B.Conn = Backend::Link::Connecting;
  if (!Io->add(Fd, EvOut)) {
    transportFailure(B, "poller add failed", NowNs);
    return;
  }
  B.Subscribed = EvOut;
  if (Rc == 0) {
    onBackendConnected(B);
    return;
  }
  Backend *BP = &B;
  B.ConnectTimer = Wheel.schedule(
      NowNs, Opts.ConnectTimeoutMs * 1'000'000ull, [this, BP] {
        if (BP->Conn != Backend::Link::Connecting)
          return;
        BP->ConnectTimer = 0;
        transportFailure(*BP, "connect timeout", monotonicNanos());
      });
}

void Router::onBackendConnected(Backend &B) {
  if (B.ConnectTimer) {
    Wheel.cancel(B.ConnectTimer);
    B.ConnectTimer = 0;
  }
  int One = 1;
  ::setsockopt(B.Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  B.Conn = Backend::Link::Up;
  // Probe ping: reinstatement is gated on an answered Pong, so a
  // process that accepts but cannot speak the protocol never rejoins.
  B.PingCorr = B.NextCorr++;
  B.WriteQ.push_back(
      net::encodeFrame(net::FrameType::Ping, B.PingCorr, ""));
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Counters.FramesOut;
  }
  B.Subscribed = 0; // force the update below to re-register interest
  updateBackendSubscription(B);
}

void Router::backendEvent(Backend &B, unsigned Events, uint64_t NowNs) {
  if (B.Conn == Backend::Link::Connecting) {
    if (!(Events & (EvOut | EvErr | EvHup)))
      return;
    int Err = 0;
    socklen_t Len = sizeof(Err);
    if (::getsockopt(B.Fd, SOL_SOCKET, SO_ERROR, &Err, &Len) != 0)
      Err = errno ? errno : EIO;
    if (Err != 0) {
      transportFailure(B, std::strerror(Err), NowNs);
      return;
    }
    onBackendConnected(B);
    return;
  }
  if (B.Conn != Backend::Link::Up)
    return;
  if (Events & EvErr) {
    transportFailure(B, "socket error", NowNs);
    return;
  }
  if (Events & EvOut) {
    flushBackend(B);
    if (B.Conn != Backend::Link::Up)
      return;
  }
  if (!(Events & (EvIn | EvHup)))
    return;
  char Buf[64 * 1024];
  for (;;) {
    ssize_t N = ::recv(B.Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      B.Parser.feed(Buf, static_cast<size_t>(N));
      processBackendFrames(B, NowNs);
      if (B.Conn != Backend::Link::Up)
        return;
      continue;
    }
    if (N == 0) {
      transportFailure(B, "backend closed the connection", NowNs);
      return;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return;
    transportFailure(B, "recv failed", NowNs);
    return;
  }
}

void Router::processBackendFrames(Backend &B, uint64_t NowNs) {
  net::Frame F;
  for (;;) {
    if (B.Conn != Backend::Link::Up)
      return;
    net::FrameParser::Next R = B.Parser.next(F);
    if (R == net::FrameParser::Next::NeedMore)
      return;
    if (R == net::FrameParser::Next::Error) {
      {
        std::lock_guard<std::mutex> Lock(StatsMu);
        ++Counters.ProtocolErrors;
      }
      transportFailure(B, "framing error from backend", NowNs);
      return;
    }
    {
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Counters.FramesIn;
    }
    switch (F.Type) {
    case net::FrameType::Pong:
      if (F.Correlation == B.PingCorr && B.PingCorr != 0) {
        B.PingCorr = 0;
        recover(B);
      }
      break;
    case net::FrameType::Response:
    case net::FrameType::GraphResponse:
    case net::FrameType::Reject:
      deliver(B, F, NowNs);
      break;
    case net::FrameType::Ping:
      B.WriteQ.push_back(
          net::encodeFrame(net::FrameType::Pong, F.Correlation, ""));
      {
        std::lock_guard<std::mutex> Lock(StatsMu);
        ++Counters.FramesOut;
      }
      updateBackendSubscription(B);
      break;
    default:
      {
        std::lock_guard<std::mutex> Lock(StatsMu);
        ++Counters.ProtocolErrors;
      }
      transportFailure(B,
                       std::string("unexpected frame type ") +
                           net::frameTypeName(F.Type),
                       NowNs);
      return;
    }
  }
}

void Router::deliver(Backend &B, net::Frame &F, uint64_t NowNs) {
  auto It = B.InFlight.find(F.Correlation);
  if (It == B.InFlight.end()) {
    // A late answer for a request that timed out upstream and was
    // retried elsewhere, or whose client vanished: drop it.
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Counters.OrphanResponses;
    return;
  }
  PendingRequest P = std::move(It->second);
  B.InFlight.erase(It);
  if (P.TimerId) {
    Wheel.cancel(P.TimerId);
    P.TimerId = 0;
  }
  // An answered request proves the transport works end to end.
  B.Failures = 0;
  B.LatencyHist->observe(static_cast<double>(NowNs - P.StartNs) * 1e-9);
  if (P.HopStartNs && P.Hops.size() < P.Tried.size())
    P.Hops.emplace_back(P.Tried.back(),
                        static_cast<double>(NowNs - P.HopStartNs) *
                            1e-9);

  auto CIt = ClientsById.find(P.ClientId);
  if (CIt == ClientsById.end()) {
    recordFlight(P, "orphan", NowNs);
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Counters.OrphanResponses;
    return;
  }
  ClientConn &C = *CIt->second;
  if (C.Pending.erase(P.ClientCorr) == 0) {
    recordFlight(P, "orphan", NowNs);
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Counters.OrphanResponses;
    return;
  }
  --C.InFlight;
  recordFlight(P, F.Type == net::FrameType::Reject ? "reject"
                                                   : "response",
               NowNs);
  if (F.Type != net::FrameType::Reject) {
    {
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Counters.ResponsesRelayed;
    }
    if (Opts.AnnotateBackend && !F.Payload.empty() &&
        F.Payload.front() == '{') {
      size_t Close = F.Payload.rfind('}');
      if (Close != std::string::npos)
        F.Payload.insert(Close, ",\"backend\":\"" +
                                    jsonEscape(B.Name) + "\"");
    }
  } else {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Counters.RejectsRelayed;
  }
  enqueueClientFrame(C, F.Type, P.ClientCorr, F.Payload);
}

void Router::flushBackend(Backend &B) {
  while (!B.WriteQ.empty()) {
    const std::string &Front = B.WriteQ.front();
    ssize_t N = ::send(B.Fd, Front.data() + B.WriteOff,
                       Front.size() - B.WriteOff, MSG_NOSIGNAL);
    if (N > 0) {
      B.WriteOff += static_cast<size_t>(N);
      if (B.WriteOff == Front.size()) {
        B.WriteQ.pop_front();
        B.WriteOff = 0;
      }
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      break;
    transportFailure(B, "send failed", monotonicNanos());
    return;
  }
  updateBackendSubscription(B);
}

void Router::updateBackendSubscription(Backend &B) {
  if (B.Conn != Backend::Link::Up || B.Fd < 0)
    return;
  unsigned Want = EvIn;
  if (!B.WriteQ.empty())
    Want |= EvOut;
  if (Want != B.Subscribed) {
    Io->update(B.Fd, Want);
    B.Subscribed = Want;
  }
}

void Router::sendToBackend(Backend &B, PendingRequest P, uint64_t NowNs) {
  P.Tried.push_back(B.Name);
  P.HopStartNs = NowNs;
  uint64_t Corr = B.NextCorr++;
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Counters.RequestsRouted;
    ++Counters.FramesOut;
  }
  B.RequestsCtr->inc();
  // Re-emit the client's trace context upstream with the router's route
  // span as parent, so backend spans nest under the router's hop.
  net::TraceContext Upstream = P.Trace;
  Upstream.ParentSpan = P.RouteSpanId;
  B.WriteQ.push_back(net::encodeFrame(P.Kind, Corr, P.Payload,
                                      P.HasTrace ? &Upstream : nullptr));
  if (Opts.UpstreamTimeoutMs > 0) {
    Backend *BP = &B;
    P.TimerId = Wheel.schedule(
        NowNs, Opts.UpstreamTimeoutMs * 1'000'000ull, [this, BP, Corr] {
          auto It = BP->InFlight.find(Corr);
          if (It == BP->InFlight.end())
            return;
          PendingRequest Timed = std::move(It->second);
          BP->InFlight.erase(It);
          Timed.TimerId = 0;
          {
            std::lock_guard<std::mutex> Lock(StatsMu);
            ++Counters.UpstreamTimeouts;
          }
          retryPending(std::move(Timed), monotonicNanos());
        });
  }
  B.InFlight.emplace(Corr, std::move(P));
  switch (B.Conn) {
  case Backend::Link::Up:
    updateBackendSubscription(B);
    break;
  case Backend::Link::Connecting:
    break; // queued; flushed by onBackendConnected
  case Backend::Link::Idle:
    // Last action on purpose: an immediate connect failure re-enters
    // transportFailure -> retryPending, which may consume P again.
    startConnect(B, NowNs);
    break;
  }
}

std::vector<Router::PendingRequest>
Router::closeBackendLink(Backend &B) {
  std::vector<PendingRequest> Orphans;
  if (B.ConnectTimer) {
    Wheel.cancel(B.ConnectTimer);
    B.ConnectTimer = 0;
  }
  Orphans.reserve(B.InFlight.size());
  for (auto &KV : B.InFlight) {
    if (KV.second.TimerId) {
      Wheel.cancel(KV.second.TimerId);
      KV.second.TimerId = 0;
    }
    Orphans.push_back(std::move(KV.second));
  }
  B.InFlight.clear();
  B.WriteQ.clear();
  B.WriteOff = 0;
  B.PingCorr = 0;
  if (B.Fd >= 0) {
    Io->remove(B.Fd);
    BackendByFd.erase(B.Fd);
    Tombstones.insert(B.Fd);
    ::close(B.Fd);
    B.Fd = -1;
  }
  B.Subscribed = 0;
  B.Conn = Backend::Link::Idle;
  B.Parser = net::FrameParser(Opts.MaxFrameBytes);
  return Orphans;
}

void Router::transportFailure(Backend &B, const std::string &Reason,
                              uint64_t NowNs) {
  (void)Reason;
  obs::traceInstant("cluster_backend_failure", "cluster", "failures",
                    static_cast<double>(B.Failures + 1));
  std::vector<PendingRequest> Orphans = closeBackendLink(B);
  ++B.Failures;
  if (B.Healthy && B.Failures >= Opts.FailThreshold)
    markDown(B);
  for (PendingRequest &P : Orphans)
    retryPending(std::move(P), NowNs);
}

void Router::markDown(Backend &B) {
  B.Healthy = false;
  Ring.remove(B.Name);
  B.UpGauge->set(0);
  EvictionsCtr->inc();
  BackendsGauge->set(static_cast<double>(Ring.size()));
  std::lock_guard<std::mutex> Lock(StatsMu);
  ++Counters.BackendEvictions;
  HealthView[B.Name] = false;
}

void Router::recover(Backend &B) {
  B.Failures = 0;
  if (B.Healthy)
    return;
  B.Healthy = true;
  Ring.add(B.Name);
  B.UpGauge->set(1);
  ReinstatementsCtr->inc();
  BackendsGauge->set(static_cast<double>(Ring.size()));
  std::lock_guard<std::mutex> Lock(StatsMu);
  ++Counters.BackendReinstatements;
  HealthView[B.Name] = true;
}

void Router::retryPending(PendingRequest P, uint64_t NowNs) {
  // Account the hop that just failed or timed out before re-routing.
  if (P.HopStartNs && P.Hops.size() < P.Tried.size())
    P.Hops.emplace_back(P.Tried.back(),
                        static_cast<double>(NowNs - P.HopStartNs) *
                            1e-9);
  auto CIt = ClientsById.find(P.ClientId);
  if (CIt == ClientsById.end() ||
      !CIt->second->Pending.count(P.ClientCorr)) {
    recordFlight(P, "orphan", NowNs);
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Counters.OrphanResponses;
    return;
  }
  if (P.RetriesLeft <= 0) {
    rejectPending(P, "upstream", "retry budget exhausted");
    return;
  }
  --P.RetriesLeft;
  Backend *Next = nullptr;
  for (const std::string &Name :
       Ring.ownersOf(P.Key, Backends.size())) {
    if (std::find(P.Tried.begin(), P.Tried.end(), Name) ==
        P.Tried.end()) {
      Next = backendByName(Name);
      break;
    }
  }
  if (!Next) {
    rejectPending(P, "upstream",
                  "no healthy backend remains for this key");
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Counters.Retries;
  }
  RetriesCtr->inc();
  sendToBackend(*Next, std::move(P), NowNs);
}

void Router::rejectPending(PendingRequest &P, const std::string &Code,
                           const std::string &Reason) {
  if (P.TimerId) {
    Wheel.cancel(P.TimerId);
    P.TimerId = 0;
  }
  recordFlight(P, Code, monotonicNanos());
  auto It = ClientsById.find(P.ClientId);
  if (It == ClientsById.end())
    return;
  ClientConn &C = *It->second;
  if (C.Pending.erase(P.ClientCorr) == 0)
    return;
  --C.InFlight;
  sendClientReject(C, P.ClientCorr, Code, Reason);
}

void Router::healthTick(uint64_t NowNs) {
  for (auto &BP : Backends) {
    Backend &B = *BP;
    switch (B.Conn) {
    case Backend::Link::Idle:
      startConnect(B, NowNs);
      break;
    case Backend::Link::Connecting:
      break; // the connect timer owns this deadline
    case Backend::Link::Up:
      if (B.PingCorr != 0) {
        // Last tick's probe is still unanswered: the link is not
        // moving frames, whatever the solver threads are doing.
        transportFailure(B, "ping unanswered", NowNs);
        break;
      }
      B.PingCorr = B.NextCorr++;
      B.WriteQ.push_back(
          net::encodeFrame(net::FrameType::Ping, B.PingCorr, ""));
      {
        std::lock_guard<std::mutex> Lock(StatsMu);
        ++Counters.FramesOut;
      }
      updateBackendSubscription(B);
      break;
    }
  }
  armHealthTimer(monotonicNanos());
}

void Router::armHealthTimer(uint64_t NowNs) {
  Wheel.schedule(NowNs, Opts.HealthIntervalMs * 1'000'000ull,
                 [this] { healthTick(monotonicNanos()); });
}
