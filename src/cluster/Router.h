//===- cluster/Router.h - Sharding front end over dvs-servers ---*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cluster front end: one event-loop thread that is a cdvs-wire v1
/// *server* to clients and a multiplexed cdvs-wire *client* to every
/// dvs-server backend. A client Request is parsed (strictly — garbage is
/// rejected here, not after burning a backend hop), keyed
/// (cluster/Key.h), hashed onto the consistent ring (cluster/Ring.h),
/// and proxied to the owning backend by correlation-id remapping: the
/// router assigns its own upstream id per backend connection, remembers
/// (client connection, client id), and rewrites the header on the way
/// back — payloads cross untouched except for an optional
/// `"backend":"host:port"` annotation spliced into Responses for
/// loadgen's per-backend breakdown.
///
/// Health and failover, all on the loop's timer wheel:
///
///  * every HealthIntervalMs each Up backend is Pinged; an unanswered
///    ping by the next tick, a failed/timed-out connect, a framing
///    error, or an unexpected EOF is a transport failure (a slow solve
///    is NOT — solver latency must never evict a healthy backend);
///  * FailThreshold consecutive failures evict the backend from the
///    ring (its keys reassign to ring successors — consistent hashing
///    moves only the dead member's ~1/N share);
///  * eviction is not forever: the health tick keeps probing, and a
///    completed connect + Pong reinstates the backend onto the ring
///    (probe-based, so a half-dead process that accepts but does not
///    answer never rejoins);
///  * requests in flight on a failed backend retry on the next ring
///    owner with a per-request budget (RetryBudget) and a tried-set so
///    a retry never lands on the backend that just failed it; solves
///    are idempotent and content-addressed, so a retry is safe and a
///    duplicate response for an already-answered id is dropped. An
///    exhausted budget answers Reject{"upstream"} — every admitted
///    request gets exactly one answer.
///
/// Graceful drain mirrors net::Server: stop accepting, let in-flight
/// answers flush, close when quiet.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_CLUSTER_ROUTER_H
#define CDVS_CLUSTER_ROUTER_H

#include "cluster/Address.h"
#include "cluster/Ring.h"
#include "net/EventLoop.h"
#include "net/Wire.h"
#include "obs/Metrics.h"
#include "support/RingBuffer.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace cdvs {
namespace cluster {

/// Sizing and policy knobs for a Router.
struct RouterOptions {
  std::string BindAddress = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via Router::port().
  uint16_t Port = 0;
  int Backlog = 128;
  /// Backend addresses ("host:port" each); fixed membership, dynamic
  /// health.
  std::vector<std::string> Backends;
  /// Ring points per backend; must match the backends' PeerFiller.
  int VirtualNodes = 64;
  /// Accepted client connections beyond this are refused.
  size_t MaxConnections = 256;
  /// Per-frame payload cap, both directions.
  size_t MaxFrameBytes = net::kDefaultMaxPayloadBytes;
  /// Health-probe cadence; also the ping-answer deadline.
  uint64_t HealthIntervalMs = 500;
  /// Consecutive transport failures that evict a backend.
  int FailThreshold = 3;
  /// Nonblocking upstream connect deadline.
  uint64_t ConnectTimeoutMs = 1'000;
  /// Per proxied request: re-route to the next owner after this long
  /// without an answer. 0 disables (backends own solve timeouts).
  uint64_t UpstreamTimeoutMs = 0;
  /// Failover retries per request after its first routing.
  int RetryBudget = 2;
  /// Splice "backend":"host:port" into relayed Responses.
  bool AnnotateBackend = true;
  /// Flight-recorder depth: the newest completed proxied requests are
  /// kept (key, owner, per-hop latencies, verdict) for StatsFetch
  /// scrapes and post-mortems. 0 disables recording.
  size_t FlightCapacity = 256;
  /// Dump a JSON line for every request slower than this (or answered
  /// with a reject) to SlowLogPath. 0 disables the slow log.
  uint64_t SlowLogMs = 0;
  /// Slow-log destination; empty or "-" writes to stderr.
  std::string SlowLogPath;
  /// Use the portable poll(2) backend even where epoll exists.
  bool ForcePoll = false;
};

/// One completed proxied request, as the router's bounded flight
/// recorder remembers it: identity, routing history, outcome. Hops are
/// (backend name, seconds from send to answer/failure), in routing
/// order — a clean request has exactly one.
struct FlightRecord {
  /// 32 lowercase hex chars, empty when the client sent no trace
  /// context.
  std::string TraceId;
  /// Request fingerprint (32 hex chars) — joins against cache keys.
  std::string Key;
  uint64_t ClientId = 0;
  uint64_t ClientCorr = 0;
  /// First backend this request was routed to (the ring owner at
  /// admission).
  std::string Owner;
  int Retries = 0;
  std::vector<std::pair<std::string, double>> Hops;
  /// "response", "reject" (relayed), "orphan", or a router reject code
  /// ("upstream", "no_backends", ...).
  std::string Verdict;
  double TotalSeconds = 0.0;
};

/// Loop-side counters, snapshotted by Router::stats().
struct RouterStats {
  long ConnectionsAccepted = 0;
  long ConnectionsRejected = 0; ///< over MaxConnections
  long ConnectionsClosed = 0;
  long FramesIn = 0;
  long FramesOut = 0;
  long RequestsRouted = 0;    ///< proxied sends, retries included
  long ResponsesRelayed = 0;
  long RejectsRelayed = 0;    ///< backend rejects passed through
  long RejectsSent = 0;       ///< router-originated rejects
  long Retries = 0;
  long ProtocolErrors = 0;
  long BackendEvictions = 0;
  long BackendReinstatements = 0;
  long UpstreamTimeouts = 0;
  long OrphanResponses = 0;   ///< answer landed after client/id vanished
  size_t HealthyBackends = 0;
  size_t OpenConnections = 0;
};

/// The cluster router; see the file comment.
class Router {
public:
  explicit Router(RouterOptions Opts = RouterOptions());
  ~Router();

  Router(const Router &) = delete;
  Router &operator=(const Router &) = delete;

  /// Binds, listens, and spawns the loop thread. Backends start
  /// optimistic (on the ring, connecting); the first failed probes
  /// evict the ones that are not actually there.
  ErrorOr<bool> start();

  /// The bound port (after start(); useful with Port = 0).
  uint16_t port() const { return BoundPort; }
  /// "epoll" or "poll" (after start()).
  const char *backendName() const { return IoBackend; }

  /// Stop accepting, answer what is in flight, close when quiet.
  /// Idempotent, thread-safe.
  void beginDrain();
  /// Waits for the drain to finish. \returns false on timeout;
  /// TimeoutSeconds <= 0 polls once.
  bool waitDrained(double TimeoutSeconds);

  /// Hard stop: closes everything and joins the loop. The destructor
  /// calls this.
  void stop();

  RouterStats stats() const;
  /// (backend name, on-the-ring) pairs — the tests' view of the health
  /// state machine.
  std::vector<std::pair<std::string, bool>> backendHealth() const;
  /// Snapshot of the flight recorder, oldest first. Thread-safe.
  std::vector<FlightRecord> flightRecords() const;

private:
  struct ClientConn {
    int Fd = -1;
    uint64_t Id = 0;
    net::FrameParser Parser;
    std::deque<std::string> WriteQ;
    size_t WriteOff = 0; ///< bytes of WriteQ.front() already sent
    long InFlight = 0;   ///< proxied requests not yet answered
    /// Correlation ids in flight (duplicate detection + exactly-one-
    /// answer bookkeeping).
    std::set<uint64_t> Pending;
    bool SawEof = false;
    bool CloseAfterFlush = false;
    unsigned Subscribed = 0;

    explicit ClientConn(size_t MaxPayload) : Parser(MaxPayload) {}
  };

  /// One proxied request, owned by the backend connection carrying it.
  struct PendingRequest {
    uint64_t ClientId = 0;
    uint64_t ClientCorr = 0;
    /// Request JSON, kept so a failover can resend it.
    std::string Payload;
    /// The client's request frame kind (Request or GraphRequest),
    /// re-emitted verbatim on every upstream send and failover.
    net::FrameType Kind = net::FrameType::Request;
    Fingerprint128 Key;
    int RetriesLeft = 0;
    /// Backends this request was already sent to; a retry skips them.
    std::vector<std::string> Tried;
    uint64_t TimerId = 0; ///< upstream-timeout wheel id, 0 = none
    uint64_t StartNs = 0;
    /// Trace context from the client's Request frame, re-emitted (with
    /// the router's route span as parent) on every upstream send.
    net::TraceContext Trace;
    bool HasTrace = false;
    /// The router's own span id for this request ("route"), allocated
    /// at admission so upstream sends can name it as parent before the
    /// span's completion event is recorded at answer time.
    uint64_t RouteSpanId = 0;
    uint64_t HopStartNs = 0; ///< when the current upstream send left
    /// Completed hops: (backend, seconds from send to answer/failure).
    std::vector<std::pair<std::string, double>> Hops;
  };

  struct Backend {
    Address Addr;
    std::string Name; ///< Addr.name(), the ring member string
    enum class Link { Idle, Connecting, Up } Conn = Link::Idle;
    bool Healthy = true; ///< on the ring?
    int Failures = 0;    ///< consecutive transport failures
    int Fd = -1;
    net::FrameParser Parser;
    std::deque<std::string> WriteQ;
    size_t WriteOff = 0;
    unsigned Subscribed = 0;
    uint64_t NextCorr = 1;
    /// Upstream correlation id -> the proxied request it carries.
    std::map<uint64_t, PendingRequest> InFlight;
    uint64_t PingCorr = 0;     ///< outstanding health probe, 0 = none
    uint64_t ConnectTimer = 0; ///< wheel id, 0 = none

    obs::Counter *RequestsCtr = nullptr;
    obs::Gauge *UpGauge = nullptr;
    obs::Histogram *LatencyHist = nullptr;

    explicit Backend(size_t MaxPayload) : Parser(MaxPayload) {}
  };

  void loop();
  void teardown();

  // Client side.
  void acceptReady(uint64_t NowNs);
  void clientEvent(uint64_t Id, unsigned Events, uint64_t NowNs);
  void processClientFrames(ClientConn &C, uint64_t NowNs);
  void routeRequest(ClientConn &C, net::Frame &F, uint64_t NowNs);
  /// Answers a StatsFetch with the router's live metrics, trace ring,
  /// and flight records as a StatsData frame.
  void handleStatsFetch(ClientConn &C, net::Frame &F);
  void enqueueClientFrame(ClientConn &C, net::FrameType Type,
                          uint64_t Correlation,
                          const std::string &Payload);
  void sendClientReject(ClientConn &C, uint64_t Correlation,
                        const std::string &Code,
                        const std::string &Reason);
  void flushClient(ClientConn &C);
  void updateClientSubscription(ClientConn &C);
  /// Closes now when a soft-closing connection has answered everything.
  void maybeFinishClient(ClientConn &C);
  void closeClient(uint64_t Id);

  // Backend side.
  Backend *backendByName(const std::string &Name);
  void startConnect(Backend &B, uint64_t NowNs);
  void onBackendConnected(Backend &B);
  void backendEvent(Backend &B, unsigned Events, uint64_t NowNs);
  void processBackendFrames(Backend &B, uint64_t NowNs);
  void deliver(Backend &B, net::Frame &F, uint64_t NowNs);
  void flushBackend(Backend &B);
  void updateBackendSubscription(Backend &B);
  void sendToBackend(Backend &B, PendingRequest P, uint64_t NowNs);
  /// Closes the link (if any), cancels its timers, and returns the
  /// requests that were riding it.
  std::vector<PendingRequest> closeBackendLink(Backend &B);
  /// One consecutive transport failure: close the link, maybe evict,
  /// fail over whatever was in flight.
  void transportFailure(Backend &B, const std::string &Reason,
                        uint64_t NowNs);
  void markDown(Backend &B);
  /// A completed probe: failures reset, evicted backends rejoin.
  void recover(Backend &B);
  void retryPending(PendingRequest P, uint64_t NowNs);
  /// Answers the client with a router-originated Reject (routing
  /// failure, exhausted budget).
  void rejectPending(PendingRequest &P, const std::string &Code,
                     const std::string &Reason);
  /// Retires \p P into the flight recorder and, when it was slow or
  /// failed and the slow log is on, dumps it as a JSON line. Also emits
  /// the request's "route" span when it carried a trace context.
  void recordFlight(const PendingRequest &P, const std::string &Verdict,
                    uint64_t NowNs);
  void healthTick(uint64_t NowNs);
  void armHealthTimer(uint64_t NowNs);
  void startDrainOnLoop();
  void finishDrainIfIdle();

  RouterOptions Opts;

  // Loop-thread-only state.
  std::unique_ptr<net::Poller> Io;
  net::TimerWheel Wheel;
  net::WakeupFd Wakeup;
  int ListenFd = -1;
  std::vector<std::unique_ptr<Backend>> Backends;
  std::map<int, Backend *> BackendByFd;
  std::map<uint64_t, std::unique_ptr<ClientConn>> ClientsById;
  std::map<int, uint64_t> ClientByFd;
  HashRing Ring;
  uint64_t NextClientId = 1;
  bool DrainStarted = false;
  /// Fds closed during the current event wave; later events in the same
  /// wave that name them are stale (the number may already be reused by
  /// a reconnect or accept) and are skipped.
  std::set<int> Tombstones;

  std::thread LoopThread;
  uint16_t BoundPort = 0;
  const char *IoBackend = "";
  bool Started = false;

  // Cross-thread lifecycle + observation.
  std::atomic<bool> StopRequested{false};
  std::atomic<bool> DrainRequested{false};
  mutable std::mutex StatsMu;
  RouterStats Counters;                  ///< guarded by StatsMu
  std::map<std::string, bool> HealthView; ///< guarded by StatsMu
  mutable std::mutex StateMu;
  std::condition_variable DrainedCv;
  bool Drained = false;

  // Flight recorder: written by the loop thread, snapshotted by
  // flightRecords()/StatsFetch scrapes.
  mutable std::mutex FlightMu;
  RingBuffer<FlightRecord> Flight; ///< guarded by FlightMu
  std::FILE *SlowLog = nullptr;    ///< loop-thread-only, owned iff not stderr
  bool SlowLogOwned = false;

  obs::Gauge *BackendsGauge = nullptr;
  obs::Gauge *ClientConnsGauge = nullptr;
  obs::Counter *RetriesCtr = nullptr;
  obs::Counter *EvictionsCtr = nullptr;
  obs::Counter *ReinstatementsCtr = nullptr;
  obs::Counter *RejectsCtr = nullptr;
  obs::Counter *SlowCtr = nullptr;
  obs::Counter *ScrapesCtr = nullptr;
};

} // namespace cluster
} // namespace cdvs

#endif // CDVS_CLUSTER_ROUTER_H
