//===- cluster/PeerFill.h - Cross-node cache fill ---------------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The backend side of the cluster's cache-migration story. When the
/// router rebuilds its ring (a backend died, or came back), some keys
/// change owner; the new owner's cache is cold for them even though the
/// schedule was already solved elsewhere. PeerFiller plugs into
/// ServiceOptions::PeerFill: on a local cache miss it computes the same
/// ring key the router used, asks "who owned this key when I was not a
/// member" — the ring over the peer set minus self, which is exactly the
/// ring the router routed on while this backend was out — and sends that
/// peer one PeerFetch frame. A found PeerData answer becomes the cached
/// value (bit-exact, so responses stay byte-identical to the origin's);
/// a miss or any transport error falls through to the cold solve, so
/// peer fill can only ever save work, never lose a request.
///
/// Runs inside the single-flight leader on a pipeline worker thread, so
/// one fetch covers all concurrent duplicates of a key. fill() may be
/// called concurrently for different keys; each peer has its own pooled
/// connection behind its own lock, so fetches to different peers do not
/// serialize each other.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_CLUSTER_PEERFILL_H
#define CDVS_CLUSTER_PEERFILL_H

#include "cluster/Address.h"
#include "cluster/Ring.h"
#include "net/Client.h"
#include "obs/Metrics.h"
#include "service/JobIO.h"
#include "service/Service.h"

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cdvs {
namespace cluster {

/// Knobs for a PeerFiller.
struct PeerFillOptions {
  /// This backend's advertised "host:port"; excluded from the peer ring.
  std::string Self;
  /// Full cluster membership ("host:port" each); may include Self.
  std::vector<std::string> Peers;
  /// Must match the router's ring geometry.
  int VirtualNodes = 64;
  /// Short on purpose: a slow peer must cost less than the solve the
  /// fetch is trying to avoid.
  int ConnectTimeoutMs = 1'000;
  int FetchTimeoutMs = 3'000;
};

/// What the filler has done so far.
struct PeerFillStats {
  long Fetches = 0; ///< PeerFetch round trips attempted
  long Fills = 0;   ///< answered found: cache filled, solve skipped
  long Misses = 0;  ///< peer did not have the key (cold solve follows)
  long Errors = 0;  ///< connect/transport/decode failures (ditto)
};

/// Cross-node cache filler; see the file comment.
class PeerFiller {
public:
  explicit PeerFiller(PeerFillOptions Opts);

  /// The ServiceOptions::PeerFill entry point: fetch the solved
  /// schedule for \p FingerprintHex from the previous ring owner of
  /// \p Req's key, or nullptr to solve cold.
  std::shared_ptr<const CachedSchedule>
  fill(const JobRequest &Req, const std::string &FingerprintHex);

  /// Binds fill() as a ServiceOptions::PeerFill functor. The filler
  /// must outlive the service it is installed into.
  PeerFillFn asFn() {
    return [this](const JobRequest &Req, const std::string &Fp) {
      return fill(Req, Fp);
    };
  }

  PeerFillStats stats() const;
  /// Peers actually on the fill ring (membership minus self).
  std::vector<std::string> peers() const { return Ring.members(); }

private:
  struct Peer {
    Address Addr;
    std::mutex Mu; ///< guards Conn; held across one fetch round trip
    net::Client Conn;
  };

  /// One PeerFetch round trip on \p P's pooled connection; any error
  /// drops the connection (the next fill reconnects).
  ErrorOr<PeerData> fetchFrom(Peer &P, const std::string &FingerprintHex);

  PeerFillOptions Opts;
  HashRing Ring; ///< peers minus self; immutable after construction
  std::map<std::string, std::unique_ptr<Peer>> PeersByName;

  mutable std::mutex StatsMu;
  PeerFillStats Stats;

  obs::Counter *FetchesCtr = nullptr;
  obs::Counter *FillsCtr = nullptr;
  obs::Counter *MissesCtr = nullptr;
  obs::Counter *ErrorsCtr = nullptr;
};

} // namespace cluster
} // namespace cdvs

#endif // CDVS_CLUSTER_PEERFILL_H
