//===- cluster/PeerFill.cpp - Cross-node cache fill ------------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "cluster/PeerFill.h"

#include "cluster/Key.h"
#include "obs/Trace.h"

using namespace cdvs;
using namespace cdvs::cluster;

PeerFiller::PeerFiller(PeerFillOptions O)
    : Opts(std::move(O)), Ring(Opts.VirtualNodes) {
  for (const std::string &Name : Opts.Peers) {
    if (Name == Opts.Self || !Ring.add(Name))
      continue;
    ErrorOr<Address> A = parseAddress(Name);
    if (!A) {
      // An unparseable peer can never be fetched from; keep it off the
      // ring rather than routing fetches into guaranteed errors.
      Ring.remove(Name);
      continue;
    }
    auto P = std::make_unique<Peer>();
    P->Addr = *A;
    PeersByName.emplace(Name, std::move(P));
  }
  // Pre-registered so the families exist (at zero) in every snapshot a
  // backend exports, fetched-from or not.
  FetchesCtr = &obs::metrics().counter(
      "cdvs_cluster_peer_fetches_total",
      "PeerFetch round trips attempted before cold solves");
  FillsCtr = &obs::metrics().counter(
      "cdvs_cluster_peer_fills_total",
      "cache misses satisfied by a peer instead of a cold solve");
  MissesCtr = &obs::metrics().counter(
      "cdvs_cluster_peer_fetch_misses_total",
      "PeerFetch probes the peer answered not-found");
  ErrorsCtr = &obs::metrics().counter(
      "cdvs_cluster_peer_fetch_errors_total",
      "PeerFetch connect/transport/decode failures");
}

PeerFillStats PeerFiller::stats() const {
  std::lock_guard<std::mutex> Lock(StatsMu);
  return Stats;
}

ErrorOr<PeerData> PeerFiller::fetchFrom(Peer &P,
                                        const std::string &FingerprintHex) {
  std::lock_guard<std::mutex> Lock(P.Mu);
  if (!P.Conn.connected()) {
    net::ClientOptions CO;
    CO.ConnectTimeoutMs = Opts.ConnectTimeoutMs;
    CO.RequestTimeoutMs = Opts.FetchTimeoutMs;
    ErrorOr<net::Client> C =
        net::Client::connect(P.Addr.Host, P.Addr.Port, CO);
    if (!C)
      return makeError(C.message());
    P.Conn = std::move(*C);
  }
  // fill() runs on a pipeline worker inside the job's span (Service
  // installs the request's SpanContext there), so the thread-local
  // context is exactly what the peer should continue under.
  obs::SpanContext Ctx = obs::currentSpanContext();
  net::TraceContext Trace;
  Trace.TraceHi = Ctx.TraceHi;
  Trace.TraceLo = Ctx.TraceLo;
  Trace.ParentSpan = Ctx.Span;
  Trace.Sampled = Ctx.Sampled;
  ErrorOr<uint64_t> Corr = P.Conn.sendPeerFetch(
      FingerprintHex, 0, Ctx.valid() ? &Trace : nullptr);
  if (!Corr) {
    P.Conn.close();
    return makeError(Corr.message());
  }
  for (;;) {
    ErrorOr<net::Frame> F = P.Conn.readFrame(Opts.FetchTimeoutMs);
    if (!F) {
      // Timeout/EOF/framing: this connection can no longer be trusted
      // to deliver our answer; drop it and reconnect on the next fill.
      P.Conn.close();
      return makeError(F.message());
    }
    if (F->Correlation != *Corr)
      continue; // stale answer from an earlier abandoned fetch
    if (F->Type == net::FrameType::Reject) {
      ErrorOr<net::RejectInfo> R = net::decodeReject(F->Payload);
      return makeError("peer rejected fetch: " +
                       (R ? R->Code + ": " + R->Reason
                          : std::string("unparseable reject")));
    }
    if (F->Type != net::FrameType::PeerData)
      continue;
    return peerDataFromJsonText(F->Payload);
  }
}

std::shared_ptr<const CachedSchedule>
PeerFiller::fill(const JobRequest &Req, const std::string &FingerprintHex) {
  if (Ring.empty())
    return nullptr;
  // The previous owner: with this backend absent from the membership —
  // exactly the ring the router routed on while this backend was down —
  // the key's owner is whoever solved (and cached) it in the interim.
  const std::string *Owner = Ring.ownerOf(requestKey(Req));
  if (!Owner)
    return nullptr;
  auto It = PeersByName.find(*Owner);
  if (It == PeersByName.end())
    return nullptr;

  FetchesCtr->inc();
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Stats.Fetches;
  }
  ErrorOr<PeerData> D = fetchFrom(*It->second, FingerprintHex);
  if (!D) {
    ErrorsCtr->inc();
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Stats.Errors;
    return nullptr;
  }
  if (!D->Found) {
    MissesCtr->inc();
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Stats.Misses;
    return nullptr;
  }
  FillsCtr->inc();
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Stats.Fills;
  }
  return D->Value;
}
