//===- cluster/Address.h - "host:port" backend names ------------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backend naming shared by the router, the peer filler, and the tools:
/// a member is a numeric-IPv4 "host:port" string (the same address form
/// net::connectTcp accepts). The string is the identity — it names the
/// backend on the ring, labels its per-backend metrics series, and is
/// stamped into responses for loadgen's per-backend breakdown — so one
/// parse/format pair here keeps every layer agreeing on it.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_CLUSTER_ADDRESS_H
#define CDVS_CLUSTER_ADDRESS_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cdvs {
namespace cluster {

/// One parsed backend address.
struct Address {
  std::string Host;
  uint16_t Port = 0;

  /// The canonical "host:port" member name.
  std::string name() const {
    return Host + ":" + std::to_string(Port);
  }
};

/// Parses "host:port". Errors on a missing colon, an empty host, or a
/// port outside 1..65535.
ErrorOr<Address> parseAddress(const std::string &Text);

/// Parses a comma-separated backend list ("h1:p1,h2:p2,..."), skipping
/// empty segments. Errors on the first bad entry.
ErrorOr<std::vector<Address>> parseAddressList(const std::string &Text);

} // namespace cluster
} // namespace cdvs

#endif // CDVS_CLUSTER_ADDRESS_H
