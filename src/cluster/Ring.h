//===- cluster/Ring.h - Consistent-hash ring over backends ------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The consistent-hash ring that shards solve requests across dvs-server
/// backends: each member ("host:port") contributes VirtualNodes points on
/// a 64-bit circle, a key (the 128-bit milp/Fingerprint instance hash)
/// lands on the first point clockwise from its position, and that
/// point's member owns the key. Virtual nodes smooth the load split;
/// consistency means removing one of N members reassigns only the keys
/// that member owned — about 1/N of them — so the content-addressed
/// result caches on the surviving backends stay warm through membership
/// churn (the ≥(N-1)/N stability property the cluster tests pin down).
///
/// Positions are content hashes (support/Hash.h), so every router and
/// every backend that knows the same member list computes the same ring
/// — the PeerFill path (cluster/PeerFill.h) relies on agreeing with the
/// router about who owned a key before a rebuild, with no coordination
/// traffic.
///
/// Single-owner: the router mutates its ring on its loop thread;
/// PeerFiller's ring is immutable after construction.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_CLUSTER_RING_H
#define CDVS_CLUSTER_RING_H

#include "milp/Fingerprint.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace cdvs {
namespace cluster {

/// Consistent-hash ring; see the file comment.
class HashRing {
public:
  /// \p VirtualNodes points per member; more points, smoother split,
  /// larger rebuild cost. 64 keeps the max/mean member load under ~1.3
  /// for small clusters.
  explicit HashRing(int VirtualNodes = 64);

  /// Adds \p Member ("host:port"). \returns false when already present.
  bool add(const std::string &Member);
  /// Removes \p Member and its points. \returns false when absent.
  bool remove(const std::string &Member);

  bool contains(const std::string &Member) const {
    return Members.count(Member) != 0;
  }
  size_t size() const { return Members.size(); }
  bool empty() const { return Members.empty(); }
  std::vector<std::string> members() const {
    return std::vector<std::string>(Members.begin(), Members.end());
  }

  /// The member owning \p Key, or nullptr on an empty ring. The pointer
  /// stays valid until the next add()/remove().
  const std::string *ownerOf(const Fingerprint128 &Key) const;

  /// The first \p Count distinct members clockwise from \p Key — the
  /// owner first, then the failover order the router walks when the
  /// owner is down or already tried.
  std::vector<std::string> ownersOf(const Fingerprint128 &Key,
                                    size_t Count) const;

  /// The ring position of \p Key (both halves folded in).
  static uint64_t position(const Fingerprint128 &Key);

private:
  int Vnodes;
  /// position -> member; first-inserted wins a (vanishingly rare) point
  /// collision, and remove() only erases its own member's points.
  std::map<uint64_t, std::string> Points;
  std::set<std::string> Members;
};

} // namespace cluster
} // namespace cdvs

#endif // CDVS_CLUSTER_RING_H
