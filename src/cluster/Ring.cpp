//===- cluster/Ring.cpp - Consistent-hash ring over backends ---------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "cluster/Ring.h"

#include "support/Hash.h"

using namespace cdvs;
using namespace cdvs::cluster;

namespace {

uint64_t pointOf(const std::string &Member, int Replica) {
  HashBuilder H;
  H.add(std::string("cdvs-ring-point-v1"));
  H.add(Member);
  H.add(static_cast<uint64_t>(Replica));
  uint64_t Hi, Lo;
  H.digestRaw(Hi, Lo);
  return Hi ^ Lo;
}

} // namespace

HashRing::HashRing(int VirtualNodes)
    : Vnodes(VirtualNodes < 1 ? 1 : VirtualNodes) {}

bool HashRing::add(const std::string &Member) {
  if (!Members.insert(Member).second)
    return false;
  for (int R = 0; R < Vnodes; ++R)
    Points.emplace(pointOf(Member, R), Member);
  return true;
}

bool HashRing::remove(const std::string &Member) {
  if (Members.erase(Member) == 0)
    return false;
  for (int R = 0; R < Vnodes; ++R) {
    auto It = Points.find(pointOf(Member, R));
    // A collided point may belong to another member; leave it.
    if (It != Points.end() && It->second == Member)
      Points.erase(It);
  }
  return true;
}

uint64_t HashRing::position(const Fingerprint128 &Key) {
  // The fingerprint halves are already avalanched content hashes; fold
  // both so keys differing in only one half still spread.
  return Key.Hi ^ (Key.Lo * 0x9e3779b97f4a7c15ULL);
}

const std::string *HashRing::ownerOf(const Fingerprint128 &Key) const {
  if (Points.empty())
    return nullptr;
  auto It = Points.lower_bound(position(Key));
  if (It == Points.end())
    It = Points.begin(); // wrap: the circle has no seam
  return &It->second;
}

std::vector<std::string>
HashRing::ownersOf(const Fingerprint128 &Key, size_t Count) const {
  std::vector<std::string> Out;
  if (Points.empty() || Count == 0)
    return Out;
  std::set<std::string> Seen;
  auto It = Points.lower_bound(position(Key));
  for (size_t Steps = 0; Steps < Points.size() && Out.size() < Count;
       ++Steps) {
    if (It == Points.end())
      It = Points.begin();
    if (Seen.insert(It->second).second)
      Out.push_back(It->second);
    ++It;
  }
  return Out;
}
