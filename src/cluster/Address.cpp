//===- cluster/Address.cpp - "host:port" backend names ---------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "cluster/Address.h"

#include <cstdlib>

using namespace cdvs;
using namespace cdvs::cluster;

ErrorOr<Address> cdvs::cluster::parseAddress(const std::string &Text) {
  size_t Colon = Text.rfind(':');
  if (Colon == std::string::npos)
    return makeError("address '" + Text + "' is missing ':port'");
  Address A;
  A.Host = Text.substr(0, Colon);
  if (A.Host.empty())
    return makeError("address '" + Text + "' has an empty host");
  const std::string PortText = Text.substr(Colon + 1);
  char *End = nullptr;
  long Port = std::strtol(PortText.c_str(), &End, 10);
  if (PortText.empty() || *End != '\0' || Port < 1 || Port > 65535)
    return makeError("address '" + Text + "' has a bad port '" +
                     PortText + "'");
  A.Port = static_cast<uint16_t>(Port);
  return A;
}

ErrorOr<std::vector<Address>>
cdvs::cluster::parseAddressList(const std::string &Text) {
  std::vector<Address> Out;
  size_t Start = 0;
  while (Start <= Text.size()) {
    size_t Comma = Text.find(',', Start);
    size_t End = Comma == std::string::npos ? Text.size() : Comma;
    if (End > Start) {
      ErrorOr<Address> A = parseAddress(Text.substr(Start, End - Start));
      if (!A)
        return makeError(A.message());
      Out.push_back(*A);
    }
    if (Comma == std::string::npos)
      break;
    Start = Comma + 1;
  }
  return Out;
}
