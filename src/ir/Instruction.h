//===- ir/Instruction.h - Register-machine instructions ---------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instructions of the small register-machine IR used to express the
/// MediaBench-analogue workloads. Registers hold 64-bit integers; the
/// "floating point" opcodes compute on the same register file but carry
/// FP latency/energy classes — only the timing class, operand flow, and
/// memory behaviour matter to the DVS analysis, not numeric semantics.
///
/// Non-terminator instructions live in basic blocks; control flow is
/// expressed by each block's terminator (see BasicBlock.h).
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_IR_INSTRUCTION_H
#define CDVS_IR_INSTRUCTION_H

#include <cstdint>

namespace cdvs {

/// Non-terminator opcodes.
enum class Opcode {
  // Integer ALU (1-cycle class).
  Add,
  Sub,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  CmpEq,
  CmpNe,
  CmpLt,
  CmpLe,
  Mov,    ///< Dst = reg Src1
  MovImm, ///< Dst = Imm
  // Integer multiply / divide (longer latency classes).
  Mul,
  Div, ///< Divide-by-zero yields 0 (workloads avoid it; interpreter is
       ///< total so profiling never traps).
  Rem,
  // Floating-point classes (operate on the integer register file).
  FAdd,
  FSub,
  FMul,
  FDiv,
  // Memory: 4-byte words, byte addresses.
  Load,  ///< Dst = mem32[Src1 + Imm]
  Store, ///< mem32[Src1 + Imm] = Src2
};

/// \returns a printable mnemonic.
const char *opcodeName(Opcode Op);

/// Functional-unit class an opcode executes on; drives latency and
/// per-operation energy weight in the cycle simulator.
enum class OpClass {
  IntAlu,
  IntMul,
  IntDiv,
  FpAdd,
  FpMul,
  FpDiv,
  MemLoad,
  MemStore,
};

/// \returns the functional-unit class of \p Op.
OpClass opClass(Opcode Op);

/// \returns true for opcodes that read or write memory.
bool isMemoryOp(Opcode Op);

/// One three-address instruction. Field use by opcode:
///  * ALU binary ops:  Dst = Src1 op Src2
///  * Mov:             Dst = Src1
///  * MovImm:          Dst = Imm
///  * Load:            Dst = mem32[Src1 + Imm]
///  * Store:           mem32[Src1 + Imm] = Src2   (Dst unused)
struct Instruction {
  Opcode Op = Opcode::Add;
  int Dst = 0;
  int Src1 = 0;
  int Src2 = 0;
  int64_t Imm = 0;
};

} // namespace cdvs

#endif // CDVS_IR_INSTRUCTION_H
