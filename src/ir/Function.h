//===- ir/Function.h - IR functions and CFG edges ----------------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Function is a CFG of basic blocks (block 0 is the entry) over a
/// register file of NumRegs 64-bit registers and a byte-addressable
/// memory of MemBytes bytes. Functions are self-contained programs for
/// the cycle simulator; "arguments" are pre-initialized registers and
/// memory contents set by the caller before execution.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_IR_FUNCTION_H
#define CDVS_IR_FUNCTION_H

#include "ir/BasicBlock.h"
#include "support/Error.h"

#include <cstddef>
#include <string>
#include <vector>

namespace cdvs {

/// A directed CFG edge between two block ids.
struct CfgEdge {
  int From = 0;
  int To = 0;

  bool operator==(const CfgEdge &Other) const {
    return From == Other.From && To == Other.To;
  }
  bool operator<(const CfgEdge &Other) const {
    return From != Other.From ? From < Other.From : To < Other.To;
  }
};

/// A function: CFG + register/memory shape.
class Function {
public:
  Function(std::string Name, int NumRegs, size_t MemBytes)
      : Name(std::move(Name)), NumRegs(NumRegs), MemBytes(MemBytes) {}

  /// Appends an empty block; \returns its id.
  int addBlock(std::string BlockName);

  BasicBlock &block(int Id) { return Blocks[Id]; }
  const BasicBlock &block(int Id) const { return Blocks[Id]; }
  int numBlocks() const { return static_cast<int>(Blocks.size()); }

  const std::string &name() const { return Name; }
  int numRegs() const { return NumRegs; }
  size_t memBytes() const { return MemBytes; }

  /// All CFG edges in deterministic (From, To) order.
  std::vector<CfgEdge> edges() const;

  /// Predecessor block ids of each block.
  std::vector<std::vector<int>> predecessors() const;

  /// Structural validation: entry exists, successors in range, CondBr
  /// has two distinct successors, Jump one, Ret none, register indices
  /// in range, at least one Ret reachable. \returns the error message on
  /// failure.
  ErrorOr<bool> verify() const;

  /// Renders a readable text listing of the function.
  std::string print() const;

  /// Renders Graphviz dot for the CFG.
  std::string printDot() const;

private:
  std::string Name;
  int NumRegs;
  size_t MemBytes;
  std::vector<BasicBlock> Blocks;
};

} // namespace cdvs

#endif // CDVS_IR_FUNCTION_H
