//===- ir/Parser.h - Text-format IR parser ----------------------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual form emitted by Function::print() back into a
/// Function, so programs can be stored in files, diffed, and written by
/// hand. Round-trip guarantee: parse(print(F)) is structurally equal to
/// F for every verifiable function.
///
/// Grammar (one construct per line; '#' starts a comment):
///
///   function <name> (regs=<n>, mem=<bytes>)
///   <id>: <block-name>
///     <opcode> d=r<i> s1=r<j> s2=r<k> imm=<v>
///     jump -> <id>
///     condbr r<i> -> <id>, <id>
///     ret
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_IR_PARSER_H
#define CDVS_IR_PARSER_H

#include "ir/Function.h"
#include "support/Error.h"

#include <string>

namespace cdvs {

/// Parses \p Text into a Function. On success the function has been
/// verified. Errors carry a line number and message.
ErrorOr<Function> parseFunction(const std::string &Text);

/// \returns the opcode for mnemonic \p Name, or an error.
ErrorOr<Opcode> opcodeByName(const std::string &Name);

} // namespace cdvs

#endif // CDVS_IR_PARSER_H
