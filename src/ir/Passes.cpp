//===- ir/Passes.cpp - CFG cleanup passes ---------------------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Passes.h"

#include <cassert>
#include <vector>

using namespace cdvs;

PassStats cdvs::removeUnreachableBlocks(Function &F) {
  PassStats Stats;
  std::vector<bool> Reach(F.numBlocks(), false);
  std::vector<int> Work = {0};
  while (!Work.empty()) {
    int B = Work.back();
    Work.pop_back();
    if (Reach[B])
      continue;
    Reach[B] = true;
    for (int S : F.block(B).Succs)
      Work.push_back(S);
  }

  int Kept = 0;
  std::vector<int> Remap(F.numBlocks(), -1);
  for (int B = 0; B < F.numBlocks(); ++B)
    if (Reach[B])
      Remap[B] = Kept++;
  Stats.BlocksRemoved = F.numBlocks() - Kept;
  if (Stats.BlocksRemoved == 0)
    return Stats;

  Function NewF(F.name(), F.numRegs(), F.memBytes());
  for (int B = 0; B < F.numBlocks(); ++B) {
    if (!Reach[B])
      continue;
    int NewId = NewF.addBlock(F.block(B).Name);
    BasicBlock &NB = NewF.block(NewId);
    NB = F.block(B);
    for (int &S : NB.Succs) {
      assert(Remap[S] >= 0 && "reachable block points to unreachable");
      S = Remap[S];
    }
  }
  F = NewF;
  return Stats;
}

PassStats cdvs::mergeStraightLineBlocks(Function &F) {
  PassStats Stats;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    auto Preds = F.predecessors();
    for (int B = 0; B < F.numBlocks(); ++B) {
      BasicBlock &BB = F.block(B);
      if (BB.Term != TermKind::Jump)
        continue;
      int C = BB.Succs[0];
      if (C == B || C == 0)
        continue; // self loop or the entry block
      if (Preds[C].size() != 1)
        continue;
      // Absorb C into B; C becomes unreachable.
      BasicBlock &CB = F.block(C);
      BB.Insts.insert(BB.Insts.end(), CB.Insts.begin(), CB.Insts.end());
      BB.Term = CB.Term;
      BB.CondReg = CB.CondReg;
      BB.Succs = CB.Succs;
      CB.Insts.clear();
      CB.Term = TermKind::Ret;
      CB.Succs.clear();
      ++Stats.BlocksMerged;
      Changed = true;
      break; // predecessor lists are stale; rescan
    }
  }
  if (Stats.BlocksMerged > 0)
    removeUnreachableBlocks(F);
  return Stats;
}

PassStats cdvs::simplifyCfg(Function &F) {
  PassStats Total;
  for (;;) {
    PassStats A = removeUnreachableBlocks(F);
    PassStats B = mergeStraightLineBlocks(F);
    Total.BlocksRemoved += A.BlocksRemoved + B.BlocksRemoved;
    Total.BlocksMerged += B.BlocksMerged;
    if (!A.changed() && !B.changed())
      return Total;
  }
}

int cdvs::countStaticInstructions(const Function &F) {
  int Count = 0;
  for (int B = 0; B < F.numBlocks(); ++B)
    Count += static_cast<int>(F.block(B).Insts.size());
  return Count;
}
