//===- ir/Function.cpp - IR functions and CFG edges -----------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

#include <cstdio>
#include <set>

using namespace cdvs;

const char *cdvs::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::CmpEq:
    return "cmpeq";
  case Opcode::CmpNe:
    return "cmpne";
  case Opcode::CmpLt:
    return "cmplt";
  case Opcode::CmpLe:
    return "cmple";
  case Opcode::Mov:
    return "mov";
  case Opcode::MovImm:
    return "movimm";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::FAdd:
    return "fadd";
  case Opcode::FSub:
    return "fsub";
  case Opcode::FMul:
    return "fmul";
  case Opcode::FDiv:
    return "fdiv";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  }
  cdvsUnreachable("bad opcode");
}

OpClass cdvs::opClass(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::Mov:
  case Opcode::MovImm:
    return OpClass::IntAlu;
  case Opcode::Mul:
    return OpClass::IntMul;
  case Opcode::Div:
  case Opcode::Rem:
    return OpClass::IntDiv;
  case Opcode::FAdd:
  case Opcode::FSub:
    return OpClass::FpAdd;
  case Opcode::FMul:
    return OpClass::FpMul;
  case Opcode::FDiv:
    return OpClass::FpDiv;
  case Opcode::Load:
    return OpClass::MemLoad;
  case Opcode::Store:
    return OpClass::MemStore;
  }
  cdvsUnreachable("bad opcode");
}

bool cdvs::isMemoryOp(Opcode Op) {
  return Op == Opcode::Load || Op == Opcode::Store;
}

int Function::addBlock(std::string BlockName) {
  Blocks.push_back(BasicBlock{std::move(BlockName), {}, TermKind::Ret, 0, {}});
  return numBlocks() - 1;
}

std::vector<CfgEdge> Function::edges() const {
  std::vector<CfgEdge> Edges;
  for (int B = 0; B < numBlocks(); ++B)
    for (int S : Blocks[B].Succs)
      Edges.push_back({B, S});
  return Edges;
}

std::vector<std::vector<int>> Function::predecessors() const {
  std::vector<std::vector<int>> Preds(numBlocks());
  for (int B = 0; B < numBlocks(); ++B)
    for (int S : Blocks[B].Succs)
      Preds[S].push_back(B);
  return Preds;
}

ErrorOr<bool> Function::verify() const {
  if (Blocks.empty())
    return makeError("function has no blocks");
  auto checkReg = [&](int R) { return R >= 0 && R < NumRegs; };
  bool SawRet = false;
  for (int B = 0; B < numBlocks(); ++B) {
    const BasicBlock &BB = Blocks[B];
    for (const Instruction &I : BB.Insts) {
      if (!checkReg(I.Dst) || !checkReg(I.Src1) || !checkReg(I.Src2))
        return makeError("block '" + BB.Name +
                         "': register index out of range");
    }
    switch (BB.Term) {
    case TermKind::Jump:
      if (BB.Succs.size() != 1)
        return makeError("block '" + BB.Name +
                         "': jump needs exactly one successor");
      break;
    case TermKind::CondBr:
      if (BB.Succs.size() != 2)
        return makeError("block '" + BB.Name +
                         "': condbr needs exactly two successors");
      if (BB.Succs[0] == BB.Succs[1])
        return makeError("block '" + BB.Name +
                         "': condbr successors must be distinct (edges "
                         "must be unique)");
      if (!checkReg(BB.CondReg))
        return makeError("block '" + BB.Name +
                         "': condition register out of range");
      break;
    case TermKind::Ret:
      if (!BB.Succs.empty())
        return makeError("block '" + BB.Name +
                         "': ret takes no successors");
      SawRet = true;
      break;
    }
    for (int S : BB.Succs)
      if (S < 0 || S >= numBlocks())
        return makeError("block '" + BB.Name +
                         "': successor id out of range");
  }
  if (!SawRet)
    return makeError("function has no ret block");

  // Reachability of some Ret from the entry (otherwise execution cannot
  // terminate).
  std::set<int> Seen;
  std::vector<int> Work = {0};
  bool RetReachable = false;
  while (!Work.empty()) {
    int B = Work.back();
    Work.pop_back();
    if (!Seen.insert(B).second)
      continue;
    if (Blocks[B].Term == TermKind::Ret)
      RetReachable = true;
    for (int S : Blocks[B].Succs)
      Work.push_back(S);
  }
  if (!RetReachable)
    return makeError("no ret block reachable from entry");
  return true;
}

std::string Function::print() const {
  std::string Out;
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf), "function %s (regs=%d, mem=%zu)\n",
                Name.c_str(), NumRegs, MemBytes);
  Out += Buf;
  for (int B = 0; B < numBlocks(); ++B) {
    const BasicBlock &BB = Blocks[B];
    std::snprintf(Buf, sizeof(Buf), "%d: %s\n", B, BB.Name.c_str());
    Out += Buf;
    for (const Instruction &I : BB.Insts) {
      std::snprintf(Buf, sizeof(Buf),
                    "  %-7s d=r%-3d s1=r%-3d s2=r%-3d imm=%lld\n",
                    opcodeName(I.Op), I.Dst, I.Src1, I.Src2,
                    static_cast<long long>(I.Imm));
      Out += Buf;
    }
    switch (BB.Term) {
    case TermKind::Jump:
      std::snprintf(Buf, sizeof(Buf), "  jump -> %d\n", BB.Succs[0]);
      break;
    case TermKind::CondBr:
      std::snprintf(Buf, sizeof(Buf), "  condbr r%d -> %d, %d\n",
                    BB.CondReg, BB.Succs[0], BB.Succs[1]);
      break;
    case TermKind::Ret:
      std::snprintf(Buf, sizeof(Buf), "  ret\n");
      break;
    }
    Out += Buf;
  }
  return Out;
}

std::string Function::printDot() const {
  std::string Out = "digraph \"" + Name + "\" {\n";
  char Buf[128];
  for (int B = 0; B < numBlocks(); ++B) {
    std::snprintf(Buf, sizeof(Buf), "  n%d [label=\"%s\"];\n", B,
                  Blocks[B].Name.c_str());
    Out += Buf;
    for (int S : Blocks[B].Succs) {
      std::snprintf(Buf, sizeof(Buf), "  n%d -> n%d;\n", B, S);
      Out += Buf;
    }
  }
  Out += "}\n";
  return Out;
}
