//===- ir/Passes.h - CFG cleanup passes --------------------------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small CFG transforms run before DVS scheduling. Fewer blocks and
/// edges mean fewer mode variables in the MILP, and the paper's own
/// Section 7 notes that mode-set placement wants cleaned-up control
/// flow (hoisting/coalescing of mode sets falls out of merging).
///
///  * removeUnreachableBlocks — drops blocks no path from entry reaches
///    and renumbers the survivors;
///  * mergeStraightLineBlocks — folds B -> C when B jumps only to C and
///    C has no other predecessor (classic block merging);
///  * simplifyCfg — runs both to a fixed point.
///
/// All passes preserve verification and program semantics; they only
/// renumber/merge blocks.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_IR_PASSES_H
#define CDVS_IR_PASSES_H

#include "ir/Function.h"

namespace cdvs {

/// Statistics returned by the passes.
struct PassStats {
  int BlocksRemoved = 0;
  int BlocksMerged = 0;

  bool changed() const { return BlocksRemoved + BlocksMerged > 0; }
};

/// Removes blocks unreachable from the entry; renumbers the rest
/// (entry stays block 0). \returns how many were dropped.
PassStats removeUnreachableBlocks(Function &F);

/// Merges straight-line pairs: a block ending in an unconditional jump
/// to a block with exactly one predecessor absorbs it.
PassStats mergeStraightLineBlocks(Function &F);

/// Iterates both transforms to a fixed point.
PassStats simplifyCfg(Function &F);

/// \returns the total static instruction count (terminators excluded).
int countStaticInstructions(const Function &F);

} // namespace cdvs

#endif // CDVS_IR_PASSES_H
