//===- ir/Parser.cpp - Text-format IR parser ------------------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include <cctype>
#include <cstdio>
#include <sstream>
#include <vector>

using namespace cdvs;

ErrorOr<Opcode> cdvs::opcodeByName(const std::string &Name) {
  static const std::pair<const char *, Opcode> Table[] = {
      {"add", Opcode::Add},       {"sub", Opcode::Sub},
      {"and", Opcode::And},       {"or", Opcode::Or},
      {"xor", Opcode::Xor},       {"shl", Opcode::Shl},
      {"shr", Opcode::Shr},       {"cmpeq", Opcode::CmpEq},
      {"cmpne", Opcode::CmpNe},   {"cmplt", Opcode::CmpLt},
      {"cmple", Opcode::CmpLe},   {"mov", Opcode::Mov},
      {"movimm", Opcode::MovImm}, {"mul", Opcode::Mul},
      {"div", Opcode::Div},       {"rem", Opcode::Rem},
      {"fadd", Opcode::FAdd},     {"fsub", Opcode::FSub},
      {"fmul", Opcode::FMul},     {"fdiv", Opcode::FDiv},
      {"load", Opcode::Load},     {"store", Opcode::Store},
  };
  for (const auto &[Str, Op] : Table)
    if (Name == Str)
      return Op;
  return makeError("unknown opcode '" + Name + "'");
}

namespace {

/// Line-oriented cursor with error context.
struct Cursor {
  std::vector<std::string> Lines;
  size_t Pos = 0;

  explicit Cursor(const std::string &Text) {
    std::istringstream In(Text);
    std::string Line;
    while (std::getline(In, Line)) {
      // Strip comments and trailing whitespace.
      size_t Hash = Line.find('#');
      if (Hash != std::string::npos)
        Line.erase(Hash);
      while (!Line.empty() && std::isspace(
                                  static_cast<unsigned char>(Line.back())))
        Line.pop_back();
      Lines.push_back(Line);
    }
  }

  bool atEnd() {
    skipBlank();
    return Pos >= Lines.size();
  }

  void skipBlank() {
    while (Pos < Lines.size() && Lines[Pos].empty())
      ++Pos;
  }

  /// Current non-blank line (call atEnd() first).
  const std::string &peek() { return Lines[Pos]; }
  void advance() { ++Pos; }
  int lineNo() const { return static_cast<int>(Pos) + 1; }
};

Err errAt(const Cursor &C, const std::string &Msg) {
  return makeError("line " + std::to_string(C.lineNo()) + ": " + Msg);
}

} // namespace

ErrorOr<Function> cdvs::parseFunction(const std::string &Text) {
  Cursor C(Text);
  if (C.atEnd())
    return makeError("empty input");

  // Header: function <name> (regs=<n>, mem=<bytes>)
  char Name[128];
  int Regs = 0;
  unsigned long long Mem = 0;
  if (std::sscanf(C.peek().c_str(), "function %127s (regs=%d, mem=%llu)",
                  Name, &Regs, &Mem) != 3)
    return errAt(C, "expected 'function <name> (regs=<n>, mem=<m>)'");
  C.advance();

  Function F(Name, Regs, static_cast<size_t>(Mem));

  // First pass requirement avoided: blocks are declared in id order, so
  // forward references are plain integers.
  int CurBlock = -1;
  while (!C.atEnd()) {
    const std::string &Line = C.peek();

    int Id = 0;
    char BlockName[128];
    if (std::sscanf(Line.c_str(), "%d: %127s", &Id, BlockName) == 2 &&
        Line.find(':') != std::string::npos &&
        !std::isspace(static_cast<unsigned char>(Line[0]))) {
      int NewId = F.addBlock(BlockName);
      if (NewId != Id)
        return errAt(C, "block ids must be dense and in order (got " +
                            std::to_string(Id) + ", expected " +
                            std::to_string(NewId) + ")");
      CurBlock = NewId;
      C.advance();
      continue;
    }

    if (CurBlock < 0)
      return errAt(C, "instruction before any block");
    BasicBlock &BB = F.block(CurBlock);

    // Terminators.
    int A = 0, B = 0, R = 0;
    if (Line.find("jump ->") != std::string::npos) {
      if (std::sscanf(Line.c_str(), " jump -> %d", &A) != 1)
        return errAt(C, "malformed jump");
      BB.Term = TermKind::Jump;
      BB.Succs = {A};
      C.advance();
      continue;
    }
    if (Line.find("condbr") != std::string::npos) {
      if (std::sscanf(Line.c_str(), " condbr r%d -> %d, %d", &R, &A,
                      &B) != 3)
        return errAt(C, "malformed condbr");
      BB.Term = TermKind::CondBr;
      BB.CondReg = R;
      BB.Succs = {A, B};
      C.advance();
      continue;
    }
    {
      std::istringstream Tok(Line);
      std::string First;
      Tok >> First;
      if (First == "ret") {
        BB.Term = TermKind::Ret;
        BB.Succs.clear();
        C.advance();
        continue;
      }

      // Regular instruction:  <op> d=rX s1=rY s2=rZ imm=V
      char OpName[32];
      int D = 0, S1 = 0, S2 = 0;
      long long Imm = 0;
      if (std::sscanf(Line.c_str(), " %31s d=r%d s1=r%d s2=r%d imm=%lld",
                      OpName, &D, &S1, &S2, &Imm) != 5)
        return errAt(C, "malformed instruction '" + Line + "'");
      ErrorOr<Opcode> Op = opcodeByName(OpName);
      if (!Op)
        return errAt(C, Op.message());
      BB.Insts.push_back({*Op, D, S1, S2, Imm});
      C.advance();
    }
  }

  ErrorOr<bool> Ok = F.verify();
  if (!Ok)
    return makeError("verification failed: " + Ok.message());
  return F;
}
