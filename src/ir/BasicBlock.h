//===- ir/BasicBlock.h - CFG nodes -------------------------------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic blocks: a straight-line list of instructions closed by exactly
/// one terminator. Blocks are identified by dense integer ids within
/// their Function; the DVS machinery attaches mode-set decisions to CFG
/// *edges* (pairs of block ids), following the paper's Section 4.1.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_IR_BASICBLOCK_H
#define CDVS_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <string>
#include <vector>

namespace cdvs {

/// Kind of a block terminator.
enum class TermKind {
  Jump,   ///< Unconditional branch to Succs[0].
  CondBr, ///< If CondReg != 0 go to Succs[0] else Succs[1].
  Ret,    ///< Function exit.
};

/// A basic block: instructions plus one terminator.
struct BasicBlock {
  std::string Name;
  std::vector<Instruction> Insts;
  TermKind Term = TermKind::Ret;
  int CondReg = 0;          ///< Used by CondBr.
  std::vector<int> Succs;   ///< Successor block ids.

  /// \returns the number of successor edges.
  size_t numSuccs() const { return Succs.size(); }
};

} // namespace cdvs

#endif // CDVS_IR_BASICBLOCK_H
