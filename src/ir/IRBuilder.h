//===- ir/IRBuilder.h - Convenience IR construction -------------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small builder that appends instructions and terminators to a
/// Function's blocks, in the spirit of llvm::IRBuilder. The workload
/// generators use it to assemble the MediaBench-analogue programs.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_IR_IRBUILDER_H
#define CDVS_IR_IRBUILDER_H

#include "ir/Function.h"

#include <cassert>

namespace cdvs {

/// Appends instructions into the block selected by setInsertPoint.
class IRBuilder {
public:
  explicit IRBuilder(Function &F) : F(F) {}

  /// Creates a block and \returns its id (does not move the insert point).
  int createBlock(std::string Name) { return F.addBlock(std::move(Name)); }

  /// Selects the block receiving subsequent instructions.
  void setInsertPoint(int Block) {
    assert(Block >= 0 && Block < F.numBlocks() && "bad insert point");
    Cur = Block;
  }

  int insertPoint() const { return Cur; }

  /// Generic three-address emit.
  void emit(Opcode Op, int Dst, int Src1, int Src2, int64_t Imm = 0) {
    cur().Insts.push_back({Op, Dst, Src1, Src2, Imm});
  }

  void add(int Dst, int A, int B) { emit(Opcode::Add, Dst, A, B); }
  void sub(int Dst, int A, int B) { emit(Opcode::Sub, Dst, A, B); }
  void mul(int Dst, int A, int B) { emit(Opcode::Mul, Dst, A, B); }
  void div(int Dst, int A, int B) { emit(Opcode::Div, Dst, A, B); }
  void rem(int Dst, int A, int B) { emit(Opcode::Rem, Dst, A, B); }
  void and_(int Dst, int A, int B) { emit(Opcode::And, Dst, A, B); }
  void or_(int Dst, int A, int B) { emit(Opcode::Or, Dst, A, B); }
  void xor_(int Dst, int A, int B) { emit(Opcode::Xor, Dst, A, B); }
  void shl(int Dst, int A, int B) { emit(Opcode::Shl, Dst, A, B); }
  void shr(int Dst, int A, int B) { emit(Opcode::Shr, Dst, A, B); }
  void cmpEq(int Dst, int A, int B) { emit(Opcode::CmpEq, Dst, A, B); }
  void cmpNe(int Dst, int A, int B) { emit(Opcode::CmpNe, Dst, A, B); }
  void cmpLt(int Dst, int A, int B) { emit(Opcode::CmpLt, Dst, A, B); }
  void cmpLe(int Dst, int A, int B) { emit(Opcode::CmpLe, Dst, A, B); }
  void fadd(int Dst, int A, int B) { emit(Opcode::FAdd, Dst, A, B); }
  void fsub(int Dst, int A, int B) { emit(Opcode::FSub, Dst, A, B); }
  void fmul(int Dst, int A, int B) { emit(Opcode::FMul, Dst, A, B); }
  void fdiv(int Dst, int A, int B) { emit(Opcode::FDiv, Dst, A, B); }

  void mov(int Dst, int Src) { emit(Opcode::Mov, Dst, Src, 0); }
  void movImm(int Dst, int64_t V) { emit(Opcode::MovImm, Dst, 0, 0, V); }

  /// Dst = mem32[Addr + Off].
  void load(int Dst, int Addr, int64_t Off = 0) {
    emit(Opcode::Load, Dst, Addr, 0, Off);
  }
  /// mem32[Addr + Off] = Src.
  void store(int Src, int Addr, int64_t Off = 0) {
    emit(Opcode::Store, 0, Addr, Src, Off);
  }

  void jump(int Target) {
    cur().Term = TermKind::Jump;
    cur().Succs = {Target};
  }
  void condBr(int CondReg, int TrueBlock, int FalseBlock) {
    cur().Term = TermKind::CondBr;
    cur().CondReg = CondReg;
    cur().Succs = {TrueBlock, FalseBlock};
  }
  void ret() {
    cur().Term = TermKind::Ret;
    cur().Succs.clear();
  }

private:
  BasicBlock &cur() {
    assert(Cur >= 0 && "no insert point set");
    return F.block(Cur);
  }

  Function &F;
  int Cur = -1;
};

} // namespace cdvs

#endif // CDVS_IR_IRBUILDER_H
