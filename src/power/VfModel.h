//===- power/VfModel.h - Alpha-power-law voltage/frequency model -*- C++ -*-=//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The alpha-power-law relation between supply voltage and maximum clock
/// frequency (Sakurai & Newton):
///
///   f = K * (V - Vt)^Alpha / V
///
/// The paper (Section 3.1, assumption 4) uses Alpha = 1.5 and Vt = 0.45 V.
/// K is a technology constant; it is usually calibrated so that a known
/// (V, f) operating point (e.g. XScale's 800 MHz @ 1.65 V) lies on the
/// curve. f is strictly increasing in V for V > Vt, so the inverse map is
/// well defined and computed by bisection.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_POWER_VFMODEL_H
#define CDVS_POWER_VFMODEL_H

namespace cdvs {

/// Alpha-power-law f(V) model with numeric inversion.
class VfModel {
public:
  /// \param Vt threshold voltage in volts.
  /// \param Alpha technology exponent (about 1.5 for the paper's era).
  /// \param K scale constant in Hz * V^(1-Alpha); see calibrated().
  VfModel(double Vt, double Alpha, double K);

  /// Builds a model with the given Vt and Alpha whose curve passes through
  /// the operating point (\p VRef volts, \p FRef Hz).
  static VfModel calibrated(double Vt, double Alpha, double VRef,
                            double FRef);

  /// The paper's configuration: Vt = 0.45 V, Alpha = 1.5, calibrated to
  /// XScale's top operating point 800 MHz @ 1.65 V.
  static VfModel paperDefault();

  /// \returns the maximum clock frequency in Hz at supply voltage \p V.
  /// Zero for V <= Vt.
  double frequencyAt(double V) const;

  /// \returns the minimum supply voltage (volts) that supports clock
  /// frequency \p F (Hz). F must be nonnegative; returns Vt for F == 0.
  double voltageFor(double F) const;

  /// Per-cycle switched energy at voltage \p V, in units of Ceff * V^2.
  /// The analytic model works in these normalized units (Ceff == 1).
  static double cycleEnergy(double V) { return V * V; }

  double thresholdVoltage() const { return Vt; }
  double alpha() const { return Alpha; }
  double scaleK() const { return K; }

private:
  double Vt;
  double Alpha;
  double K;
};

} // namespace cdvs

#endif // CDVS_POWER_VFMODEL_H
