//===- power/VfModel.cpp - Alpha-power-law voltage/frequency model -------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "power/VfModel.h"

#include "support/Numeric.h"

#include <cassert>
#include <cmath>

using namespace cdvs;

VfModel::VfModel(double Vt, double Alpha, double K)
    : Vt(Vt), Alpha(Alpha), K(K) {
  assert(Vt > 0.0 && Alpha > 1.0 && K > 0.0 && "nonphysical model");
}

VfModel VfModel::calibrated(double Vt, double Alpha, double VRef,
                            double FRef) {
  assert(VRef > Vt && FRef > 0.0 && "reference point below threshold");
  double K = FRef * VRef / std::pow(VRef - Vt, Alpha);
  return VfModel(Vt, Alpha, K);
}

VfModel VfModel::paperDefault() {
  return calibrated(/*Vt=*/0.45, /*Alpha=*/1.5, /*VRef=*/1.65,
                    /*FRef=*/800e6);
}

double VfModel::frequencyAt(double V) const {
  if (V <= Vt)
    return 0.0;
  return K * std::pow(V - Vt, Alpha) / V;
}

double VfModel::voltageFor(double F) const {
  assert(F >= 0.0 && "negative frequency");
  if (F == 0.0)
    return Vt;
  // frequencyAt is strictly increasing for V > Vt; bracket then bisect.
  double Hi = Vt + 1.0;
  while (frequencyAt(Hi) < F)
    Hi *= 2.0;
  return bisectRoot([&](double V) { return frequencyAt(V) - F; }, Vt, Hi,
                    1e-12);
}
