//===- power/TransitionModel.h - DVS mode-switch cost model -----*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Energy and time cost of switching the voltage regulator between two
/// supply voltages, after Burd & Brodersen (ISLPED 2000), as used by the
/// paper (Section 4.2):
///
///   SE(vi, vj) = (1 - u) * c * |vi^2 - vj^2|      (joules)
///   ST(vi, vj) = (2 * c / Imax) * |vi - vj|       (seconds)
///
/// where c is the regulator capacitance, u its energy efficiency, and
/// Imax the maximum regulator current. The paper's "typical" values
/// (c = 10 uF, u = 0.9, Imax = 1 A) give a 12 us / 1.2 uJ cost for the
/// 600 MHz @ 1.3 V -> 200 MHz @ 0.7 V transition, matching published
/// XScale data.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_POWER_TRANSITIONMODEL_H
#define CDVS_POWER_TRANSITIONMODEL_H

#include <cassert>
#include <cmath>

namespace cdvs {

/// Regulator-based DVS transition cost model.
class TransitionModel {
public:
  /// \param CapacitanceF regulator capacitance c in farads.
  /// \param Efficiency regulator energy efficiency u in [0, 1).
  /// \param ImaxA maximum regulator current in amperes.
  TransitionModel(double CapacitanceF, double Efficiency, double ImaxA)
      : Capacitance(CapacitanceF), Efficiency(Efficiency), Imax(ImaxA) {
    assert(Capacitance >= 0.0 && "negative capacitance");
    assert(Efficiency >= 0.0 && Efficiency < 1.0 && "efficiency in [0,1)");
    assert(Imax > 0.0 && "nonpositive max current");
  }

  /// The paper's typical configuration: c = 10 uF, u = 0.9, Imax = 1 A.
  static TransitionModel paperTypical() {
    return TransitionModel(10e-6, 0.9, 1.0);
  }

  /// Same efficiency/current but a different capacitance; used for the
  /// Figure 15 sweep over c in {100u, 10u, 1u, 0.1u, 0.01u} F.
  static TransitionModel withCapacitance(double CapacitanceF) {
    return TransitionModel(CapacitanceF, 0.9, 1.0);
  }

  /// Energy cost (joules) of switching between voltages \p Vi and \p Vj.
  /// Zero when the voltages are equal: staying in a mode is free.
  double switchEnergy(double Vi, double Vj) const {
    return (1.0 - Efficiency) * Capacitance *
           std::fabs(Vi * Vi - Vj * Vj);
  }

  /// Time cost (seconds) of switching between voltages \p Vi and \p Vj.
  double switchTime(double Vi, double Vj) const {
    return 2.0 * Capacitance / Imax * std::fabs(Vi - Vj);
  }

  /// Objective-side constant CE = (1 - u) * c so that
  /// SE = CE * |vi^2 - vj^2| (see the MILP linearization).
  double energyConstant() const { return (1.0 - Efficiency) * Capacitance; }

  /// Constraint-side constant CT = 2c / Imax so that ST = CT * |vi - vj|.
  double timeConstant() const { return 2.0 * Capacitance / Imax; }

  double capacitance() const { return Capacitance; }
  double efficiency() const { return Efficiency; }
  double maxCurrent() const { return Imax; }

private:
  double Capacitance;
  double Efficiency;
  double Imax;
};

} // namespace cdvs

#endif // CDVS_POWER_TRANSITIONMODEL_H
