//===- power/ModeTable.h - Discrete (V, f) operating points -----*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A ModeTable is the processor's set of discrete DVS operating points,
/// sorted by ascending frequency. The paper evaluates the XScale-like
/// 3-point table (200 MHz @ 0.7 V, 600 MHz @ 1.3 V, 800 MHz @ 1.65 V) and
/// synthetic 3/7/13-level tables generated from the alpha-power law.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_POWER_MODETABLE_H
#define CDVS_POWER_MODETABLE_H

#include "power/VfModel.h"

#include <cstddef>
#include <utility>
#include <vector>

namespace cdvs {

/// One DVS operating point: a supply voltage and its clock frequency.
struct VoltageLevel {
  double Volts = 0.0;
  double Hertz = 0.0;
};

/// An ordered set of DVS operating points (ascending frequency).
class ModeTable {
public:
  /// Builds a table from arbitrary levels; sorts by frequency and asserts
  /// that voltages are ascending along with frequencies.
  explicit ModeTable(std::vector<VoltageLevel> Levels);

  /// XScale-like 3-mode table used throughout the paper's Section 6.
  static ModeTable xscale3();

  /// \p Count levels with voltages evenly spaced over [VLo, VHi], with
  /// frequencies from \p Model. Used for the 3/7/13-level analytic study.
  static ModeTable evenVoltageLevels(int Count, double VLo, double VHi,
                                     const VfModel &Model);

  size_t size() const { return Levels.size(); }
  const VoltageLevel &level(size_t I) const { return Levels[I]; }
  const std::vector<VoltageLevel> &levels() const { return Levels; }

  double minVoltage() const { return Levels.front().Volts; }
  double maxVoltage() const { return Levels.back().Volts; }
  double minFrequency() const { return Levels.front().Hertz; }
  double maxFrequency() const { return Levels.back().Hertz; }

  /// \returns indices (Lo, Hi) of the discrete levels bracketing continuous
  /// voltage \p V: level(Lo).Volts <= V <= level(Hi).Volts with Hi==Lo+1,
  /// clamped to the table's ends (then Lo == Hi).
  std::pair<size_t, size_t> neighborsOfVoltage(double V) const;

  /// Same bracketing by frequency (Hz).
  std::pair<size_t, size_t> neighborsOfFrequency(double F) const;

  /// \returns the index of the slowest level whose frequency is >= \p F,
  /// or size()-1 if even the fastest is slower than F (caller must check
  /// feasibility separately).
  size_t slowestLevelAtLeast(double F) const;

private:
  std::vector<VoltageLevel> Levels;
};

} // namespace cdvs

#endif // CDVS_POWER_MODETABLE_H
