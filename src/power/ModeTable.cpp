//===- power/ModeTable.cpp - Discrete (V, f) operating points ------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "power/ModeTable.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>

using namespace cdvs;

ModeTable::ModeTable(std::vector<VoltageLevel> InLevels)
    : Levels(std::move(InLevels)) {
  assert(!Levels.empty() && "mode table must have at least one level");
  std::sort(Levels.begin(), Levels.end(),
            [](const VoltageLevel &A, const VoltageLevel &B) {
              return A.Hertz < B.Hertz;
            });
  for (size_t I = 1; I < Levels.size(); ++I) {
    assert(Levels[I - 1].Volts < Levels[I].Volts &&
           "voltages must rise with frequency");
    assert(Levels[I - 1].Hertz < Levels[I].Hertz &&
           "duplicate frequencies in mode table");
  }
}

ModeTable ModeTable::xscale3() {
  return ModeTable({{0.70, 200e6}, {1.30, 600e6}, {1.65, 800e6}});
}

ModeTable ModeTable::evenVoltageLevels(int Count, double VLo, double VHi,
                                       const VfModel &Model) {
  assert(Count >= 2 && "need at least two levels");
  assert(VLo > Model.thresholdVoltage() && VLo < VHi &&
         "voltage range must sit above threshold");
  std::vector<VoltageLevel> Levels;
  Levels.reserve(Count);
  for (int I = 0; I < Count; ++I) {
    double V = VLo + (VHi - VLo) * static_cast<double>(I) / (Count - 1);
    Levels.push_back({V, Model.frequencyAt(V)});
  }
  return ModeTable(std::move(Levels));
}

std::pair<size_t, size_t> ModeTable::neighborsOfVoltage(double V) const {
  if (V <= Levels.front().Volts)
    return {0, 0};
  if (V >= Levels.back().Volts)
    return {Levels.size() - 1, Levels.size() - 1};
  for (size_t I = 1; I < Levels.size(); ++I)
    if (V <= Levels[I].Volts)
      return {I - 1, I};
  cdvsUnreachable("bracketing failed");
}

std::pair<size_t, size_t> ModeTable::neighborsOfFrequency(double F) const {
  if (F <= Levels.front().Hertz)
    return {0, 0};
  if (F >= Levels.back().Hertz)
    return {Levels.size() - 1, Levels.size() - 1};
  for (size_t I = 1; I < Levels.size(); ++I)
    if (F <= Levels[I].Hertz)
      return {I - 1, I};
  cdvsUnreachable("bracketing failed");
}

size_t ModeTable::slowestLevelAtLeast(double F) const {
  for (size_t I = 0; I < Levels.size(); ++I)
    if (Levels[I].Hertz >= F)
      return I;
  return Levels.size() - 1;
}
