//===- support/Numeric.cpp - 1-D minimization and root finding -----------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Numeric.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace cdvs;

MinResult cdvs::goldenSectionMinimize(const std::function<double(double)> &F,
                                      double Lo, double Hi, double Tol) {
  assert(Lo <= Hi && "invalid bracket");
  static const double InvPhi = (std::sqrt(5.0) - 1.0) / 2.0;
  double A = Lo, B = Hi;
  double C = B - (B - A) * InvPhi;
  double D = A + (B - A) * InvPhi;
  double Fc = F(C), Fd = F(D);
  while (B - A > Tol) {
    if (Fc < Fd) {
      B = D;
      D = C;
      Fd = Fc;
      C = B - (B - A) * InvPhi;
      Fc = F(C);
    } else {
      A = C;
      C = D;
      Fc = Fd;
      D = A + (B - A) * InvPhi;
      Fd = F(D);
    }
  }
  double X = (A + B) / 2.0;
  return {X, F(X)};
}

double cdvs::bisectRoot(const std::function<double(double)> &F, double Lo,
                        double Hi, double Tol) {
  double Fl = F(Lo), Fh = F(Hi);
  assert(Fl * Fh <= 0.0 && "bisectRoot requires a sign change");
  if (Fl == 0.0)
    return Lo;
  if (Fh == 0.0)
    return Hi;
  while (Hi - Lo > Tol) {
    double Mid = (Lo + Hi) / 2.0;
    double Fm = F(Mid);
    if (Fm == 0.0)
      return Mid;
    if ((Fl < 0.0) == (Fm < 0.0)) {
      Lo = Mid;
      Fl = Fm;
    } else {
      Hi = Mid;
    }
  }
  return (Lo + Hi) / 2.0;
}

MinResult cdvs::gridRefineMinimize(const std::function<double(double)> &F,
                                   double Lo, double Hi, int Samples,
                                   double Tol) {
  assert(Samples >= 3 && "need at least three samples");
  assert(Lo <= Hi && "invalid bracket");
  double BestX = Lo, BestF = F(Lo);
  int BestI = 0;
  for (int I = 1; I < Samples; ++I) {
    double X = Lo + (Hi - Lo) * static_cast<double>(I) / (Samples - 1);
    double Fx = F(X);
    if (Fx < BestF) {
      BestF = Fx;
      BestX = X;
      BestI = I;
    }
  }
  // Refine within the bracket around the best grid point; the function may
  // not be unimodal globally, but near the grid minimum a local refine is
  // the right behaviour for staircase objectives.
  double Step = (Hi - Lo) / (Samples - 1);
  double RLo = std::max(Lo, Lo + (BestI - 1) * Step);
  double RHi = std::min(Hi, Lo + (BestI + 1) * Step);
  MinResult Refined = goldenSectionMinimize(F, RLo, RHi, Tol);
  if (Refined.Fx < BestF)
    return Refined;
  return {BestX, BestF};
}

double cdvs::simpson(const std::function<double(double)> &F, double Lo,
                     double Hi, int Intervals) {
  assert(Lo <= Hi && "invalid interval");
  if (Lo == Hi)
    return 0.0;
  int N = Intervals + (Intervals % 2); // Round up to even.
  if (N < 2)
    N = 2;
  double H = (Hi - Lo) / N;
  double Sum = F(Lo) + F(Hi);
  for (int I = 1; I < N; ++I)
    Sum += F(Lo + I * H) * ((I % 2) ? 4.0 : 2.0);
  return Sum * H / 3.0;
}
