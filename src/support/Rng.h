//===- support/Rng.h - Deterministic pseudo-random numbers ------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, deterministic xoshiro256** generator. All stochastic pieces of
/// the workloads and tests draw from this so every run of every binary is
/// bit-reproducible, independent of the platform's std::mt19937 quirks.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_SUPPORT_RNG_H
#define CDVS_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace cdvs {

/// Deterministic xoshiro256** PRNG seeded via SplitMix64.
class Rng {
public:
  explicit Rng(uint64_t Seed) { reseed(Seed); }

  /// Re-seeds the generator; the same seed always yields the same stream.
  void reseed(uint64_t Seed) {
    uint64_t X = Seed;
    for (uint64_t &Word : State)
      Word = splitMix64(X);
  }

  /// \returns the next raw 64-bit value.
  uint64_t next() {
    const uint64_t Result = rotl(State[1] * 5, 7) * 9;
    const uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// \returns a uniform integer in [0, Bound). Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow requires a positive bound");
    // Rejection sampling to avoid modulo bias.
    const uint64_t Threshold = -Bound % Bound;
    for (;;) {
      uint64_t Value = next();
      if (Value >= Threshold)
        return Value % Bound;
    }
  }

  /// \returns a uniform integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "invalid range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// \returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// \returns true with probability P (clamped to [0,1]).
  bool nextBool(double P) { return nextDouble() < P; }

private:
  static uint64_t splitMix64(uint64_t &X) {
    X += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = X;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace cdvs

#endif // CDVS_SUPPORT_RNG_H
