//===- support/Table.h - Text table / CSV emission --------------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny text-table builder used by the benchmark harnesses to print the
/// paper's tables and figure series in a uniform, diff-friendly format.
/// Cells are strings; helpers format numbers with fixed precision.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_SUPPORT_TABLE_H
#define CDVS_SUPPORT_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace cdvs {

/// Formats a double with \p Precision fractional digits.
std::string formatDouble(double Value, int Precision = 3);

/// Formats an integer count.
std::string formatInt(long long Value);

/// Accumulates rows of string cells and renders them either as an aligned
/// text table (for terminals) or as CSV (for plotting scripts).
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Appends one row; pads/truncates to the header width is a caller bug
  /// (asserted).
  void addRow(std::vector<std::string> Row);

  /// Renders an aligned, pipe-separated table to \p Out (default stdout).
  void print(std::FILE *Out = stdout) const;

  /// Renders RFC-4180-ish CSV (no quoting of embedded commas; cells are
  /// expected to be simple tokens) to \p Out.
  void printCsv(std::FILE *Out = stdout) const;

  size_t numRows() const { return Rows.size(); }
  const std::vector<std::string> &row(size_t I) const { return Rows[I]; }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace cdvs

#endif // CDVS_SUPPORT_TABLE_H
