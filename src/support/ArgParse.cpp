//===- support/ArgParse.cpp - Tiny command-line option parser --------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ArgParse.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace cdvs;

ArgParser::ArgParser(std::string Program, std::string Overview)
    : Program(std::move(Program)), Overview(std::move(Overview)) {}

ArgParser::Option &ArgParser::addOption(const std::string &Name, Kind K,
                                        std::string Help) {
  assert(!find(Name) && "duplicate option name");
  Options.push_back(std::make_unique<Option>());
  Option &O = *Options.back();
  O.Name = Name;
  O.K = K;
  O.Help = std::move(Help);
  return O;
}

int &ArgParser::addInt(const std::string &Name, int Default,
                       std::string Help) {
  Option &O = addOption(Name, Kind::Int, std::move(Help));
  IntStore.push_back(std::make_unique<int>(Default));
  O.IntVal = IntStore.back().get();
  O.Default = std::to_string(Default);
  return *O.IntVal;
}

double &ArgParser::addDouble(const std::string &Name, double Default,
                             std::string Help) {
  Option &O = addOption(Name, Kind::Double, std::move(Help));
  DoubleStore.push_back(std::make_unique<double>(Default));
  O.DoubleVal = DoubleStore.back().get();
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%g", Default);
  O.Default = Buf;
  return *O.DoubleVal;
}

std::string &ArgParser::addString(const std::string &Name,
                                  std::string Default, std::string Help) {
  Option &O = addOption(Name, Kind::String, std::move(Help));
  StrStore.push_back(std::make_unique<std::string>(std::move(Default)));
  O.StrVal = StrStore.back().get();
  O.Default = *O.StrVal;
  return *O.StrVal;
}

bool &ArgParser::addFlag(const std::string &Name, std::string Help) {
  Option &O = addOption(Name, Kind::Flag, std::move(Help));
  FlagStore.push_back(std::make_unique<bool>(false));
  O.FlagVal = FlagStore.back().get();
  O.Default = "false";
  return *O.FlagVal;
}

std::vector<std::string> &
ArgParser::addStringList(const std::string &Name, std::string Help) {
  Option &O = addOption(Name, Kind::StringList, std::move(Help));
  ListStore.push_back(std::make_unique<std::vector<std::string>>());
  O.ListVal = ListStore.back().get();
  O.Default = "none";
  return *O.ListVal;
}

namespace {

/// Plain Levenshtein distance, small strings only (option names).
size_t editDistance(const std::string &A, const std::string &B) {
  std::vector<size_t> Row(B.size() + 1);
  for (size_t J = 0; J <= B.size(); ++J)
    Row[J] = J;
  for (size_t I = 1; I <= A.size(); ++I) {
    size_t Diag = Row[0];
    Row[0] = I;
    for (size_t J = 1; J <= B.size(); ++J) {
      size_t Next = std::min(
          {Row[J] + 1, Row[J - 1] + 1,
           Diag + (A[I - 1] == B[J - 1] ? 0 : 1)});
      Diag = Row[J];
      Row[J] = Next;
    }
  }
  return Row[B.size()];
}

} // namespace

std::string ArgParser::nearestOption(const std::string &Name) const {
  std::string Best;
  // Only suggest when the typo is plausibly the candidate: within two
  // edits, or one third of the name for long names.
  size_t BestDist = std::max<size_t>(2, Name.size() / 3) + 1;
  auto consider = [&](const std::string &Candidate) {
    size_t D = editDistance(Name, Candidate);
    if (D < BestDist) {
      BestDist = D;
      Best = Candidate;
    }
  };
  for (const auto &O : Options)
    consider(O->Name);
  consider("help");
  return Best;
}

ArgParser::Option *ArgParser::find(const std::string &Name) {
  for (auto &O : Options)
    if (O->Name == Name)
      return O.get();
  return nullptr;
}

const ArgParser::Option *ArgParser::find(const std::string &Name) const {
  for (const auto &O : Options)
    if (O->Name == Name)
      return O.get();
  return nullptr;
}

bool ArgParser::wasSet(const std::string &Name) const {
  const Option *O = find(Name);
  return O && O->Seen;
}

ErrorOr<bool> ArgParser::parse(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--", 2) != 0) {
      Positional.push_back(Arg);
      continue;
    }
    std::string Body = Arg + 2;
    std::string Name = Body, Value;
    bool HasValue = false;
    if (size_t Eq = Body.find('='); Eq != std::string::npos) {
      Name = Body.substr(0, Eq);
      Value = Body.substr(Eq + 1);
      HasValue = true;
    }
    if (Name == "help" && !HasValue) {
      HelpSeen = true;
      continue;
    }
    Option *O = find(Name);
    if (!O) {
      if (AllowUnknown) {
        Unknown.push_back(Arg);
        continue;
      }
      std::string Near = nearestOption(Name);
      if (!Near.empty() && Near != Name)
        return makeError(Program + ": unknown option --" + Name +
                         " (did you mean --" + Near + "?)");
      return makeError(Program + ": unknown option --" + Name +
                       " (try --help)");
    }
    O->Seen = true;
    // Valued options also accept the space form `--name value`: consume
    // the next argument unless it looks like another option, so a
    // forgotten value is an error instead of silently eating a flag.
    if (!HasValue && O->K != Kind::Flag && I + 1 < Argc &&
        std::strncmp(Argv[I + 1], "--", 2) != 0) {
      Value = Argv[++I];
      HasValue = true;
    }
    switch (O->K) {
    case Kind::Flag:
      if (HasValue)
        return makeError(Program + ": flag --" + Name +
                         " does not take a value");
      *O->FlagVal = true;
      break;
    case Kind::Int: {
      if (!HasValue)
        return makeError(Program + ": option --" + Name +
                         " requires a value (--" + Name +
                         "=<int> or --" + Name + " <int>)");
      char *End = nullptr;
      long V = std::strtol(Value.c_str(), &End, 10);
      if (Value.empty() || *End != '\0')
        return makeError(Program + ": invalid integer '" + Value +
                         "' for --" + Name);
      *O->IntVal = static_cast<int>(V);
      break;
    }
    case Kind::Double: {
      if (!HasValue)
        return makeError(Program + ": option --" + Name +
                         " requires a value (--" + Name +
                         "=<num> or --" + Name + " <num>)");
      char *End = nullptr;
      double V = std::strtod(Value.c_str(), &End);
      if (Value.empty() || *End != '\0')
        return makeError(Program + ": invalid number '" + Value +
                         "' for --" + Name);
      *O->DoubleVal = V;
      break;
    }
    case Kind::String:
      if (!HasValue)
        return makeError(Program + ": option --" + Name +
                         " requires a value (--" + Name +
                         "=<str> or --" + Name + " <str>)");
      *O->StrVal = Value;
      break;
    case Kind::StringList:
      if (!HasValue)
        return makeError(Program + ": option --" + Name +
                         " requires a value (--" + Name +
                         "=<str> or --" + Name + " <str>)");
      O->ListVal->push_back(Value);
      break;
    }
  }
  return true;
}

bool ArgParser::parseOrExit(int Argc, char **Argv) {
  ErrorOr<bool> R = parse(Argc, Argv);
  if (!R) {
    std::fprintf(stderr, "%s\n", R.message().c_str());
    std::exit(1);
  }
  if (HelpSeen) {
    std::fputs(usage().c_str(), stdout);
    return false;
  }
  return true;
}

std::string ArgParser::usage() const {
  std::string Out = "usage: " + Program + " [options]\n";
  if (!Overview.empty())
    Out += "  " + Overview + "\n";
  Out += "options:\n";
  for (const auto &O : Options) {
    std::string Left = "  --" + O->Name;
    switch (O->K) {
    case Kind::Int:
      Left += "=<int>";
      break;
    case Kind::Double:
      Left += "=<num>";
      break;
    case Kind::String:
      Left += "=<str>";
      break;
    case Kind::StringList:
      Left += "=<str>..."; // may repeat
      break;
    case Kind::Flag:
      break;
    }
    while (Left.size() < 26)
      Left += ' ';
    Out += Left + O->Help + " (default: " + O->Default + ")\n";
  }
  Out += "  --help                  print this message\n";
  return Out;
}
