//===- support/Clock.h - Monotonic nanosecond clock -------------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one monotonic clock every timestamp in the repo should come from.
/// Tracing spans, stage latencies, and solver deadlines all need times
/// that can be subtracted across threads; steady_clock gives that, and
/// funneling it through one helper keeps the unit (nanoseconds since an
/// arbitrary process-local epoch) uniform so trace events from different
/// subsystems land on one comparable axis.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_SUPPORT_CLOCK_H
#define CDVS_SUPPORT_CLOCK_H

#include <chrono>
#include <cstdint>

namespace cdvs {

/// Nanoseconds on the process-wide monotonic axis. Never decreases;
/// differences are valid across threads.
inline uint64_t monotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Converts a monotonicNanos() difference to seconds.
inline double nanosToSeconds(uint64_t Nanos) {
  return static_cast<double>(Nanos) * 1e-9;
}

} // namespace cdvs

#endif // CDVS_SUPPORT_CLOCK_H
