//===- support/ThreadPool.cpp - Fork/join worker pool ---------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <atomic>
#include <thread>
#include <vector>

using namespace cdvs;

int cdvs::hardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : static_cast<int>(N);
}

int cdvs::resolveThreads(int Requested) {
  if (Requested <= 0)
    return hardwareThreads();
  return Requested;
}

void cdvs::runOnWorkers(int NumThreads,
                        const std::function<void(int)> &Body) {
  if (NumThreads <= 1) {
    Body(0);
    return;
  }
  std::vector<std::thread> Threads;
  Threads.reserve(NumThreads - 1);
  for (int W = 1; W < NumThreads; ++W)
    Threads.emplace_back([&Body, W] { Body(W); });
  Body(0);
  for (std::thread &T : Threads)
    T.join();
}

void cdvs::parallelFor(int End, int NumThreads,
                       const std::function<void(int)> &Body) {
  int Workers = std::min(resolveThreads(NumThreads), End < 1 ? 1 : End);
  if (Workers <= 1) {
    for (int I = 0; I < End; ++I)
      Body(I);
    return;
  }
  std::atomic<int> Next{0};
  runOnWorkers(Workers, [&](int) {
    for (;;) {
      int I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= End)
        return;
      Body(I);
    }
  });
}
