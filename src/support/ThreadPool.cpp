//===- support/ThreadPool.cpp - Fork/join worker pool ---------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <atomic>
#include <utility>

using namespace cdvs;

int cdvs::hardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : static_cast<int>(N);
}

int cdvs::resolveThreads(int Requested) {
  if (Requested <= 0)
    return hardwareThreads();
  return Requested;
}

void cdvs::runOnWorkers(int NumThreads,
                        const std::function<void(int)> &Body) {
  if (NumThreads <= 1) {
    Body(0);
    return;
  }
  std::vector<std::thread> Threads;
  Threads.reserve(NumThreads - 1);
  for (int W = 1; W < NumThreads; ++W)
    Threads.emplace_back([&Body, W] { Body(W); });
  Body(0);
  for (std::thread &T : Threads)
    T.join();
}

void cdvs::parallelFor(int End, int NumThreads,
                       const std::function<void(int)> &Body) {
  int Workers = std::min(resolveThreads(NumThreads), End < 1 ? 1 : End);
  if (Workers <= 1) {
    for (int I = 0; I < End; ++I)
      Body(I);
    return;
  }
  std::atomic<int> Next{0};
  runOnWorkers(Workers, [&](int) {
    for (;;) {
      int I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= End)
        return;
      Body(I);
    }
  });
}

TaskPool::TaskPool(int NumThreads) : Num(resolveThreads(NumThreads)) {
  Threads.reserve(Num);
  for (int W = 0; W < Num; ++W)
    Threads.emplace_back([this] { workerLoop(); });
}

TaskPool::~TaskPool() { shutdown(); }

bool TaskPool::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Stop)
      return false;
    Queue.push_back({std::move(Task), monotonicNanos()});
    ++Counters.TasksSubmitted;
    if (Queue.size() > Counters.PeakQueueDepth)
      Counters.PeakQueueDepth = Queue.size();
  }
  Cv.notify_one();
  return true;
}

void TaskPool::shutdown() {
  // Claim the thread list under the lock so concurrent shutdown() calls
  // never join the same thread twice: exactly one caller gets the
  // non-empty vector, everyone else joins nothing.
  std::vector<std::thread> ToJoin;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stop = true;
    ToJoin.swap(Threads);
  }
  Cv.notify_all();
  for (std::thread &T : ToJoin)
    T.join();
}

bool TaskPool::stopped() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stop;
}

void TaskPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      Cv.wait(Lock, [this] { return Stop || !Queue.empty(); });
      if (Queue.empty())
        return; // Stop set and nothing left to drain
      Counters.TotalWaitSeconds +=
          nanosToSeconds(monotonicNanos() - Queue.front().EnqueuedNs);
      Task = std::move(Queue.front().Fn);
      Queue.pop_front();
    }
    Task();
    std::lock_guard<std::mutex> Lock(Mu);
    ++Counters.TasksExecuted;
  }
}

PoolStats TaskPool::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counters;
}
