//===- support/Numeric.h - 1-D minimization and root finding ----*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scalar numeric routines used by the analytical DVS model: golden-section
/// minimization of unimodal functions, bisection root finding, and a small
/// grid-refined global minimizer for the piecewise (staircase) objectives
/// that arise in the discrete-voltage analysis.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_SUPPORT_NUMERIC_H
#define CDVS_SUPPORT_NUMERIC_H

#include <functional>

namespace cdvs {

/// Kahan (compensated) summation accumulator. The verify passes
/// re-evaluate MILP constraint rows and objectives with this so their
/// tolerance reflects the model, not accumulated rounding: the error of
/// n compensated additions is O(eps), independent of n, versus O(n*eps)
/// for a naive running sum.
class KahanSum {
public:
  KahanSum() = default;
  explicit KahanSum(double Initial) : S(Initial) {}

  void add(double X) {
    double Y = X - C;
    double T = S + Y;
    C = (T - S) - Y;
    S = T;
  }
  KahanSum &operator+=(double X) {
    add(X);
    return *this;
  }

  double value() const { return S; }

private:
  double S = 0.0;
  double C = 0.0; ///< running compensation (lost low-order bits)
};

/// Result of a scalar minimization: the argmin and the function value.
struct MinResult {
  double X = 0.0;
  double Fx = 0.0;
};

/// Minimizes a unimodal function on [Lo, Hi] by golden-section search.
///
/// \param F the objective; evaluated O(log((Hi-Lo)/Tol)) times.
/// \param Tol absolute tolerance on the argmin.
MinResult goldenSectionMinimize(const std::function<double(double)> &F,
                                double Lo, double Hi, double Tol = 1e-9);

/// Finds a root of F on [Lo, Hi] by bisection. Requires F(Lo) and F(Hi)
/// to have opposite signs (asserts otherwise).
double bisectRoot(const std::function<double(double)> &F, double Lo,
                  double Hi, double Tol = 1e-12);

/// Minimizes an arbitrary (possibly piecewise / multi-modal) function on
/// [Lo, Hi] by sampling \p Samples points and golden-section refining
/// around the best bracket. Suited to the staircase Emin(y) objective of
/// the discrete-voltage model (Figure 8 of the paper).
MinResult gridRefineMinimize(const std::function<double(double)> &F,
                             double Lo, double Hi, int Samples = 512,
                             double Tol = 1e-9);

/// Numerically integrates F over [Lo, Hi] with composite Simpson's rule
/// using \p Intervals subintervals (rounded up to even).
double simpson(const std::function<double(double)> &F, double Lo, double Hi,
               int Intervals = 256);

} // namespace cdvs

#endif // CDVS_SUPPORT_NUMERIC_H
