//===- support/Error.h - Lightweight recoverable error handling --*- C++ -*-=//
//
// Part of the cdvs project: a reproduction of Xie, Martonosi & Malik,
// "Compile-Time Dynamic Voltage Scaling Settings: Opportunities and
// Limits" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exception-free recoverable error handling. Library code reports
/// environment/input errors by returning ErrorOr<T>; programmatic errors
/// (invariant violations) use assert / cdvsUnreachable.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_SUPPORT_ERROR_H
#define CDVS_SUPPORT_ERROR_H

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace cdvs {

/// Aborts with a message; marks code paths that must never execute.
[[noreturn]] inline void cdvsUnreachable(const char *Msg) {
  std::fprintf(stderr, "cdvs fatal: %s\n", Msg);
  std::abort();
}

/// A plain recoverable error: a human-readable message.
class Err {
public:
  explicit Err(std::string Message) : Message(std::move(Message)) {}

  const std::string &message() const { return Message; }

private:
  std::string Message;
};

/// Either a value of type T or an error message.
///
/// Self-contained stand-in for llvm::ErrorOr. Converts to true when it
/// holds a value; get()/operator* assert on the error state.
template <typename T> class ErrorOr {
public:
  /*implicit*/ ErrorOr(T Value) : Value(std::move(Value)) {}
  /*implicit*/ ErrorOr(Err E) : Error(E.message()) {}

  explicit operator bool() const { return Value.has_value(); }
  bool hasValue() const { return Value.has_value(); }

  /// \returns the contained value; asserts on the error state.
  T &get() {
    assert(Value && "accessing value of an error result");
    return *Value;
  }
  const T &get() const {
    assert(Value && "accessing value of an error result");
    return *Value;
  }

  T &operator*() { return get(); }
  const T &operator*() const { return get(); }
  T *operator->() { return &get(); }
  const T *operator->() const { return &get(); }

  /// \returns the error message; asserts if this holds a value.
  const std::string &message() const {
    assert(!Value && "accessing error of a value result");
    return Error;
  }

private:
  std::optional<T> Value;
  std::string Error;
};

/// Creates an error result with the given message.
inline Err makeError(std::string Message) { return Err(std::move(Message)); }

} // namespace cdvs

#endif // CDVS_SUPPORT_ERROR_H
