//===- support/Hash.h - Stable content hashing -------------------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A stable, platform-independent content hash for fingerprinting solver
/// instances (milp/Fingerprint.h) and keying the service result cache.
/// Two independent 64-bit FNV-1a lanes give a 128-bit digest, rendered as
/// 32 lowercase hex characters. The digest depends only on the bytes fed
/// in — never on pointer values, container addresses, or iteration order
/// of unordered containers — so equal content always produces equal keys
/// across processes and runs.
///
/// Scalars are length-ambiguity-free: strings are hashed length-prefixed,
/// and doubles are canonicalized (-0.0 folds to +0.0, every NaN to one
/// quiet NaN bit pattern) before their bits are added, so numerically
/// equal instances hash identically.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_SUPPORT_HASH_H
#define CDVS_SUPPORT_HASH_H

#include <cstdint>
#include <string>

namespace cdvs {

/// Incremental 128-bit content hash (two independent FNV-1a lanes).
class HashBuilder {
public:
  /// Hashes \p Size raw bytes.
  void addBytes(const void *Data, size_t Size);

  /// Hashes one unsigned 64-bit value (little-endian byte order).
  void add(uint64_t V);
  /// Hashes one signed value via its two's-complement bits.
  void add(int64_t V) { add(static_cast<uint64_t>(V)); }
  void add(int V) { add(static_cast<int64_t>(V)); }

  /// Hashes one double after canonicalization: -0.0 becomes +0.0 and all
  /// NaNs collapse to a single bit pattern.
  void add(double V);

  /// Hashes a string, length-prefixed so "ab"+"c" != "a"+"bc".
  void add(const std::string &S);

  /// \returns the 32-hex-character digest of everything added so far.
  /// Non-destructive: more content may be added afterwards.
  std::string digest() const;

  /// The same 128-bit digest as two u64 halves: \p Hi is the value the
  /// first 16 hex characters of digest() render, \p Lo the last 16.
  /// milp/Fingerprint.h wraps the pair as Fingerprint128.
  void digestRaw(uint64_t &Hi, uint64_t &Lo) const;

private:
  // FNV-1a offset bases; LaneB starts from a different basis and twists
  // each byte so the lanes stay independent.
  uint64_t LaneA = 0xcbf29ce484222325ULL;
  uint64_t LaneB = 0x84222325cbf29ce4ULL;
};

} // namespace cdvs

#endif // CDVS_SUPPORT_HASH_H
