//===- support/Hash.cpp - Stable content hashing ---------------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Hash.h"

#include <cmath>
#include <cstring>

using namespace cdvs;

namespace {

constexpr uint64_t FnvPrime = 0x100000001b3ULL;

/// Finalizing avalanche (splitmix64) so short inputs still spread over
/// the whole digest.
uint64_t avalanche(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

} // namespace

void HashBuilder::addBytes(const void *Data, size_t Size) {
  const auto *Bytes = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < Size; ++I) {
    LaneA = (LaneA ^ Bytes[I]) * FnvPrime;
    LaneB = (LaneB ^ (Bytes[I] + 0x5a)) * FnvPrime;
  }
}

void HashBuilder::add(uint64_t V) {
  // Explicit little-endian serialization keeps the digest independent of
  // host byte order.
  unsigned char Buf[8];
  for (int I = 0; I < 8; ++I)
    Buf[I] = static_cast<unsigned char>(V >> (8 * I));
  addBytes(Buf, sizeof(Buf));
}

void HashBuilder::add(double V) {
  if (std::isnan(V)) {
    add(static_cast<uint64_t>(0x7ff8000000000000ULL));
    return;
  }
  if (V == 0.0)
    V = 0.0; // folds -0.0 into +0.0
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V), "double is not 64-bit");
  std::memcpy(&Bits, &V, sizeof(Bits));
  add(Bits);
}

void HashBuilder::add(const std::string &S) {
  add(static_cast<uint64_t>(S.size()));
  addBytes(S.data(), S.size());
}

void HashBuilder::digestRaw(uint64_t &Hi, uint64_t &Lo) const {
  Hi = avalanche(LaneA);
  Lo = avalanche(LaneB ^ (LaneA * FnvPrime));
}

std::string HashBuilder::digest() const {
  static const char Hex[] = "0123456789abcdef";
  uint64_t A, B;
  digestRaw(A, B);
  std::string Out(32, '0');
  for (int I = 0; I < 16; ++I) {
    Out[15 - I] = Hex[(A >> (4 * I)) & 0xf];
    Out[31 - I] = Hex[(B >> (4 * I)) & 0xf];
  }
  return Out;
}
