//===- support/ArgParse.h - Tiny command-line option parser -----*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `--name=value` option parser shared by the experiment binaries and
/// the dvsd service CLI, replacing the per-main strncmp loops. Options
/// are registered up front and bind to references, so a main reads as
///
///   ArgParser P("bench_x", "what this binary measures");
///   int &Threads = P.addInt("threads", 0, "sweep width; 0 = per core");
///   if (!P.parseOrExit(Argc, Argv)) return 0;   // --help was printed
///
/// Syntax: `--name=value` or `--name value` for valued options (the
/// space form takes the next argument unless it starts with `--`, so a
/// forgotten value is still caught), bare `--name` for flags, `--help`
/// for the generated usage text. String-list options (addStringList)
/// may repeat — each occurrence, in either form, appends its value in
/// command-line order. Anything not starting with `--` is
/// collected as a positional argument. Unknown `--` options are an
/// error naming the nearest registered option, unless allowUnknown(true),
/// in which case they are collected verbatim for pass-through (e.g. to
/// google-benchmark).
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_SUPPORT_ARGPARSE_H
#define CDVS_SUPPORT_ARGPARSE_H

#include "support/Error.h"

#include <memory>
#include <string>
#include <vector>

namespace cdvs {

/// Declarative `--name=value` parser; see the file comment for usage.
class ArgParser {
public:
  explicit ArgParser(std::string Program, std::string Overview = "");

  /// Registers an integer option; \returns a reference holding the
  /// default that parse() overwrites.
  int &addInt(const std::string &Name, int Default, std::string Help);
  /// Registers a floating-point option.
  double &addDouble(const std::string &Name, double Default,
                    std::string Help);
  /// Registers a string option.
  std::string &addString(const std::string &Name, std::string Default,
                         std::string Help);
  /// Registers a boolean flag (bare `--name` sets it to true).
  bool &addFlag(const std::string &Name, std::string Help);
  /// Registers a repeatable string option: every occurrence appends its
  /// value, in command-line order, accepting both `--name=value` and
  /// `--name value` forms. The returned list starts empty (callers
  /// apply their own default when it stays empty).
  std::vector<std::string> &addStringList(const std::string &Name,
                                          std::string Help);

  /// Unknown `--` options become pass-through arguments (unparsed())
  /// instead of errors.
  void allowUnknown(bool Allow) { AllowUnknown = Allow; }

  /// Parses the command line. \returns an error for malformed or (when
  /// not allowed) unknown options; on success, helpRequested() tells
  /// whether --help was seen.
  ErrorOr<bool> parse(int Argc, char **Argv);

  /// parse() + the standard main() prologue: prints errors to stderr and
  /// exits 1, prints usage on --help. \returns false when the caller
  /// should return 0 immediately (--help was handled).
  bool parseOrExit(int Argc, char **Argv);

  /// True when parse() consumed a --help.
  bool helpRequested() const { return HelpSeen; }
  /// True when the named option appeared on the command line.
  bool wasSet(const std::string &Name) const;

  /// Non-option arguments, in order.
  const std::vector<std::string> &positional() const { return Positional; }
  /// Unrecognized `--` options (only populated with allowUnknown(true)).
  const std::vector<std::string> &unparsed() const { return Unknown; }

  /// The generated usage text.
  std::string usage() const;

private:
  enum class Kind { Int, Double, String, Flag, StringList };
  struct Option {
    std::string Name;
    Kind K;
    std::string Help;
    std::string Default; // rendered for usage()
    bool Seen = false;
    int *IntVal = nullptr;
    double *DoubleVal = nullptr;
    std::string *StrVal = nullptr;
    bool *FlagVal = nullptr;
    std::vector<std::string> *ListVal = nullptr;
  };

  Option &addOption(const std::string &Name, Kind K, std::string Help);
  Option *find(const std::string &Name);
  const Option *find(const std::string &Name) const;
  /// The registered option name closest to \p Name (edit distance), or
  /// "" when nothing is plausibly close — powers the did-you-mean hint.
  std::string nearestOption(const std::string &Name) const;

  std::string Program;
  std::string Overview;
  // Deque-like stability: options live behind unique_ptr so the returned
  // value references stay valid as more options are registered.
  std::vector<std::unique_ptr<Option>> Options;
  std::vector<std::unique_ptr<int>> IntStore;
  std::vector<std::unique_ptr<double>> DoubleStore;
  std::vector<std::unique_ptr<std::string>> StrStore;
  std::vector<std::unique_ptr<bool>> FlagStore;
  std::vector<std::unique_ptr<std::vector<std::string>>> ListStore;
  std::vector<std::string> Positional;
  std::vector<std::string> Unknown;
  bool AllowUnknown = false;
  bool HelpSeen = false;
};

} // namespace cdvs

#endif // CDVS_SUPPORT_ARGPARSE_H
