//===- support/RingBuffer.h - Bounded drop-oldest ring ----------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-capacity ring that keeps the newest elements: pushing into a
/// full ring overwrites the oldest entry. This is the storage discipline
/// a trace sink wants — a long run must keep the tail of the story, not
/// the head, and memory must stay bounded no matter how chatty the
/// instrumentation is. Not thread-safe; the owner provides locking (the
/// trace recorder serializes pushes under its own mutex).
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_SUPPORT_RINGBUFFER_H
#define CDVS_SUPPORT_RINGBUFFER_H

#include <cassert>
#include <cstddef>
#include <vector>

namespace cdvs {

/// Bounded drop-oldest ring; see the file comment.
template <typename T> class RingBuffer {
public:
  explicit RingBuffer(size_t Capacity) : Cap(Capacity ? Capacity : 1) {
    Slots.reserve(Cap);
  }

  /// Appends \p Value, overwriting the oldest element when full.
  /// \returns false exactly when an element was overwritten (lost).
  bool push(T Value) {
    if (Slots.size() < Cap) {
      Slots.push_back(std::move(Value));
      return true;
    }
    Slots[Head] = std::move(Value);
    Head = (Head + 1) % Cap;
    return false;
  }

  size_t size() const { return Slots.size(); }
  size_t capacity() const { return Cap; }
  bool empty() const { return Slots.empty(); }

  /// Drops everything; capacity is kept.
  void clear() {
    Slots.clear();
    Head = 0;
  }

  /// Drops everything and re-sizes the ring.
  void reset(size_t Capacity) {
    Cap = Capacity ? Capacity : 1;
    Slots.clear();
    Slots.reserve(Cap);
    Head = 0;
  }

  /// The I-th surviving element, oldest first.
  const T &at(size_t I) const {
    assert(I < Slots.size() && "ring index out of range");
    return Slots[(Head + I) % Slots.size()];
  }

  /// Visits the surviving elements oldest-to-newest.
  template <typename Fn> void forEach(Fn &&F) const {
    for (size_t I = 0; I < Slots.size(); ++I)
      F(at(I));
  }

private:
  size_t Cap;
  size_t Head = 0; ///< index of the oldest element once full
  std::vector<T> Slots;
};

} // namespace cdvs

#endif // CDVS_SUPPORT_RINGBUFFER_H
