//===- support/ThreadPool.h - Fork/join worker pool -------------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal fork/join pool for the solver stack: run the same worker
/// function on N threads (the caller doubles as worker 0) and join.
/// Scheduling policy — e.g. the branch-and-bound's work-stealing node
/// deques — lives with the caller; this file only owns thread lifetime,
/// so it stays reusable for the bench drivers' independent-point sweeps.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_SUPPORT_THREADPOOL_H
#define CDVS_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cdvs {

/// \returns the number of hardware threads, always at least 1.
int hardwareThreads();

/// Resolves a user thread-count knob: \p Requested <= 0 means "one per
/// hardware core"; anything else is clamped to at least 1.
int resolveThreads(int Requested);

/// Fork/join pool: runs \p Body as Body(WorkerIndex) on \p NumThreads
/// workers concurrently and returns when all have finished. Worker 0 runs
/// on the calling thread, so NumThreads == 1 spawns nothing and is an
/// ordinary call. \p Body must not throw.
void runOnWorkers(int NumThreads, const std::function<void(int)> &Body);

/// Dynamic parallel-for over [0, End): workers pull the next index from a
/// shared counter, so uneven per-index costs (e.g. MILP solves at
/// different deadlines) balance automatically. Runs on
/// resolveThreads(NumThreads) workers; \p Body must not throw and must
/// synchronize any shared writes itself (writing to distinct slots of a
/// pre-sized vector is safe).
void parallelFor(int End, int NumThreads,
                 const std::function<void(int)> &Body);

/// A persistent task pool for long-lived components (the scheduling
/// service): N worker threads drain a FIFO of submitted closures. Unlike
/// runOnWorkers this owns its threads for the pool's whole lifetime, so
/// submitters never pay thread spawn cost.
///
/// Lifecycle rules are fully defined (no UB corners):
///  * submit() after shutdown() returns false and drops the task;
///  * shutdown() is idempotent — the second and later calls (from any
///    thread) are no-ops;
///  * shutdown() drains: tasks already queued still run before the
///    workers exit, and the call returns only once they have;
///  * the destructor calls shutdown().
///
/// Tasks must not throw. A task may submit further tasks, but a task
/// submitted by a task racing with shutdown() may be dropped (submit
/// reports this by returning false).
class TaskPool {
public:
  /// Spawns resolveThreads(\p NumThreads) workers.
  explicit TaskPool(int NumThreads = 0);
  ~TaskPool();

  TaskPool(const TaskPool &) = delete;
  TaskPool &operator=(const TaskPool &) = delete;

  /// Enqueues \p Task; \returns false (without running or keeping the
  /// task) when the pool has been shut down.
  bool submit(std::function<void()> Task);

  /// Stops accepting work, runs everything still queued, and joins the
  /// workers. Safe to call repeatedly and from multiple threads.
  void shutdown();

  /// True once shutdown() has begun.
  bool stopped() const;

  /// The configured worker count (constant over the pool's lifetime).
  int numThreads() const { return Num; }

private:
  void workerLoop();

  mutable std::mutex Mu;
  std::condition_variable Cv;
  std::deque<std::function<void()>> Queue;
  std::vector<std::thread> Threads;
  int Num;
  bool Stop = false;
};

} // namespace cdvs

#endif // CDVS_SUPPORT_THREADPOOL_H
