//===- support/ThreadPool.h - Fork/join worker pool -------------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal fork/join pool for the solver stack: run the same worker
/// function on N threads (the caller doubles as worker 0) and join.
/// Scheduling policy — e.g. the branch-and-bound's work-stealing node
/// deques — lives with the caller; this file only owns thread lifetime,
/// so it stays reusable for the bench drivers' independent-point sweeps.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_SUPPORT_THREADPOOL_H
#define CDVS_SUPPORT_THREADPOOL_H

#include "support/Clock.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cdvs {

/// \returns the number of hardware threads, always at least 1.
int hardwareThreads();

/// Resolves a user thread-count knob: \p Requested <= 0 means "one per
/// hardware core"; anything else is clamped to at least 1.
int resolveThreads(int Requested);

/// Fork/join pool: runs \p Body as Body(WorkerIndex) on \p NumThreads
/// workers concurrently and returns when all have finished. Worker 0 runs
/// on the calling thread, so NumThreads == 1 spawns nothing and is an
/// ordinary call. \p Body must not throw.
void runOnWorkers(int NumThreads, const std::function<void(int)> &Body);

/// Dynamic parallel-for over [0, End): workers pull the next index from a
/// shared counter, so uneven per-index costs (e.g. MILP solves at
/// different deadlines) balance automatically. Runs on
/// resolveThreads(NumThreads) workers; \p Body must not throw and must
/// synchronize any shared writes itself (writing to distinct slots of a
/// pre-sized vector is safe).
void parallelFor(int End, int NumThreads,
                 const std::function<void(int)> &Body);

/// Observability counters of one TaskPool, snapshot via stats().
/// PeakQueueDepth and TotalWaitSeconds make queueing pressure visible:
/// a deep queue with long waits means the pool is undersized, a flat
/// one that the submit path itself is the bottleneck.
struct PoolStats {
  long TasksSubmitted = 0; ///< accepted by submit()
  long TasksExecuted = 0;  ///< finished running
  size_t PeakQueueDepth = 0;
  double TotalWaitSeconds = 0.0; ///< enqueue -> dequeue, summed
};

/// Per-worker LIFO deques with front-stealing — the scheduling policy of
/// the branch-and-bound extracted so any owner of worker loops can reuse
/// it and so the steal traffic is observable. Each worker pushes and
/// pops at the back of its own deque (depth-first; the hot path stays on
/// one worker, which is what keeps warm-started LP bases relevant) while
/// idle workers steal from the FRONT of a victim's deque (the
/// shallowest, largest subtrees). Mutex-per-deque: contention is one
/// cache line per steal attempt, and the owner's uncontended
/// lock/unlock pair is a few nanoseconds.
template <typename T> class WorkStealingDeques {
public:
  explicit WorkStealingDeques(int NumWorkers)
      : Deques(static_cast<size_t>(NumWorkers < 1 ? 1 : NumWorkers)) {}

  int numWorkers() const { return static_cast<int>(Deques.size()); }

  /// Pushes \p Item onto \p Worker's own deque (LIFO end).
  void push(int Worker, T Item) {
    Deque &D = Deques[Worker];
    std::lock_guard<std::mutex> Lock(D.Mu);
    D.Q.push_back(std::move(Item));
    size_t Depth = D.Q.size();
    size_t Peak = PeakDepth.load(std::memory_order_relaxed);
    while (Depth > Peak &&
           !PeakDepth.compare_exchange_weak(Peak, Depth,
                                            std::memory_order_relaxed))
      ;
  }

  /// Pops \p Worker's newest item, or steals another worker's oldest.
  /// \returns false when every deque is empty (the caller decides
  /// whether that means "done" or "spin").
  bool tryPop(int Worker, T &Out) {
    {
      Deque &D = Deques[Worker];
      std::lock_guard<std::mutex> Lock(D.Mu);
      if (!D.Q.empty()) {
        Out = std::move(D.Q.back());
        D.Q.pop_back();
        return true;
      }
    }
    int N = numWorkers();
    for (int Off = 1; Off < N; ++Off) {
      Deque &V = Deques[(Worker + Off) % N];
      std::lock_guard<std::mutex> Lock(V.Mu);
      if (!V.Q.empty()) {
        Out = std::move(V.Q.front());
        V.Q.pop_front();
        Steals.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  /// Items taken from a deque their owner did not push them to.
  long steals() const { return Steals.load(std::memory_order_relaxed); }
  /// Deepest any single deque has been.
  size_t peakDepth() const {
    return PeakDepth.load(std::memory_order_relaxed);
  }

private:
  struct Deque {
    std::mutex Mu;
    std::deque<T> Q;
  };
  std::deque<Deque> Deques; ///< deque: Deque holds a mutex, is immovable
  std::atomic<long> Steals{0};
  std::atomic<size_t> PeakDepth{0};
};

/// A persistent task pool for long-lived components (the scheduling
/// service): N worker threads drain a FIFO of submitted closures. Unlike
/// runOnWorkers this owns its threads for the pool's whole lifetime, so
/// submitters never pay thread spawn cost.
///
/// Lifecycle rules are fully defined (no UB corners):
///  * submit() after shutdown() returns false and drops the task;
///  * shutdown() is idempotent — the second and later calls (from any
///    thread) are no-ops;
///  * shutdown() drains: tasks already queued still run before the
///    workers exit, and the call returns only once they have;
///  * the destructor calls shutdown().
///
/// Tasks must not throw. A task may submit further tasks, but a task
/// submitted by a task racing with shutdown() may be dropped (submit
/// reports this by returning false).
class TaskPool {
public:
  /// Spawns resolveThreads(\p NumThreads) workers.
  explicit TaskPool(int NumThreads = 0);
  ~TaskPool();

  TaskPool(const TaskPool &) = delete;
  TaskPool &operator=(const TaskPool &) = delete;

  /// Enqueues \p Task; \returns false (without running or keeping the
  /// task) when the pool has been shut down.
  bool submit(std::function<void()> Task);

  /// Stops accepting work, runs everything still queued, and joins the
  /// workers. Safe to call repeatedly and from multiple threads.
  void shutdown();

  /// True once shutdown() has begun.
  bool stopped() const;

  /// The configured worker count (constant over the pool's lifetime).
  int numThreads() const { return Num; }

  /// Queue-pressure counters; cheap enough to call at any time.
  PoolStats stats() const;

private:
  void workerLoop();

  struct QueuedTask {
    std::function<void()> Fn;
    uint64_t EnqueuedNs = 0;
  };

  mutable std::mutex Mu;
  std::condition_variable Cv;
  std::deque<QueuedTask> Queue;
  std::vector<std::thread> Threads;
  int Num;
  bool Stop = false;
  PoolStats Counters; ///< guarded by Mu
};

} // namespace cdvs

#endif // CDVS_SUPPORT_THREADPOOL_H
