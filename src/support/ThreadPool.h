//===- support/ThreadPool.h - Fork/join worker pool -------------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal fork/join pool for the solver stack: run the same worker
/// function on N threads (the caller doubles as worker 0) and join.
/// Scheduling policy — e.g. the branch-and-bound's work-stealing node
/// deques — lives with the caller; this file only owns thread lifetime,
/// so it stays reusable for the bench drivers' independent-point sweeps.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_SUPPORT_THREADPOOL_H
#define CDVS_SUPPORT_THREADPOOL_H

#include <functional>

namespace cdvs {

/// \returns the number of hardware threads, always at least 1.
int hardwareThreads();

/// Resolves a user thread-count knob: \p Requested <= 0 means "one per
/// hardware core"; anything else is clamped to at least 1.
int resolveThreads(int Requested);

/// Fork/join pool: runs \p Body as Body(WorkerIndex) on \p NumThreads
/// workers concurrently and returns when all have finished. Worker 0 runs
/// on the calling thread, so NumThreads == 1 spawns nothing and is an
/// ordinary call. \p Body must not throw.
void runOnWorkers(int NumThreads, const std::function<void(int)> &Body);

/// Dynamic parallel-for over [0, End): workers pull the next index from a
/// shared counter, so uneven per-index costs (e.g. MILP solves at
/// different deadlines) balance automatically. Runs on
/// resolveThreads(NumThreads) workers; \p Body must not throw and must
/// synchronize any shared writes itself (writing to distinct slots of a
/// pre-sized vector is safe).
void parallelFor(int End, int NumThreads,
                 const std::function<void(int)> &Body);

} // namespace cdvs

#endif // CDVS_SUPPORT_THREADPOOL_H
