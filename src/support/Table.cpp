//===- support/Table.cpp - Text table / CSV emission ---------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <algorithm>
#include <cassert>

using namespace cdvs;

std::string cdvs::formatDouble(double Value, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Value);
  return Buf;
}

std::string cdvs::formatInt(long long Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%lld", Value);
  return Buf;
}

Table::Table(std::vector<std::string> Header) : Header(std::move(Header)) {}

void Table::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Header.size() && "row width must match header");
  Rows.push_back(std::move(Row));
}

void Table::print(std::FILE *Out) const {
  std::vector<size_t> Width(Header.size());
  for (size_t C = 0; C < Header.size(); ++C)
    Width[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size(); ++C)
      Width[C] = std::max(Width[C], Row[C].size());

  auto printRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C < Row.size(); ++C)
      std::fprintf(Out, "%s %-*s ", C ? "|" : "|",
                   static_cast<int>(Width[C]), Row[C].c_str());
    std::fprintf(Out, "|\n");
  };

  printRow(Header);
  for (size_t C = 0; C < Header.size(); ++C) {
    std::fprintf(Out, "|%s", std::string(Width[C] + 2, '-').c_str());
  }
  std::fprintf(Out, "|\n");
  for (const auto &Row : Rows)
    printRow(Row);
}

void Table::printCsv(std::FILE *Out) const {
  auto printRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C < Row.size(); ++C)
      std::fprintf(Out, "%s%s", C ? "," : "", Row[C].c_str());
    std::fprintf(Out, "\n");
  };
  printRow(Header);
  for (const auto &Row : Rows)
    printRow(Row);
}
