//===- verify/ScheduleChecker.h - Schedule legality checking ----*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pass 2 of the static verifier: legality of a DVS schedule against the
/// profiles and cost model it was derived from. The checker re-derives,
/// in compensated arithmetic and with no reference to the MILP, what the
/// schedule costs:
///
///   time_g   = sum_e G_e * T[to(e)][mode(e)] + sum_hij D_hij * ST
///   energy_g = sum_e G_e * E[to(e)][mode(e)] + sum_hij D_hij * SE
///
/// with SE/ST charged on exactly the switching path pairs (same-mode
/// pairs cost zero by |Vi - Vj| = 0), the virtual launch edge included
/// at count 1, and checks:
///
///  * every assigned mode index exists in the ModeTable;
///  * every assigned edge lies on the CFG, and every executed edge has
///    a statically unique mode — edges without a mode-set inherit the
///    current mode (a silent mode-set), which a forward fixpoint
///    resolves; an executed edge whose inherited mode depends on the
///    path taken fails legality;
///  * edge-filtering soundness — with the threshold the scheduler used,
///    edges tied into one filter group must share one mode, i.e. no
///    filtered edge carries a mode switch (Section 5.2's legality
///    condition);
///  * the recomputed time meets every category deadline;
///  * the recomputed energy matches the solver's claimed objective.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_VERIFY_SCHEDULECHECKER_H
#define CDVS_VERIFY_SCHEDULECHECKER_H

#include "power/ModeTable.h"
#include "power/TransitionModel.h"
#include "profile/Profile.h"
#include "sim/ModeAssignment.h"
#include "verify/Report.h"

#include <vector>

namespace cdvs {
namespace verify {

/// Knobs for the schedule legality check.
struct ScheduleCheckOptions {
  /// Relative tolerance on deadline and energy comparisons (scaled by
  /// max(1, |reference|)).
  double Tolerance = 1e-6;
  /// The edge-filter threshold the schedule was produced with; > 0
  /// enables the filtered-placement soundness audit.
  double FilterThreshold = 0.0;
  /// The solver's claimed objective (joules); < 0 skips the cross-check.
  double ClaimedEnergyJoules = -1.0;
};

/// Outcome of the legality check: the report plus the independently
/// recomputed cost of the schedule.
struct ScheduleCheck {
  Report R;
  /// Recomputed wall time per category (seconds, transitions included).
  std::vector<double> CategoryTimeSeconds;
  /// Recomputed energy per category (joules, transitions included).
  std::vector<double> CategoryEnergyJoules;
  /// Probability-weighted energy across categories — the quantity the
  /// MILP objective claims to be.
  double EnergyJoules = 0.0;
};

/// Checks \p A against the profiles and cost model. \p DeadlineSeconds
/// must have one entry per category. Diagnostics carry pass name
/// "schedule".
ScheduleCheck
checkSchedule(const Function &Fn,
              const std::vector<CategoryProfile> &Categories,
              const ModeTable &Modes, const TransitionModel &Transitions,
              const ModeAssignment &A,
              const std::vector<double> &DeadlineSeconds,
              const ScheduleCheckOptions &Opts = ScheduleCheckOptions());

} // namespace verify
} // namespace cdvs

#endif // CDVS_VERIFY_SCHEDULECHECKER_H
