//===- verify/Verify.cpp - Static verification umbrella -------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "verify/Verify.h"

#include <string>

using namespace cdvs;
using namespace cdvs::verify;

Audit verify::auditScheduleResult(
    const Function &Fn, const std::vector<CategoryProfile> &Categories,
    const ModeTable &Modes, const TransitionModel &Transitions,
    const ScheduleResult &SR, const std::vector<double> &DeadlineSeconds,
    const AuditOptions &Opts) {
  Audit A;

  if (Opts.CheckProfiles)
    for (size_t C = 0; C < Categories.size(); ++C) {
      Report R = checkCfgProfile(Fn, Categories[C].Data);
      A.R.merge(R);
    }

  bool HasPoint = SR.Status == MilpStatus::Optimal ||
                  SR.Status == MilpStatus::Feasible;
  ScheduleCheckOptions SOpts;
  SOpts.Tolerance = Opts.Tolerance;
  SOpts.FilterThreshold = Opts.FilterThreshold;
  SOpts.ClaimedEnergyJoules =
      HasPoint ? SR.PredictedEnergyJoules : -1.0;
  A.Schedule = checkSchedule(Fn, Categories, Modes, Transitions,
                             SR.Assignment, DeadlineSeconds, SOpts);
  A.R.merge(A.Schedule.R);

  if (SR.Artifacts) {
    CertificateCheckOptions COpts;
    COpts.Tolerance = Opts.Tolerance;
    A.Cert = checkCertificate(SR.Artifacts->Problem,
                              SR.Artifacts->IntegerVars,
                              SR.Artifacts->Solution, COpts);
    A.R.merge(A.Cert.R);
    if (SR.Artifacts->Presolved) {
      A.Reduction = checkReductionCertificate(
          SR.Artifacts->Problem, SR.Artifacts->IntegerVars,
          SR.Artifacts->Reduction, SR.Artifacts->ReducedProblem,
          SR.Artifacts->ReducedSolution, COpts);
      A.R.merge(A.Reduction.R);
      A.R.merge(A.Reduction.Expanded.R);
    }
  } else {
    A.R.note("certificate", "",
             "no solver artifacts retained (DvsOptions::KeepArtifacts "
             "off); MILP certificate pass skipped");
  }

  return A;
}
