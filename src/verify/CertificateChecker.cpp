//===- verify/CertificateChecker.cpp - MILP solution certificates ---------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "verify/CertificateChecker.h"

#include "support/Numeric.h"

#include <cmath>
#include <string>

using namespace cdvs;
using namespace cdvs::verify;

namespace {

const char *PassName = "certificate";

const char *senseName(RowSense S) {
  switch (S) {
  case RowSense::LE:
    return "<=";
  case RowSense::GE:
    return ">=";
  case RowSense::EQ:
    return "==";
  }
  return "?";
}

/// Emits at most Cap diagnostics of one kind; counts the rest.
class CappedEmitter {
public:
  CappedEmitter(Report &R, int Cap) : R(R), Pass(PassName), Cap(Cap) {}
  CappedEmitter(Report &R, const char *Pass, int Cap)
      : R(R), Pass(Pass), Cap(Cap) {}
  void error(const std::string &Loc, const std::string &Msg) {
    if (Count++ < Cap)
      R.error(Pass, Loc, Msg);
  }
  void flush(const std::string &Kind) {
    if (Count > Cap)
      R.note(Pass, "",
             std::to_string(Count - Cap) + " further " + Kind +
                 " violations suppressed (" + std::to_string(Count) +
                 " total)");
  }

private:
  Report &R;
  const char *Pass;
  int Cap;
  int Count = 0;
};

} // namespace

Certificate
verify::checkCertificate(const LpProblem &Problem,
                         const std::vector<int> &IntegerVars,
                         const MilpSolution &Sol,
                         const CertificateCheckOptions &Opts) {
  Certificate C;
  Report &R = C.R;

  if (Sol.Status != MilpStatus::Optimal &&
      Sol.Status != MilpStatus::Feasible) {
    R.note(PassName, "",
           std::string("solution status is ") + milpStatusName(Sol.Status) +
               "; no point to certify");
    return C;
  }
  const int NumVars = Problem.numVariables();
  if (static_cast<int>(Sol.X.size()) != NumVars) {
    R.error(PassName, "",
            "solution has " + std::to_string(Sol.X.size()) +
                " values for " + std::to_string(NumVars) + " variables");
    return C;
  }
  C.Checked = true;

  // Variable bounds and finiteness.
  CappedEmitter BoundDiags(R, Opts.MaxDiagnosticsPerKind);
  for (int V = 0; V < NumVars; ++V) {
    double X = Sol.X[V];
    std::string Loc = "var " + std::to_string(V);
    if (!Problem.name(V).empty())
      Loc += " (" + Problem.name(V) + ")";
    if (!std::isfinite(X)) {
      BoundDiags.error(Loc, "non-finite value");
      C.MaxBoundViolation = lpInf();
      continue;
    }
    double Lo = Problem.lowerBound(V), Hi = Problem.upperBound(V);
    double Viol = std::fmax(Lo - X, X - Hi);
    double Scale =
        std::fmax(1.0, std::fmax(std::fabs(Lo),
                                 std::isfinite(Hi) ? std::fabs(Hi) : 0.0));
    double Scaled = std::fmax(0.0, Viol) / Scale;
    C.MaxBoundViolation = std::fmax(C.MaxBoundViolation, Scaled);
    if (Scaled > Opts.Tolerance)
      BoundDiags.error(Loc, "value " + std::to_string(X) +
                                " outside bounds [" + std::to_string(Lo) +
                                ", " + std::to_string(Hi) + "]");
  }
  BoundDiags.flush("bound");

  // Every constraint row, re-summed with compensation.
  CappedEmitter RowDiags(R, Opts.MaxDiagnosticsPerKind);
  for (int Row = 0; Row < Problem.numRows(); ++Row) {
    KahanSum Activity;
    for (const LpTerm &T : Problem.rowTerms(Row))
      Activity.add(T.Coeff * Sol.X[T.Var]);
    double A = Activity.value();
    double B = Problem.rhs(Row);
    double Resid = 0.0;
    switch (Problem.sense(Row)) {
    case RowSense::LE:
      Resid = A - B;
      break;
    case RowSense::GE:
      Resid = B - A;
      break;
    case RowSense::EQ:
      Resid = std::fabs(A - B);
      break;
    }
    double Scaled = std::fmax(0.0, Resid) / std::fmax(1.0, std::fabs(B));
    C.MaxRowViolation = std::fmax(C.MaxRowViolation, Scaled);
    if (Scaled > Opts.Tolerance)
      RowDiags.error("row " + std::to_string(Row),
                     "activity " + std::to_string(A) + " violates " +
                         senseName(Problem.sense(Row)) + " " +
                         std::to_string(B) + " (scaled residual " +
                         std::to_string(Scaled) + ")");
  }
  RowDiags.flush("row");

  // Integrality of the declared integer variables.
  CappedEmitter IntDiags(R, Opts.MaxDiagnosticsPerKind);
  for (int V : IntegerVars) {
    if (V < 0 || V >= NumVars) {
      IntDiags.error("var " + std::to_string(V),
                     "integer index out of range");
      continue;
    }
    double X = Sol.X[V];
    if (!std::isfinite(X))
      continue; // already reported as a bound violation
    double Gap = std::fabs(X - std::round(X));
    C.MaxIntegralityGap = std::fmax(C.MaxIntegralityGap, Gap);
    if (Gap > Opts.IntTolerance) {
      std::string Loc = "var " + std::to_string(V);
      if (!Problem.name(V).empty())
        Loc += " (" + Problem.name(V) + ")";
      IntDiags.error(Loc, "fractional value " + std::to_string(X) +
                              " on an integer variable");
    }
  }
  IntDiags.flush("integrality");

  // Objective: c^T x with compensation, against the solver's claim.
  KahanSum Obj;
  for (int V = 0; V < NumVars; ++V)
    Obj.add(Problem.cost(V) * Sol.X[V]);
  C.RecomputedObjective = Obj.value();
  C.ObjectiveMismatch = std::fabs(C.RecomputedObjective - Sol.Objective);
  double ObjScale = std::fmax(1.0, std::fabs(Sol.Objective));
  if (C.ObjectiveMismatch / ObjScale > Opts.Tolerance)
    R.error(PassName, "objective",
            "recomputed c^T x = " + std::to_string(C.RecomputedObjective) +
                " differs from the reported objective " +
                std::to_string(Sol.Objective) + " by " +
                std::to_string(C.ObjectiveMismatch));

  return C;
}

ReductionCheck verify::checkReductionCertificate(
    const LpProblem &Original, const std::vector<int> &OrigIntegerVars,
    const ReductionCertificate &Cert, const LpProblem &Reduced,
    const MilpSolution &ReducedSol, const CertificateCheckOptions &Opts) {
  const char *Pass = "reduction";
  ReductionCheck RC;
  Report &R = RC.R;

  // 1. Shape of the mapping.
  if (Cert.OrigVars != Original.numVariables() ||
      Cert.OrigRows != Original.numRows()) {
    R.error(Pass, "shape",
            "certificate claims " + std::to_string(Cert.OrigVars) + " vars / " +
                std::to_string(Cert.OrigRows) + " rows but the original has " +
                std::to_string(Original.numVariables()) + " / " +
                std::to_string(Original.numRows()));
    return RC;
  }
  if (Cert.ReducedVars != Reduced.numVariables() ||
      Cert.ReducedRows != Reduced.numRows()) {
    R.error(Pass, "shape",
            "certificate claims a " + std::to_string(Cert.ReducedVars) +
                "-var / " + std::to_string(Cert.ReducedRows) +
                "-row reduction but the reduced problem has " +
                std::to_string(Reduced.numVariables()) + " / " +
                std::to_string(Reduced.numRows()));
    return RC;
  }
  if (static_cast<int>(Cert.VarMap.size()) != Cert.OrigVars ||
      static_cast<int>(Cert.FixedValue.size()) != Cert.OrigVars ||
      static_cast<int>(Cert.RowMap.size()) != Cert.OrigRows) {
    R.error(Pass, "shape", "mapping vector sizes disagree with OrigVars/OrigRows");
    return RC;
  }

  // 2. VarMap is a bijection of the kept variables onto [0, ReducedVars),
  //    kept columns carry identical bounds/costs, fixed values respect
  //    the original bounds.
  CappedEmitter VarDiags(R, Pass, Opts.MaxDiagnosticsPerKind);
  std::vector<char> VarSeen(Cert.ReducedVars, 0);
  for (int V = 0; V < Cert.OrigVars; ++V) {
    int M = Cert.VarMap[V];
    std::string Loc = "var " + std::to_string(V);
    if (!Original.name(V).empty())
      Loc += " (" + Original.name(V) + ")";
    if (M < 0) {
      double Val = Cert.FixedValue[V];
      if (!std::isfinite(Val) || Val < Original.lowerBound(V) - Opts.Tolerance ||
          Val > Original.upperBound(V) + Opts.Tolerance)
        VarDiags.error(Loc, "fixed value " + std::to_string(Val) +
                                " violates the original bounds");
      continue;
    }
    if (M >= Cert.ReducedVars) {
      VarDiags.error(Loc, "maps to out-of-range reduced var " + std::to_string(M));
      continue;
    }
    if (VarSeen[M]) {
      VarDiags.error(Loc, "reduced var " + std::to_string(M) + " claimed twice");
      continue;
    }
    VarSeen[M] = 1;
    if (Reduced.lowerBound(M) != Original.lowerBound(V) ||
        Reduced.upperBound(M) != Original.upperBound(V) ||
        Reduced.cost(M) != Original.cost(V))
      VarDiags.error(Loc, "kept column " + std::to_string(M) +
                              " changed bounds or cost in the reduction");
  }
  for (int M = 0; M < Cert.ReducedVars; ++M)
    if (!VarSeen[M])
      VarDiags.error("reduced var " + std::to_string(M),
                     "not claimed by any original variable");
  VarDiags.flush("variable-mapping");

  // 3. Row replay: kept rows must be the original row with fixed terms
  //    folded into the RHS; dropped rows must be satisfied by the fixed
  //    values alone (they contained no free variable).
  CappedEmitter RowDiags(R, Pass, Opts.MaxDiagnosticsPerKind);
  std::vector<char> RowSeen(Cert.ReducedRows, 0);
  for (int Row = 0; Row < Cert.OrigRows; ++Row) {
    std::string Loc = "row " + std::to_string(Row);
    // Fold the original row through the mapping: free-term coefficient
    // sums per reduced variable, plus the fixed-term constant.
    std::vector<double> FreeCoeff(Cert.ReducedVars, 0.0);
    KahanSum FixedSum;
    bool HasFree = false;
    bool MappingBroken = false;
    for (const LpTerm &T : Original.rowTerms(Row)) {
      if (T.Var < 0 || T.Var >= Cert.OrigVars) {
        RowDiags.error(Loc, "term on out-of-range variable");
        MappingBroken = true;
        break;
      }
      int M = Cert.VarMap[T.Var];
      if (M < 0) {
        FixedSum.add(T.Coeff * Cert.FixedValue[T.Var]);
      } else if (M >= Cert.ReducedVars) {
        MappingBroken = true;
        break;
      } else {
        FreeCoeff[M] += T.Coeff;
        HasFree = true;
      }
    }
    if (MappingBroken)
      continue;
    int MR = Cert.RowMap[Row];
    if (MR < 0) {
      if (HasFree) {
        RowDiags.error(Loc, "dropped but still contains free variables");
        continue;
      }
      double Lhs = FixedSum.value(), Rhs = Original.rhs(Row);
      double Resid = 0.0;
      switch (Original.sense(Row)) {
      case RowSense::LE:
        Resid = Lhs - Rhs;
        break;
      case RowSense::GE:
        Resid = Rhs - Lhs;
        break;
      case RowSense::EQ:
        Resid = std::fabs(Lhs - Rhs);
        break;
      }
      if (Resid / std::fmax(1.0, std::fabs(Rhs)) > Opts.Tolerance)
        RowDiags.error(Loc, "dropped row violated by the fixed values (lhs " +
                                std::to_string(Lhs) + " " +
                                senseName(Original.sense(Row)) + " " +
                                std::to_string(Rhs) + ")");
      continue;
    }
    if (MR >= Cert.ReducedRows) {
      RowDiags.error(Loc, "maps to out-of-range reduced row " + std::to_string(MR));
      continue;
    }
    if (RowSeen[MR]) {
      RowDiags.error(Loc, "reduced row " + std::to_string(MR) + " claimed twice");
      continue;
    }
    RowSeen[MR] = 1;
    if (Reduced.sense(MR) != Original.sense(Row)) {
      RowDiags.error(Loc, "sense changed in the reduction");
      continue;
    }
    double WantRhs = Original.rhs(Row) - FixedSum.value();
    if (std::fabs(Reduced.rhs(MR) - WantRhs) /
            std::fmax(1.0, std::fabs(WantRhs)) >
        Opts.Tolerance) {
      RowDiags.error(Loc, "reduced rhs " + std::to_string(Reduced.rhs(MR)) +
                              " does not equal original rhs minus fixed terms " +
                              std::to_string(WantRhs));
      continue;
    }
    std::vector<double> GotCoeff(Cert.ReducedVars, 0.0);
    for (const LpTerm &T : Reduced.rowTerms(MR)) {
      if (T.Var < 0 || T.Var >= Cert.ReducedVars) {
        RowDiags.error(Loc, "reduced row has an out-of-range term");
        GotCoeff.clear();
        break;
      }
      GotCoeff[T.Var] += T.Coeff;
    }
    if (GotCoeff.empty())
      continue;
    for (int M = 0; M < Cert.ReducedVars; ++M)
      if (GotCoeff[M] != FreeCoeff[M]) {
        RowDiags.error(Loc, "coefficient on reduced var " + std::to_string(M) +
                                " changed in the reduction (" +
                                std::to_string(FreeCoeff[M]) + " -> " +
                                std::to_string(GotCoeff[M]) + ")");
        break;
      }
  }
  for (int MR = 0; MR < Cert.ReducedRows; ++MR)
    if (!RowSeen[MR])
      RowDiags.error("reduced row " + std::to_string(MR),
                     "not claimed by any original row");
  RowDiags.flush("row-mapping");

  if (!R.ok())
    return RC;

  // 4. Expand the reduced point and certify it against the ORIGINAL
  //    problem: feasibility, integrality, and the objective bridge.
  if (ReducedSol.Status != MilpStatus::Optimal &&
      ReducedSol.Status != MilpStatus::Feasible) {
    R.note(Pass, "",
           std::string("reduced solution status is ") +
               milpStatusName(ReducedSol.Status) + "; no point to expand");
    return RC;
  }
  if (static_cast<int>(ReducedSol.X.size()) != Cert.ReducedVars) {
    R.error(Pass, "",
            "reduced solution has " + std::to_string(ReducedSol.X.size()) +
                " values for " + std::to_string(Cert.ReducedVars) +
                " variables");
    return RC;
  }
  RC.Checked = true;

  MilpSolution FullSol = ReducedSol;
  FullSol.X = Cert.expandSolution(ReducedSol.X);
  FullSol.Objective = ReducedSol.Objective + Cert.ObjectiveOffset;
  RC.Expanded = checkCertificate(Original, OrigIntegerVars, FullSol, Opts);

  // The expanded certificate already compares the recomputed original
  // objective against FullSol.Objective = reduced + offset; surface the
  // bridge error explicitly for quantitative assertions.
  RC.ObjectiveBridgeError = RC.Expanded.ObjectiveMismatch;
  return RC;
}
