//===- verify/CertificateChecker.cpp - MILP solution certificates ---------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "verify/CertificateChecker.h"

#include "support/Numeric.h"

#include <cmath>
#include <string>

using namespace cdvs;
using namespace cdvs::verify;

namespace {

const char *PassName = "certificate";

const char *senseName(RowSense S) {
  switch (S) {
  case RowSense::LE:
    return "<=";
  case RowSense::GE:
    return ">=";
  case RowSense::EQ:
    return "==";
  }
  return "?";
}

/// Emits at most Cap diagnostics of one kind; counts the rest.
class CappedEmitter {
public:
  CappedEmitter(Report &R, int Cap) : R(R), Cap(Cap) {}
  void error(const std::string &Loc, const std::string &Msg) {
    if (Count++ < Cap)
      R.error(PassName, Loc, Msg);
  }
  void flush(const std::string &Kind) {
    if (Count > Cap)
      R.note(PassName, "",
             std::to_string(Count - Cap) + " further " + Kind +
                 " violations suppressed (" + std::to_string(Count) +
                 " total)");
  }

private:
  Report &R;
  int Cap;
  int Count = 0;
};

} // namespace

Certificate
verify::checkCertificate(const LpProblem &Problem,
                         const std::vector<int> &IntegerVars,
                         const MilpSolution &Sol,
                         const CertificateCheckOptions &Opts) {
  Certificate C;
  Report &R = C.R;

  if (Sol.Status != MilpStatus::Optimal &&
      Sol.Status != MilpStatus::Feasible) {
    R.note(PassName, "",
           std::string("solution status is ") + milpStatusName(Sol.Status) +
               "; no point to certify");
    return C;
  }
  const int NumVars = Problem.numVariables();
  if (static_cast<int>(Sol.X.size()) != NumVars) {
    R.error(PassName, "",
            "solution has " + std::to_string(Sol.X.size()) +
                " values for " + std::to_string(NumVars) + " variables");
    return C;
  }
  C.Checked = true;

  // Variable bounds and finiteness.
  CappedEmitter BoundDiags(R, Opts.MaxDiagnosticsPerKind);
  for (int V = 0; V < NumVars; ++V) {
    double X = Sol.X[V];
    std::string Loc = "var " + std::to_string(V);
    if (!Problem.name(V).empty())
      Loc += " (" + Problem.name(V) + ")";
    if (!std::isfinite(X)) {
      BoundDiags.error(Loc, "non-finite value");
      C.MaxBoundViolation = lpInf();
      continue;
    }
    double Lo = Problem.lowerBound(V), Hi = Problem.upperBound(V);
    double Viol = std::fmax(Lo - X, X - Hi);
    double Scale =
        std::fmax(1.0, std::fmax(std::fabs(Lo),
                                 std::isfinite(Hi) ? std::fabs(Hi) : 0.0));
    double Scaled = std::fmax(0.0, Viol) / Scale;
    C.MaxBoundViolation = std::fmax(C.MaxBoundViolation, Scaled);
    if (Scaled > Opts.Tolerance)
      BoundDiags.error(Loc, "value " + std::to_string(X) +
                                " outside bounds [" + std::to_string(Lo) +
                                ", " + std::to_string(Hi) + "]");
  }
  BoundDiags.flush("bound");

  // Every constraint row, re-summed with compensation.
  CappedEmitter RowDiags(R, Opts.MaxDiagnosticsPerKind);
  for (int Row = 0; Row < Problem.numRows(); ++Row) {
    KahanSum Activity;
    for (const LpTerm &T : Problem.rowTerms(Row))
      Activity.add(T.Coeff * Sol.X[T.Var]);
    double A = Activity.value();
    double B = Problem.rhs(Row);
    double Resid = 0.0;
    switch (Problem.sense(Row)) {
    case RowSense::LE:
      Resid = A - B;
      break;
    case RowSense::GE:
      Resid = B - A;
      break;
    case RowSense::EQ:
      Resid = std::fabs(A - B);
      break;
    }
    double Scaled = std::fmax(0.0, Resid) / std::fmax(1.0, std::fabs(B));
    C.MaxRowViolation = std::fmax(C.MaxRowViolation, Scaled);
    if (Scaled > Opts.Tolerance)
      RowDiags.error("row " + std::to_string(Row),
                     "activity " + std::to_string(A) + " violates " +
                         senseName(Problem.sense(Row)) + " " +
                         std::to_string(B) + " (scaled residual " +
                         std::to_string(Scaled) + ")");
  }
  RowDiags.flush("row");

  // Integrality of the declared integer variables.
  CappedEmitter IntDiags(R, Opts.MaxDiagnosticsPerKind);
  for (int V : IntegerVars) {
    if (V < 0 || V >= NumVars) {
      IntDiags.error("var " + std::to_string(V),
                     "integer index out of range");
      continue;
    }
    double X = Sol.X[V];
    if (!std::isfinite(X))
      continue; // already reported as a bound violation
    double Gap = std::fabs(X - std::round(X));
    C.MaxIntegralityGap = std::fmax(C.MaxIntegralityGap, Gap);
    if (Gap > Opts.IntTolerance) {
      std::string Loc = "var " + std::to_string(V);
      if (!Problem.name(V).empty())
        Loc += " (" + Problem.name(V) + ")";
      IntDiags.error(Loc, "fractional value " + std::to_string(X) +
                              " on an integer variable");
    }
  }
  IntDiags.flush("integrality");

  // Objective: c^T x with compensation, against the solver's claim.
  KahanSum Obj;
  for (int V = 0; V < NumVars; ++V)
    Obj.add(Problem.cost(V) * Sol.X[V]);
  C.RecomputedObjective = Obj.value();
  C.ObjectiveMismatch = std::fabs(C.RecomputedObjective - Sol.Objective);
  double ObjScale = std::fmax(1.0, std::fabs(Sol.Objective));
  if (C.ObjectiveMismatch / ObjScale > Opts.Tolerance)
    R.error(PassName, "objective",
            "recomputed c^T x = " + std::to_string(C.RecomputedObjective) +
                " differs from the reported objective " +
                std::to_string(Sol.Objective) + " by " +
                std::to_string(C.ObjectiveMismatch));

  return C;
}
