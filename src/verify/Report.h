//===- verify/Report.h - Structured verification diagnostics ----*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The diagnostic vocabulary shared by every verify pass (CfgChecker,
/// ScheduleChecker, CertificateChecker): a Diagnostic names the pass
/// that found it, a severity, a location inside the artifact ("block 3",
/// "edge 2->5", "row 17"), and a message; a Report collects them. The
/// contract consumers rely on: a pass succeeded iff its report carries
/// zero errors — warnings are advisory (dead edges, unexecuted blocks)
/// and never fail a strict gate.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_VERIFY_REPORT_H
#define CDVS_VERIFY_REPORT_H

#include <string>
#include <vector>

namespace cdvs {
namespace verify {

/// How bad a finding is. Errors fail strict gates; warnings and notes
/// are advisory.
enum class Severity { Error, Warning, Note };

/// \returns a printable lower-case name ("error", "warning", "note").
const char *severityName(Severity S);

/// One finding of a verify pass.
struct Diagnostic {
  Severity Sev = Severity::Error;
  std::string Pass;     ///< pass that produced it: "cfg", "schedule", ...
  std::string Location; ///< artifact coordinate: "block 3", "row 17", ...
  std::string Message;

  /// "error: [cfg] block 3: flow imbalance ..." — one line, no newline.
  std::string render() const;
};

/// An ordered bag of diagnostics from one or more passes.
class Report {
public:
  void error(std::string Pass, std::string Location, std::string Message) {
    add(Severity::Error, std::move(Pass), std::move(Location),
        std::move(Message));
  }
  void warning(std::string Pass, std::string Location,
               std::string Message) {
    add(Severity::Warning, std::move(Pass), std::move(Location),
        std::move(Message));
  }
  void note(std::string Pass, std::string Location, std::string Message) {
    add(Severity::Note, std::move(Pass), std::move(Location),
        std::move(Message));
  }
  void add(Severity Sev, std::string Pass, std::string Location,
           std::string Message);

  /// Appends every diagnostic of \p Other.
  void merge(const Report &Other);

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  int errorCount() const { return Errors; }
  int warningCount() const { return Warnings; }

  /// True iff no error-severity diagnostic was recorded.
  bool ok() const { return Errors == 0; }

  /// All diagnostics, one rendered line each (trailing newline included
  /// when non-empty).
  std::string render() const;

  /// The first error's rendered line, or "" when ok() — the one-line
  /// reason strict service mode attaches to a failed job.
  std::string firstError() const;

private:
  std::vector<Diagnostic> Diags;
  int Errors = 0;
  int Warnings = 0;
};

} // namespace verify
} // namespace cdvs

#endif // CDVS_VERIFY_REPORT_H
