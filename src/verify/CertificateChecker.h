//===- verify/CertificateChecker.h - MILP solution certificates -*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pass 3 of the static verifier: an a-posteriori certificate for a
/// branch-and-bound solution. The solver is a few thousand lines of
/// pivoting and pruning; the certificate is a page of arithmetic. Every
/// constraint row, every variable bound, every integrality requirement
/// and the objective are re-evaluated directly against the original
/// LpProblem in compensated (Kahan) summation, independent of any state
/// the solver kept. The result reports the maximum scaled violation
/// found, so callers can assert quantitative bounds (the benches require
/// max violation < 1e-6) rather than a bare boolean.
///
/// The check certifies *feasibility and objective consistency* of the
/// returned point. Optimality is not re-proved — that would require
/// replaying the search tree — but for the DVS MILP a feasible point
/// with a matching objective is exactly what downstream consumers
/// (ScheduleIO artifacts, the service cache) depend on.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_VERIFY_CERTIFICATECHECKER_H
#define CDVS_VERIFY_CERTIFICATECHECKER_H

#include "lp/LpProblem.h"
#include "milp/MilpSolver.h"
#include "milp/Presolve.h"
#include "verify/Report.h"

#include <vector>

namespace cdvs {
namespace verify {

/// Knobs for the certificate check.
struct CertificateCheckOptions {
  /// Scaled-violation threshold: a row or bound is violated when
  /// residual / max(1, |rhs|) exceeds this.
  double Tolerance = 1e-6;
  /// Integrality threshold on the declared integer variables.
  double IntTolerance = 1e-6;
  /// Per-kind cap on individual diagnostics; excess rows collapse into
  /// one summary note so a badly corrupted solution stays readable.
  int MaxDiagnosticsPerKind = 10;
};

/// Outcome of certifying one MilpSolution against its LpProblem.
struct Certificate {
  Report R;
  /// True when the solution carried a point to check (Optimal or
  /// Feasible with a full-size X); false means the numbers below are
  /// meaningless and R holds a note explaining why.
  bool Checked = false;
  /// max over rows of scaled constraint residual (0 when satisfied).
  double MaxRowViolation = 0.0;
  /// max over variables of scaled bound violation.
  double MaxBoundViolation = 0.0;
  /// max over integer variables of |x - round(x)|.
  double MaxIntegralityGap = 0.0;
  /// c^T x re-evaluated with Kahan summation.
  double RecomputedObjective = 0.0;
  /// |RecomputedObjective - Solution.Objective|.
  double ObjectiveMismatch = 0.0;
};

/// Re-evaluates \p Sol against \p Problem. \p IntegerVars are the
/// variables the solve declared integral (the DVS mode binaries).
/// Diagnostics carry pass name "certificate".
Certificate
checkCertificate(const LpProblem &Problem,
                 const std::vector<int> &IntegerVars,
                 const MilpSolution &Sol,
                 const CertificateCheckOptions &Opts =
                     CertificateCheckOptions());

/// Outcome of replaying a presolve ReductionCertificate.
struct ReductionCheck {
  /// Mapping-replay diagnostics, pass name "reduction".
  Report R;
  /// True when the mapping was well-formed enough to expand a point and
  /// certify it; false means structural replay already failed.
  bool Checked = false;
  /// Full original-space certificate of the expanded point (pass
  /// "certificate" diagnostics live here).
  Certificate Expanded;
  /// |reduced objective + offset - original objective at the expanded
  /// point|, scaled like the other objective checks.
  double ObjectiveBridgeError = 0.0;

  bool ok() const { return R.ok() && Expanded.R.ok(); }
};

/// Replays \p Cert against the ORIGINAL problem: checks the
/// variable/row mapping is a well-formed bijection onto the reduced
/// problem, that every kept column/row of \p Reduced is exactly the
/// original one with fixed terms folded into the right-hand side, that
/// every dropped row is satisfied by the fixed values alone, then
/// expands \p ReducedSol back to original space and certifies
/// feasibility, integrality (over \p OrigIntegerVars), and objective
/// equality (reduced objective + Cert.ObjectiveOffset) against
/// \p Original. A buggy presolve cannot pass this check.
ReductionCheck checkReductionCertificate(
    const LpProblem &Original, const std::vector<int> &OrigIntegerVars,
    const ReductionCertificate &Cert, const LpProblem &Reduced,
    const MilpSolution &ReducedSol,
    const CertificateCheckOptions &Opts = CertificateCheckOptions());

} // namespace verify
} // namespace cdvs

#endif // CDVS_VERIFY_CERTIFICATECHECKER_H
