//===- verify/StaticChecker.h - Static CFG audit -----------------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dvs-lint --static pass: turns the facts the analysis library
/// proves about a CFG into structured Report diagnostics. Errors are
/// reserved for contradictions (a profile count on a statically dead
/// edge); purely structural findings — unreachable blocks, dead edges,
/// irreducible regions, dubious scaling points — are warnings or notes,
/// because the MILP remains correct on such CFGs, just wasteful or
/// harder to reason about.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_VERIFY_STATICCHECKER_H
#define CDVS_VERIFY_STATICCHECKER_H

#include "analysis/Analysis.h"
#include "ir/Function.h"
#include "profile/Profile.h"
#include "verify/Report.h"

namespace cdvs {
namespace verify {

/// Knobs for the static audit.
struct StaticCheckOptions {
  /// Also emit per-edge notes for loop-back and self-loop scaling
  /// points (off: only a summary count).
  bool NoteLoopScalingPoints = true;
};

/// Audits \p Fn using precomputed analysis \p FA. When \p Prof is
/// non-null, profile counts are cross-checked against the static facts
/// (counts on dead edges/blocks become errors, counts outside the
/// static frequency intervals become errors). Diagnostics carry pass
/// name "static".
Report checkStatic(const Function &Fn, const analysis::FunctionAnalysis &FA,
                   const Profile *Prof = nullptr,
                   const StaticCheckOptions &Opts = StaticCheckOptions());

} // namespace verify
} // namespace cdvs

#endif // CDVS_VERIFY_STATICCHECKER_H
