//===- verify/TaskGraphChecker.h - Task-plan legality audit -----*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pass 6, "taskgraph": independent legality audit of an executed
/// task-graph plan (taskgraph/Online.h) against the graph and the
/// profiled costs it was planned from. Checks, from scratch and without
/// trusting the planner:
///
///   - structural: the graph validates and the plan covers every node
///     with a legal mode index;
///   - precedence: on the *actual* timeline, no task starts before any
///     of its predecessors finishes;
///   - timing: per-task actual duration equals the profiled duration at
///     the committed mode scaled by the node's ActualFactor, and
///     finish - start equals that duration;
///   - shared deadline: the recomputed makespan meets the deadline, and
///     the plan's DeadlineMet claim matches;
///   - energy: planned and actual totals recomputed with compensated
///     (Kahan) summation match the claimed values, and — when the
///     static plan is attached — the static total matches too;
///   - bookkeeping: 0 <= ReplansAccepted <= Replans.
///
/// Like the other passes this is pure: it renders diagnostics into a
/// Report and never mutates its inputs.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_VERIFY_TASKGRAPHCHECKER_H
#define CDVS_VERIFY_TASKGRAPHCHECKER_H

#include "taskgraph/Online.h"
#include "verify/Report.h"

namespace cdvs {
namespace verify {

/// Recomputed facts the audit derived; returned for callers that want
/// to display them next to the claims.
struct TaskGraphCheck {
  double PlannedEnergyJoules = 0.0; ///< Kahan recompute
  double ActualEnergyJoules = 0.0;  ///< Kahan recompute
  double MakespanSeconds = 0.0;     ///< recomputed from the records
  int TasksChecked = 0;
};

/// Audits \p R (an executed plan for \p G under \p Costs and
/// \p DeadlineSeconds). \p Tolerance is the relative tolerance for
/// energy/timing comparisons. Appends to \p Out when non-null.
Report checkTaskPlan(const taskgraph::TaskGraph &G,
                     const taskgraph::TaskCosts &Costs,
                     double DeadlineSeconds,
                     const taskgraph::OnlineResult &R,
                     double Tolerance = 1e-6,
                     TaskGraphCheck *Out = nullptr);

} // namespace verify
} // namespace cdvs

#endif // CDVS_VERIFY_TASKGRAPHCHECKER_H
