//===- verify/CfgChecker.cpp - CFG/profile structural analysis ------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "verify/CfgChecker.h"

#include "analysis/Reachability.h"
#include "support/Numeric.h"

#include <cmath>
#include <map>
#include <set>
#include <string>

using namespace cdvs;
using namespace cdvs::verify;

namespace {

const char *PassName = "cfg";

std::string blockLoc(const Function &Fn, int B) {
  return "block " + std::to_string(B) + " (" + Fn.block(B).Name + ")";
}

std::string edgeLoc(const CfgEdge &E) {
  return "edge " + std::to_string(E.From) + "->" + std::to_string(E.To);
}

} // namespace

Report verify::checkCfgProfile(const Function &Fn, const Profile &Prof,
                               const CfgCheckOptions &Opts) {
  Report R;

  // The CFG itself must be well-formed before any count can be trusted.
  ErrorOr<bool> FnOk = Fn.verify();
  if (!FnOk) {
    R.error(PassName, "function " + Fn.name(), FnOk.message());
    return R;
  }

  const int NumBlocks = Fn.numBlocks();
  if (Prof.NumBlocks != NumBlocks) {
    R.error(PassName, "profile",
            "profile covers " + std::to_string(Prof.NumBlocks) +
                " blocks but function has " + std::to_string(NumBlocks));
    return R;
  }
  if (Prof.NumModes <= 0) {
    R.error(PassName, "profile", "profile carries no modes");
    return R;
  }
  if (static_cast<int>(Prof.BlockExecs.size()) != NumBlocks ||
      static_cast<int>(Prof.TimePerInvocation.size()) != NumBlocks ||
      static_cast<int>(Prof.EnergyPerInvocation.size()) != NumBlocks) {
    R.error(PassName, "profile",
            "per-block vectors do not match the block count");
    return R;
  }

  // Per-mode data: finite and nonnegative, rows sized NumModes.
  for (int B = 0; B < NumBlocks; ++B) {
    const auto &TRow = Prof.TimePerInvocation[B];
    const auto &ERow = Prof.EnergyPerInvocation[B];
    if (static_cast<int>(TRow.size()) != Prof.NumModes ||
        static_cast<int>(ERow.size()) != Prof.NumModes) {
      R.error(PassName, blockLoc(Fn, B),
              "per-mode rows are not sized to the mode count");
      continue;
    }
    bool ZeroTime = false;
    for (int M = 0; M < Prof.NumModes; ++M) {
      if (!std::isfinite(TRow[M]) || TRow[M] < 0.0)
        R.error(PassName, blockLoc(Fn, B),
                "non-finite or negative time at mode " +
                    std::to_string(M));
      if (!std::isfinite(ERow[M]) || ERow[M] < 0.0)
        R.error(PassName, blockLoc(Fn, B),
                "non-finite or negative energy at mode " +
                    std::to_string(M));
      ZeroTime |= Prof.BlockExecs[B] > 0 && TRow[M] <= 0.0;
    }
    if (ZeroTime)
      R.warning(PassName, blockLoc(Fn, B),
                "executed block has zero time at some mode (empty "
                "block, or a profiling gap)");
  }

  // Every profiled edge must lie on the CFG.
  std::set<CfgEdge> CfgEdges;
  for (const CfgEdge &E : Fn.edges())
    CfgEdges.insert(E);
  for (const auto &[E, G] : Prof.EdgeCounts) {
    if (!CfgEdges.count(E))
      R.error(PassName, edgeLoc(E),
              "profiled edge (count " + std::to_string(G) +
                  ") is not a CFG edge");
  }

  // Reachability: executed blocks must be reachable from the entry and
  // must reach an exit; statically dead blocks are only warnings. The
  // classification comes from the shared static analysis — the same one
  // the MILP presolve consumes — so lint and presolve cannot disagree
  // about which blocks and edges are dead.
  analysis::Reachability Reach = analysis::computeReachability(Fn);
  for (int B = 0; B < NumBlocks; ++B) {
    bool Executed = Prof.BlockExecs[B] > 0;
    if (!Reach.fromEntry(B)) {
      if (Executed)
        R.error(PassName, blockLoc(Fn, B),
                "executed " + std::to_string(Prof.BlockExecs[B]) +
                    " times but is unreachable from the entry");
      else
        R.warning(PassName, blockLoc(Fn, B),
                  "unreachable from the entry (dead block)");
    }
    if (!Reach.toExit(B)) {
      if (Executed)
        R.error(PassName, blockLoc(Fn, B),
                "executed but no exit is reachable from it");
      else
        R.warning(PassName, blockLoc(Fn, B), "cannot reach any exit");
    }
  }

  // Flow conservation. In-flow and out-flow per block from the profiled
  // edge counts; the entry additionally receives the launch(es), and
  // blocks ending in Ret additionally emit the returns.
  std::vector<KahanSum> In(NumBlocks), Out(NumBlocks);
  for (const auto &[E, G] : Prof.EdgeCounts) {
    if (!CfgEdges.count(E))
      continue; // already reported
    In[E.To].add(static_cast<double>(G));
    Out[E.From].add(static_cast<double>(G));
  }
  const double Tol = Opts.FlowTolerance;
  // Launches = entry executions not explained by in-edges.
  double Launches =
      static_cast<double>(Prof.BlockExecs[0]) - In[0].value();
  if (Launches < -Tol)
    R.error(PassName, blockLoc(Fn, 0),
            "entry in-edge counts exceed its execution count by " +
                std::to_string(-Launches));
  KahanSum Returns;
  for (int B = 0; B < NumBlocks; ++B) {
    double Execs = static_cast<double>(Prof.BlockExecs[B]);
    if (B != 0 && std::fabs(In[B].value() - Execs) > Tol)
      R.error(PassName, blockLoc(Fn, B),
              "flow imbalance: in-edge counts sum to " +
                  std::to_string(In[B].value()) + " but block executed " +
                  std::to_string(Prof.BlockExecs[B]) + " times");
    if (Fn.block(B).Term == TermKind::Ret) {
      Returns.add(Execs - Out[B].value());
      if (Out[B].value() > Tol)
        R.error(PassName, blockLoc(Fn, B),
                "exit block has outgoing edge counts");
    } else if (std::fabs(Out[B].value() - Execs) > Tol) {
      R.error(PassName, blockLoc(Fn, B),
              "flow imbalance: out-edge counts sum to " +
                  std::to_string(Out[B].value()) + " but block executed " +
                  std::to_string(Prof.BlockExecs[B]) + " times");
    }
  }
  if (std::fabs(Returns.value() - Launches) > Tol)
    R.error(PassName, "function " + Fn.name(),
            "launch/return imbalance: " + std::to_string(Launches) +
                " launches vs " + std::to_string(Returns.value()) +
                " returns");

  // Local-path consistency: sum_h D_hij == G_ij, and both path edges
  // must exist (the h = -1 context is the launch).
  std::map<CfgEdge, KahanSum> PathSumPerEdge;
  for (const auto &[Path, D] : Prof.PathCounts) {
    auto [H, I, J] = Path;
    CfgEdge InEdge{H, I}, OutEdge{I, J};
    if (!CfgEdges.count(OutEdge)) {
      R.error(PassName, edgeLoc(OutEdge),
              "local path (" + std::to_string(H) + "," +
                  std::to_string(I) + "," + std::to_string(J) +
                  ") leaves along a non-CFG edge");
      continue;
    }
    if (H != -1 && !CfgEdges.count(InEdge)) {
      R.error(PassName, edgeLoc(InEdge),
              "local path (" + std::to_string(H) + "," +
                  std::to_string(I) + "," + std::to_string(J) +
                  ") enters along a non-CFG edge");
      continue;
    }
    PathSumPerEdge[OutEdge].add(static_cast<double>(D));
  }
  for (const CfgEdge &E : Fn.edges()) {
    auto GIt = Prof.EdgeCounts.find(E);
    double G = GIt == Prof.EdgeCounts.end()
                   ? 0.0
                   : static_cast<double>(GIt->second);
    auto PIt = PathSumPerEdge.find(E);
    double D = PIt == PathSumPerEdge.end() ? 0.0 : PIt->second.value();
    if (std::fabs(G - D) > Tol)
      R.error(PassName, edgeLoc(E),
              "path counts sum to " + std::to_string(D) +
                  " but the edge count is " + std::to_string(G));
    if (G > 0.0 && !Reach.live(E))
      R.error(PassName, edgeLoc(E),
              "statically dead edge carries a nonzero profile count (" +
                  std::to_string(G) + ")");
    if (Opts.WarnDeadEdges && G == 0.0 &&
        Prof.BlockExecs[E.From] > 0)
      R.warning(PassName, edgeLoc(E),
                "dead edge: source executed " +
                    std::to_string(Prof.BlockExecs[E.From]) +
                    " times but the edge was never taken");
  }

  return R;
}
