//===- verify/Report.cpp - Structured verification diagnostics ------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "verify/Report.h"

#include "support/Error.h"

using namespace cdvs;
using namespace cdvs::verify;

const char *verify::severityName(Severity S) {
  switch (S) {
  case Severity::Error:
    return "error";
  case Severity::Warning:
    return "warning";
  case Severity::Note:
    return "note";
  }
  cdvsUnreachable("bad Severity");
}

std::string Diagnostic::render() const {
  std::string Out = severityName(Sev);
  Out += ": [" + Pass + "]";
  if (!Location.empty())
    Out += " " + Location + ":";
  Out += " " + Message;
  return Out;
}

void Report::add(Severity Sev, std::string Pass, std::string Location,
                 std::string Message) {
  if (Sev == Severity::Error)
    ++Errors;
  else if (Sev == Severity::Warning)
    ++Warnings;
  Diags.push_back(
      {Sev, std::move(Pass), std::move(Location), std::move(Message)});
}

void Report::merge(const Report &Other) {
  Diags.insert(Diags.end(), Other.Diags.begin(), Other.Diags.end());
  Errors += Other.Errors;
  Warnings += Other.Warnings;
}

std::string Report::render() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.render();
    Out += '\n';
  }
  return Out;
}

std::string Report::firstError() const {
  for (const Diagnostic &D : Diags)
    if (D.Sev == Severity::Error)
      return D.render();
  return "";
}
