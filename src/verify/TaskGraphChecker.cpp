//===- verify/TaskGraphChecker.cpp - Task-plan legality audit -------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "verify/TaskGraphChecker.h"

#include "support/Numeric.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace cdvs {
namespace verify {

namespace {

const char *kPass = "taskgraph";

bool closeRel(double A, double B, double Tol) {
  double Scale = std::max({1.0, std::fabs(A), std::fabs(B)});
  return std::fabs(A - B) <= Tol * Scale;
}

std::string fmt(double V) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.9g", V);
  return Buf;
}

} // namespace

Report checkTaskPlan(const taskgraph::TaskGraph &G,
                     const taskgraph::TaskCosts &Costs,
                     double DeadlineSeconds,
                     const taskgraph::OnlineResult &R, double Tolerance,
                     TaskGraphCheck *Out) {
  Report Rep;
  TaskGraphCheck Check;

  ErrorOr<bool> Valid = taskgraph::validateGraph(G);
  if (!Valid) {
    Rep.error(kPass, G.Name, Valid.message());
    if (Out)
      *Out = Check;
    return Rep;
  }
  const size_t NumNodes = G.Nodes.size();
  const int NumModes = Costs.numModes();
  if (R.Tasks.size() != NumNodes) {
    Rep.error(kPass, G.Name,
              "plan covers " + std::to_string(R.Tasks.size()) +
                  " tasks but the graph has " + std::to_string(NumNodes));
    if (Out)
      *Out = Check;
    return Rep;
  }
  if (Costs.TimeAtMode.size() != NumNodes ||
      Costs.EnergyAtMode.size() != NumNodes || NumModes == 0) {
    Rep.error(kPass, G.Name, "cost table does not cover the graph");
    if (Out)
      *Out = Check;
    return Rep;
  }

  // Absolute tolerance for timestamps, scaled to the deadline so a
  // %.17g round trip never trips it.
  double TimeTol = Tolerance * std::max(1.0, DeadlineSeconds);

  KahanSum Planned, Actual;
  for (size_t I = 0; I < NumNodes; ++I) {
    const taskgraph::TaskExecRecord &T = R.Tasks[I];
    const std::string &Loc = G.Nodes[I].Name;
    if (T.Mode < 0 || T.Mode >= NumModes) {
      Rep.error(kPass, Loc,
                "illegal mode index " + std::to_string(T.Mode) + " (table has " +
                    std::to_string(NumModes) + " modes)");
      continue;
    }
    ++Check.TasksChecked;
    if (T.Start < -TimeTol)
      Rep.error(kPass, Loc, "starts before time zero (" + fmt(T.Start) + ")");
    double WantDur =
        Costs.TimeAtMode[I][T.Mode] * G.Nodes[I].ActualFactor;
    if (!closeRel(T.ActualSeconds, WantDur, Tolerance))
      Rep.error(kPass, Loc,
                "actual duration " + fmt(T.ActualSeconds) +
                    " != profiled x factor " + fmt(WantDur));
    if (std::fabs((T.Finish - T.Start) - T.ActualSeconds) > TimeTol)
      Rep.error(kPass, Loc,
                "finish - start = " + fmt(T.Finish - T.Start) +
                    " disagrees with actual duration " +
                    fmt(T.ActualSeconds));
    double WantEnergy = Costs.EnergyAtMode[I][T.Mode];
    if (!closeRel(T.PlannedEnergyJoules, WantEnergy, Tolerance))
      Rep.error(kPass, Loc,
                "claimed planned energy " + fmt(T.PlannedEnergyJoules) +
                    " != profiled energy at mode " + fmt(WantEnergy));
    Planned.add(WantEnergy);
    Actual.add(WantEnergy * G.Nodes[I].ActualFactor);
    Check.MakespanSeconds = std::max(Check.MakespanSeconds, T.Finish);
  }

  for (const auto &E : G.Edges) {
    const taskgraph::TaskExecRecord &P = R.Tasks[E.first];
    const taskgraph::TaskExecRecord &S = R.Tasks[E.second];
    if (S.Start < P.Finish - TimeTol)
      Rep.error(kPass,
                G.Nodes[E.first].Name + " -> " + G.Nodes[E.second].Name,
                "successor starts at " + fmt(S.Start) +
                    " before predecessor finishes at " + fmt(P.Finish));
  }

  if (Check.MakespanSeconds > DeadlineSeconds + TimeTol)
    Rep.error(kPass, G.Name,
              "shared deadline missed: makespan " +
                  fmt(Check.MakespanSeconds) + " > deadline " +
                  fmt(DeadlineSeconds));
  bool RecomputedMet = Check.MakespanSeconds <= DeadlineSeconds + TimeTol;
  if (R.DeadlineMet != RecomputedMet)
    Rep.error(kPass, G.Name,
              std::string("DeadlineMet claim (") +
                  (R.DeadlineMet ? "true" : "false") +
                  ") disagrees with the recomputed timeline");

  Check.PlannedEnergyJoules = Planned.value();
  Check.ActualEnergyJoules = Actual.value();
  if (!closeRel(R.PlannedEnergyJoules, Check.PlannedEnergyJoules, Tolerance))
    Rep.error(kPass, G.Name,
              "claimed planned energy " + fmt(R.PlannedEnergyJoules) +
                  " != recomputed " + fmt(Check.PlannedEnergyJoules));
  if (!closeRel(R.ActualEnergyJoules, Check.ActualEnergyJoules, Tolerance))
    Rep.error(kPass, G.Name,
              "claimed actual energy " + fmt(R.ActualEnergyJoules) +
                  " != recomputed " + fmt(Check.ActualEnergyJoules));
  if (!closeRel(R.MakespanSeconds, Check.MakespanSeconds, Tolerance))
    Rep.error(kPass, G.Name,
              "claimed makespan " + fmt(R.MakespanSeconds) +
                  " != recomputed " + fmt(Check.MakespanSeconds));

  // The static plan rides along only on in-process results; recompute
  // its energy when present, note the skip when not (text round trip).
  if (R.StaticPlan.Tasks.size() == NumNodes && R.StaticPlan.Feasible) {
    KahanSum Static;
    for (size_t I = 0; I < NumNodes; ++I) {
      int M = R.StaticPlan.Tasks[I].Mode;
      if (M < 0 || M >= NumModes) {
        Rep.error(kPass, G.Nodes[I].Name,
                  "static plan has illegal mode " + std::to_string(M));
        continue;
      }
      Static.add(Costs.EnergyAtMode[I][M]);
    }
    if (!closeRel(R.StaticEnergyJoules, Static.value(), Tolerance))
      Rep.error(kPass, G.Name,
                "claimed static energy " + fmt(R.StaticEnergyJoules) +
                    " != recomputed " + fmt(Static.value()));
  } else {
    Rep.note(kPass, G.Name,
             "static plan not attached; static energy taken on faith");
  }

  if (R.ReplansAccepted < 0 || R.Replans < 0 ||
      R.ReplansAccepted > R.Replans)
    Rep.error(kPass, G.Name,
              "replan counters inconsistent: accepted " +
                  std::to_string(R.ReplansAccepted) + " of " +
                  std::to_string(R.Replans));

  if (Out)
    *Out = Check;
  return Rep;
}

} // namespace verify
} // namespace cdvs
