//===- verify/CfgChecker.h - CFG/profile structural analysis ----*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pass 1 of the static verifier: structural soundness of a profiled
/// CFG, the substrate every energy number in the repo stands on. The
/// MILP's coefficients are G_ij edge counts and D_hij local-path counts
/// (Section 4.2); if those violate flow conservation the objective is
/// measuring a program that never ran. Checks:
///
///  * the Function itself verifies (entry, terminators, ranges);
///  * per-mode times/energies are finite and nonnegative ("negative
///    count" detection in the double domain);
///  * every profiled edge and local path lies on the CFG;
///  * reachability — executed blocks must be reachable from the entry
///    and must reach an exit; unreachable dead blocks are warnings;
///  * flow conservation at every block: sum of in-edge counts (plus the
///    launch at the entry) == block executions == sum of out-edge
///    counts (plus returns at exit blocks), within FlowTolerance;
///  * path/edge consistency: sum_h D_hij == G_ij for every edge;
///  * dead edges — CFG edges the profile never crossed (warnings).
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_VERIFY_CFGCHECKER_H
#define CDVS_VERIFY_CFGCHECKER_H

#include "profile/Profile.h"
#include "verify/Report.h"

namespace cdvs {
namespace verify {

/// Knobs for the CFG/profile analysis.
struct CfgCheckOptions {
  /// Absolute slack on count-sum comparisons. Counts are integers, so
  /// the default catches any real imbalance while tolerating the
  /// double-domain accumulation the checker itself performs.
  double FlowTolerance = 0.5;
  /// Report CFG edges the profile never crossed as warnings.
  bool WarnDeadEdges = true;
};

/// Runs the structural analysis of \p Prof against \p Fn. The pass name
/// on every diagnostic is "cfg". \returns the collected report; ok()
/// means the profile is flow-conservative and safe to feed the MILP.
Report checkCfgProfile(const Function &Fn, const Profile &Prof,
                       const CfgCheckOptions &Opts = CfgCheckOptions());

} // namespace verify
} // namespace cdvs

#endif // CDVS_VERIFY_CFGCHECKER_H
