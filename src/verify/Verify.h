//===- verify/Verify.h - Static verification umbrella -----------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Umbrella for the three verifier passes plus the one-call audit the
/// service pipeline, the benches, and tools/dvs-lint share:
///
///   pass 1  "cfg"          — checkCfgProfile   (CfgChecker.h)
///   pass 2  "schedule"     — checkSchedule     (ScheduleChecker.h)
///   pass 3  "certificate"  — checkCertificate  (CertificateChecker.h)
///   pass 4  "reduction"    — checkReductionCertificate (same header);
///                            runs only when the scheduler presolved
///   pass 5  "static"       — checkStatic       (StaticChecker.h);
///                            dvs-lint --static only, not in the audit
///   pass 6  "taskgraph"    — checkTaskPlan     (TaskGraphChecker.h);
///                            task-graph jobs only, invoked by the
///                            service's graph pipeline instead of
///                            auditScheduleResult
///
/// auditScheduleResult() runs all three over one ScheduleResult: the
/// profiles it was derived from, the decoded assignment, and — when the
/// scheduler ran with DvsOptions::KeepArtifacts — the retained MILP
/// instance and raw solution.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_VERIFY_VERIFY_H
#define CDVS_VERIFY_VERIFY_H

#include "dvs/DvsScheduler.h"
#include "verify/CertificateChecker.h"
#include "verify/CfgChecker.h"
#include "verify/Report.h"
#include "verify/ScheduleChecker.h"

#include <vector>

namespace cdvs {
namespace verify {

/// Knobs for the combined audit.
struct AuditOptions {
  /// Relative tolerance shared by the schedule and certificate passes.
  double Tolerance = 1e-6;
  /// The edge-filter threshold the schedule was produced with (enables
  /// the filtered-placement soundness audit when > 0).
  double FilterThreshold = 0.0;
  /// Run the structural profile analysis too (skip when the caller has
  /// already linted the profiles separately).
  bool CheckProfiles = true;
};

/// Combined outcome; R merges the diagnostics of every pass that ran.
struct Audit {
  Report R;
  ScheduleCheck Schedule;
  Certificate Cert;
  /// Populated when the scheduler presolved (Artifacts->Presolved): the
  /// replay of the reduction certificate against the original MILP.
  ReductionCheck Reduction;
  bool ok() const { return R.ok(); }
};

/// Runs every applicable pass over \p SR. Cross-checks the recomputed
/// energy against the MILP objective only when the solve produced a
/// point (Optimal/Feasible); certifies the MILP solution only when
/// SR.Artifacts is populated (DvsOptions::KeepArtifacts), otherwise a
/// note records the skipped pass.
Audit auditScheduleResult(const Function &Fn,
                          const std::vector<CategoryProfile> &Categories,
                          const ModeTable &Modes,
                          const TransitionModel &Transitions,
                          const ScheduleResult &SR,
                          const std::vector<double> &DeadlineSeconds,
                          const AuditOptions &Opts = AuditOptions());

} // namespace verify
} // namespace cdvs

#endif // CDVS_VERIFY_VERIFY_H
