//===- verify/StaticChecker.cpp - Static CFG audit --------------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "verify/StaticChecker.h"

#include <string>

using namespace cdvs;
using namespace cdvs::verify;

namespace {

const char *PassName = "static";

std::string blockLoc(const Function &Fn, int B) {
  return "block " + std::to_string(B) + " (" + Fn.block(B).Name + ")";
}

std::string edgeLoc(const CfgEdge &E) {
  return "edge " + std::to_string(E.From) + "->" + std::to_string(E.To);
}

std::string joinBlocks(const std::vector<int> &Blocks) {
  std::string S;
  for (size_t I = 0; I < Blocks.size(); ++I) {
    if (I)
      S += ",";
    S += std::to_string(Blocks[I]);
  }
  return S;
}

} // namespace

Report verify::checkStatic(const Function &Fn,
                           const analysis::FunctionAnalysis &FA,
                           const Profile *Prof,
                           const StaticCheckOptions &Opts) {
  Report R;
  const int NumBlocks = Fn.numBlocks();

  if (NumBlocks == 0) {
    R.error(PassName, "function " + Fn.name(), "function has no blocks");
    return R;
  }

  // Dead blocks.
  for (int B = 0; B < NumBlocks; ++B) {
    switch (FA.Reach.Blocks[B]) {
    case analysis::BlockLiveness::Live:
      break;
    case analysis::BlockLiveness::DeadUnreachable:
      R.warning(PassName, blockLoc(Fn, B),
                "unreachable from the entry; its mode variables are dead "
                "weight in the MILP");
      break;
    case analysis::BlockLiveness::DeadNoExit:
      R.warning(PassName, blockLoc(Fn, B),
                "no exit is reachable from it; it cannot appear on a "
                "terminating path");
      break;
    }
  }

  // Irreducible regions: no single loop header dominates the cycle, so
  // the paper's "mode of the loop" placement is ambiguous there.
  for (const analysis::Scc &S : FA.Loops.Sccs) {
    if (!S.Irreducible)
      continue;
    R.warning(PassName, "blocks {" + joinBlocks(S.Blocks) + "}",
              "irreducible cycle with " + std::to_string(S.Entries.size()) +
                  " entries {" + joinBlocks(S.Entries) +
                  "}; no dominating header, loop-based mode placement is "
                  "ambiguous");
  }

  // Scaling-point legality per edge.
  for (const analysis::ScalingPoint &P : FA.Points) {
    switch (P.Kind) {
    case analysis::ScalingPointKind::Dead:
      R.warning(PassName, edgeLoc(P.Edge),
                "statically dead edge; a mode set here can never fire");
      break;
    case analysis::ScalingPointKind::SelfLoop:
      if (Opts.NoteLoopScalingPoints)
        R.note(PassName, edgeLoc(P.Edge),
               "self-loop edge: a mode switch here would re-pay the "
               "transition penalty on every iteration");
      break;
    case analysis::ScalingPointKind::LoopBack:
      if (Opts.NoteLoopScalingPoints)
        R.note(PassName, edgeLoc(P.Edge),
               "loop back edge: a mode switch here repeats each "
               "iteration; prefer the loop entry/exit edges");
      break;
    case analysis::ScalingPointKind::IrreducibleEntry:
      R.warning(PassName, edgeLoc(P.Edge),
                "enters an irreducible cycle: the inherited mode depends "
                "on the entry taken");
      break;
    case analysis::ScalingPointKind::Normal:
    case analysis::ScalingPointKind::LoopEntry:
    case analysis::ScalingPointKind::LoopExit:
      break;
    }
  }

  // Profile cross-checks: static facts bound every honest profile.
  if (Prof && static_cast<int>(Prof->BlockExecs.size()) == NumBlocks) {
    for (int B = 0; B < NumBlocks; ++B) {
      uint64_t Count = Prof->BlockExecs[B];
      const analysis::ExecInterval &I = FA.Freq.Blocks[B];
      if (!I.admits(Count))
        R.error(PassName, blockLoc(Fn, B),
                "profile count " + std::to_string(Count) +
                    " outside the static interval [" + std::to_string(I.Min) +
                    ", " + (I.Unbounded ? std::string("inf") : std::to_string(I.Max)) +
                    "]");
    }
    for (const auto &[E, G] : Prof->EdgeCounts) {
      int Idx = FA.edgeIndex(E);
      if (Idx < 0)
        continue; // Non-CFG edges are the cfg pass's problem.
      if (G == 0)
        continue;
      const analysis::ExecInterval &I = FA.Freq.Edges[Idx];
      if (!I.admits(G)) {
        if (I.cannotExecute())
          R.error(PassName, edgeLoc(E),
                  "statically dead edge carries a nonzero profile count (" +
                      std::to_string(G) + ")");
        else
          R.error(PassName, edgeLoc(E),
                  "profile count " + std::to_string(G) +
                      " outside the static interval [" + std::to_string(I.Min) +
                      ", " +
                      (I.Unbounded ? std::string("inf") : std::to_string(I.Max)) +
                      "]");
      }
    }
  }

  // Summary note: the shape of the function as the analyses see it.
  int MustExec = 0, Unbounded = 0;
  for (const analysis::ExecInterval &I : FA.Freq.Blocks) {
    if (I.mustExecute())
      ++MustExec;
    if (I.Unbounded)
      ++Unbounded;
  }
  R.note(PassName, "function " + Fn.name(),
         std::to_string(NumBlocks) + " blocks, " +
             std::to_string(FA.Edges.size()) + " edges, " +
             std::to_string(FA.Loops.Loops.size()) + " natural loops (max "
             "depth " + std::to_string(FA.maxLoopDepth()) + "), " +
             std::to_string(FA.numIrreducibleSccs()) + " irreducible regions, " +
             std::to_string(FA.numDeadBlocks()) + " dead blocks, " +
             std::to_string(FA.numDeadEdges()) + " dead edges; " +
             std::to_string(MustExec) + " blocks on every path, " +
             std::to_string(Unbounded) + " with unbounded count");
  return R;
}
