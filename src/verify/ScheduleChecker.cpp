//===- verify/ScheduleChecker.cpp - Schedule legality checking ------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "verify/ScheduleChecker.h"

#include "dvs/EdgeGroups.h"
#include "support/Numeric.h"

#include <cmath>
#include <set>
#include <string>

using namespace cdvs;
using namespace cdvs::verify;

namespace {

const char *PassName = "schedule";

std::string edgeLoc(const CfgEdge &E) {
  return "edge " + std::to_string(E.From) + "->" + std::to_string(E.To);
}

} // namespace

ScheduleCheck
verify::checkSchedule(const Function &Fn,
                      const std::vector<CategoryProfile> &Categories,
                      const ModeTable &Modes,
                      const TransitionModel &Transitions,
                      const ModeAssignment &A,
                      const std::vector<double> &DeadlineSeconds,
                      const ScheduleCheckOptions &Opts) {
  ScheduleCheck Out;
  Report &R = Out.R;
  const int NumModes = static_cast<int>(Modes.size());
  const CfgEdge Launch{-1, 0};

  if (A.InitialMode < 0 || A.InitialMode >= NumModes) {
    R.error(PassName, "initial mode",
            "mode " + std::to_string(A.InitialMode) +
                " is not in the mode table (" +
                std::to_string(NumModes) + " modes)");
    return Out;
  }

  std::set<CfgEdge> CfgEdges;
  for (const CfgEdge &E : Fn.edges())
    CfgEdges.insert(E);

  // Assigned modes must exist; assigned edges must lie on the CFG.
  for (const auto &[E, M] : A.EdgeMode) {
    if (M < 0 || M >= NumModes)
      R.error(PassName, edgeLoc(E),
              "assigned mode " + std::to_string(M) +
                  " is not in the mode table");
    if (E == Launch) {
      if (M != A.InitialMode)
        R.error(PassName, edgeLoc(E),
                "launch edge mode " + std::to_string(M) +
                    " contradicts the initial mode " +
                    std::to_string(A.InitialMode));
    } else if (!CfgEdges.count(E)) {
      R.error(PassName, edgeLoc(E),
              "mode-set placed on an edge that is not in the CFG");
    }
  }
  for (const auto &[P, M] : A.PathMode) {
    auto [H, I, J] = P;
    std::string Loc = "path (" + std::to_string(H) + "," +
                      std::to_string(I) + "," + std::to_string(J) + ")";
    if (M < 0 || M >= NumModes)
      R.error(PassName, Loc,
              "assigned mode " + std::to_string(M) +
                  " is not in the mode table");
    if (!CfgEdges.count({I, J}))
      R.error(PassName, Loc, "path leaves along a non-CFG edge");
    if (H != -1 && !CfgEdges.count({H, I}))
      R.error(PassName, Loc, "path enters along a non-CFG edge");
  }
  if (!A.PathMode.empty())
    R.note(PassName, "paths",
           "context-sensitive entries present; transition accounting "
           "uses first-order (edge-mode) incoming contexts");

  // Resolve the static mode carried on every edge. Edges absent from
  // EdgeMode mean "the current mode persists", so the mode entering a
  // block flows through them; a forward fixpoint over the flat lattice
  // {Unknown, mode, Conflict} decides whether that inherited mode is
  // statically unique. Conflict means the edge's mode depends on the
  // path taken — illegal for a static schedule on an executed edge.
  const int Unknown = -2, Conflict = -1;
  auto join = [&](int X, int Y) {
    return X == Unknown ? Y : Y == Unknown ? X : X == Y ? X : Conflict;
  };
  std::vector<int> ModeIn(Fn.numBlocks(), Unknown);
  ModeIn[0] = A.InitialMode; // the launch programs the initial mode
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int B = 0; B < Fn.numBlocks(); ++B)
      for (int S : Fn.block(B).Succs) {
        auto It = A.EdgeMode.find({B, S});
        int M = It != A.EdgeMode.end()
                    ? (It->second >= 0 && It->second < NumModes
                           ? It->second
                           : Conflict)
                    : ModeIn[B];
        int J = join(ModeIn[S], M);
        if (J != ModeIn[S]) {
          ModeIn[S] = J;
          Changed = true;
        }
      }
  }
  // The statically resolved mode on an edge: Unknown for never-reached
  // edges, Conflict for path-dependent inherited modes.
  auto modeOf = [&](const CfgEdge &E) -> int {
    if (E.From == -1)
      return A.InitialMode;
    auto It = A.EdgeMode.find(E);
    if (It != A.EdgeMode.end())
      return It->second >= 0 && It->second < NumModes ? It->second
                                                      : Conflict;
    return ModeIn[E.From];
  };

  if (DeadlineSeconds.size() != Categories.size())
    R.error(PassName, "deadlines",
            std::to_string(DeadlineSeconds.size()) +
                " deadlines for " + std::to_string(Categories.size()) +
                " categories");

  // Recompute each category's cost in compensated arithmetic.
  KahanSum WeightedEnergy;
  std::set<CfgEdge> MissingReported;
  for (size_t C = 0; C < Categories.size(); ++C) {
    const Profile &P = Categories[C].Data;
    std::string CatLoc = "category " + std::to_string(C);
    if (P.NumModes != NumModes) {
      R.error(PassName, CatLoc,
              "profile has " + std::to_string(P.NumModes) +
                  " modes but the table has " + std::to_string(NumModes));
      continue;
    }
    KahanSum Time, Energy;
    // The launch: one traversal of the virtual entry edge into block 0.
    int LaunchMode = modeOf(Launch);
    Time.add(P.TimePerInvocation[0][LaunchMode]);
    Energy.add(P.EnergyPerInvocation[0][LaunchMode]);

    for (const auto &[E, G] : P.EdgeCounts) {
      if (!CfgEdges.count(E)) {
        R.error(PassName, edgeLoc(E), "profiled edge is not a CFG edge");
        continue;
      }
      int M = modeOf(E);
      if (M < 0) {
        // Conflict: the inherited mode differs per path, so the speed
        // after this edge is not a compile-time constant. Unknown on an
        // executed edge means the counts contradict reachability (the
        // cfg pass reports the root cause); both fail legality.
        if (MissingReported.insert(E).second)
          R.error(PassName, edgeLoc(E),
                  M == Conflict
                      ? "edge executed " + std::to_string(G) +
                            " times inherits a path-dependent mode"
                      : "edge executed " + std::to_string(G) +
                            " times is statically unreachable");
        continue;
      }
      double Cnt = static_cast<double>(G);
      Time.add(Cnt * P.TimePerInvocation[E.To][M]);
      Energy.add(Cnt * P.EnergyPerInvocation[E.To][M]);
    }

    // Transition costs on exactly the switching path pairs.
    for (const auto &[Path, D] : P.PathCounts) {
      auto [H, I, J] = Path;
      CfgEdge InEdge{H, I}, OutEdge{I, J};
      if (H != -1 && !CfgEdges.count(InEdge))
        continue; // reported by the cfg pass
      if (!CfgEdges.count(OutEdge))
        continue;
      int MIn = modeOf(InEdge);
      int MOut = -1;
      auto PIt = A.PathMode.find({H, I, J});
      if (PIt != A.PathMode.end() && PIt->second >= 0 &&
          PIt->second < NumModes)
        MOut = PIt->second;
      else
        MOut = modeOf(OutEdge);
      if (MIn < 0 || MOut < 0 || MIn == MOut)
        continue; // missing modes already reported; same mode is silent
      double Cnt = static_cast<double>(D);
      double Vi = Modes.level(MIn).Volts, Vj = Modes.level(MOut).Volts;
      Time.add(Cnt * Transitions.switchTime(Vi, Vj));
      Energy.add(Cnt * Transitions.switchEnergy(Vi, Vj));
    }

    Out.CategoryTimeSeconds.push_back(Time.value());
    Out.CategoryEnergyJoules.push_back(Energy.value());
    WeightedEnergy.add(Categories[C].Probability * Energy.value());

    if (C < DeadlineSeconds.size()) {
      double D = DeadlineSeconds[C];
      double Slack = Opts.Tolerance * std::fmax(1.0, std::fabs(D));
      if (Time.value() > D + Slack)
        R.error(PassName, CatLoc,
                "recomputed time " + std::to_string(Time.value() * 1e3) +
                    " ms exceeds the deadline " + std::to_string(D * 1e3) +
                    " ms");
    }
  }
  Out.EnergyJoules = WeightedEnergy.value();

  // Edge-filtering soundness: edges tied into one group by the filter
  // must share one mode — a filtered edge must not carry a mode switch.
  if (Opts.FilterThreshold > 0.0 && !Categories.empty()) {
    EdgeGroups G =
        computeEdgeGroups(Fn, Categories, Opts.FilterThreshold);
    std::vector<int> GroupMode(G.NumGroups, -2); // -2 = unseen
    std::vector<int> GroupRep(G.NumGroups, -1);
    for (size_t E = 0; E < G.Edges.size(); ++E) {
      int M = modeOf(G.Edges[E]);
      if (M < 0)
        continue;
      int Grp = G.GroupOf[E];
      if (GroupMode[Grp] == -2) {
        GroupMode[Grp] = M;
        GroupRep[Grp] = static_cast<int>(E);
      } else if (GroupMode[Grp] != M) {
        R.error(PassName, edgeLoc(G.Edges[E]),
                "filtered edge carries a mode switch: mode " +
                    std::to_string(M) + " differs from mode " +
                    std::to_string(GroupMode[Grp]) + " of its group (" +
                    edgeLoc(G.Edges[GroupRep[Grp]]) + ")");
      }
    }
  }

  // Objective cross-check against the solver's claim.
  if (Opts.ClaimedEnergyJoules >= 0.0) {
    double Claimed = Opts.ClaimedEnergyJoules;
    double Diff = std::fabs(Out.EnergyJoules - Claimed);
    double Slack = Opts.Tolerance * std::fmax(1.0, std::fabs(Claimed));
    if (Diff > Slack)
      R.error(PassName, "objective",
              "recomputed energy " + std::to_string(Out.EnergyJoules) +
                  " J differs from the claimed objective " +
                  std::to_string(Claimed) + " J by " +
                  std::to_string(Diff) + " J");
  }

  return Out;
}
