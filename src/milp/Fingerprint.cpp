//===- milp/Fingerprint.cpp - Content address of a DVS MILP instance ------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "milp/Fingerprint.h"

#include "support/Hash.h"

#include <algorithm>
#include <cassert>

using namespace cdvs;

namespace {

/// Folds the MILP-relevant profile content into \p H. Maps iterate in
/// key order, so the traversal is deterministic.
void hashProfileContent(HashBuilder &H, const Profile &P) {
  H.add(std::string("profile"));
  H.add(P.NumBlocks);
  H.add(P.NumModes);
  for (const auto &Row : P.TimePerInvocation) {
    H.add(static_cast<uint64_t>(Row.size()));
    for (double T : Row)
      H.add(T);
  }
  for (const auto &Row : P.EnergyPerInvocation) {
    H.add(static_cast<uint64_t>(Row.size()));
    for (double E : Row)
      H.add(E);
  }
  H.add(static_cast<uint64_t>(P.EdgeCounts.size()));
  for (const auto &[E, Count] : P.EdgeCounts) {
    H.add(E.From);
    H.add(E.To);
    H.add(static_cast<uint64_t>(Count));
  }
  H.add(static_cast<uint64_t>(P.PathCounts.size()));
  for (const auto &[Path, Count] : P.PathCounts) {
    auto [Hd, I, J] = Path;
    H.add(Hd);
    H.add(I);
    H.add(J);
    H.add(static_cast<uint64_t>(Count));
  }
}

} // namespace

std::string Fingerprint128::toHex() const {
  static const char Hex[] = "0123456789abcdef";
  std::string Out(32, '0');
  for (int I = 0; I < 16; ++I) {
    Out[15 - I] = Hex[(Hi >> (4 * I)) & 0xf];
    Out[31 - I] = Hex[(Lo >> (4 * I)) & 0xf];
  }
  return Out;
}

ErrorOr<Fingerprint128> Fingerprint128::parseHex(const std::string &Hex) {
  if (Hex.size() != 32)
    return makeError("fingerprint hex must be 32 characters, got " +
                     std::to_string(Hex.size()));
  Fingerprint128 F;
  for (size_t I = 0; I < 32; ++I) {
    char C = Hex[I];
    uint64_t Nibble;
    if (C >= '0' && C <= '9')
      Nibble = static_cast<uint64_t>(C - '0');
    else if (C >= 'a' && C <= 'f')
      Nibble = static_cast<uint64_t>(C - 'a' + 10);
    else if (C >= 'A' && C <= 'F')
      Nibble = static_cast<uint64_t>(C - 'A' + 10);
    else
      return makeError(std::string("fingerprint hex has non-hex byte '") +
                       C + "' at index " + std::to_string(I));
    uint64_t &Half = I < 16 ? F.Hi : F.Lo;
    Half = (Half << 4) | Nibble;
  }
  return F;
}

std::string cdvs::fingerprintProfile(const Profile &P) {
  HashBuilder H;
  hashProfileContent(H, P);
  return H.digest();
}

std::string cdvs::fingerprintDvsInstance(
    const std::vector<CategoryProfile> &Categories,
    const std::vector<double> &DeadlinesSeconds, const ModeTable &Modes,
    const TransitionModel &Transitions, double FilterThreshold,
    int InitialMode) {
  assert(!Categories.empty() && "fingerprint of an empty instance");
  assert((DeadlinesSeconds.size() == 1 ||
          DeadlinesSeconds.size() == Categories.size()) &&
         "one shared deadline or one per category");

  HashBuilder Root;
  Root.add(std::string("cdvs-dvs-instance-v1"));

  // Voltage set in the table's canonical ascending-frequency order.
  Root.add(static_cast<uint64_t>(Modes.size()));
  for (const VoltageLevel &L : Modes.levels()) {
    Root.add(L.Volts);
    Root.add(L.Hertz);
  }

  // The transition model enters the MILP only through CE and CT.
  Root.add(Transitions.energyConstant());
  Root.add(Transitions.timeConstant());

  Root.add(FilterThreshold);
  Root.add(InitialMode);

  // Categories: digest each (profile, weight, deadline) and fold the
  // digests in sorted order — the weighted-sum objective and per-category
  // deadline rows are order-free.
  std::vector<std::string> Digests;
  Digests.reserve(Categories.size());
  for (size_t C = 0; C < Categories.size(); ++C) {
    HashBuilder Sub;
    hashProfileContent(Sub, Categories[C].Data);
    Sub.add(Categories[C].Probability);
    Sub.add(DeadlinesSeconds.size() == 1 ? DeadlinesSeconds[0]
                                         : DeadlinesSeconds[C]);
    Digests.push_back(Sub.digest());
  }
  std::sort(Digests.begin(), Digests.end());
  Root.add(static_cast<uint64_t>(Digests.size()));
  for (const std::string &D : Digests)
    Root.add(D);

  return Root.digest();
}
