//===- milp/Presolve.h - Certified MILP presolve -----------------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, exactness-preserving MILP presolve. Callers designate
/// variables whose optimal value is known in advance (for the DVS
/// instance: mode binaries of structurally dead edge groups, and the
/// entry group pinned to the initial mode); the presolve additionally
/// picks up any variable whose bounds already coincide, propagates
/// fixings through equality rows with a single free variable, folds
/// fixed terms into row right-hand sides, and drops rows with no free
/// terms after checking they are satisfied.
///
/// Every reduction is recorded in a ReductionCertificate: an explicit
/// old-variable -> (kept index | fixed value) and old-row -> (kept
/// index | dropped) mapping plus the objective constant absorbed by
/// the fixings. verify::checkReductionCertificate replays the mapping
/// against the ORIGINAL problem, so a buggy presolve cannot silently
/// change the optimum: the expanded solution must be feasible for the
/// original rows/bounds and match its objective exactly (up to the
/// solver tolerance).
///
/// The presolve deliberately performs no inequality bound tightening:
/// rewriting bounds of surviving variables could steer the simplex to
/// a different vertex of an alternative-optima face, and the DVS
/// pipeline promises byte-identical schedules with presolve on or off.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_MILP_PRESOLVE_H
#define CDVS_MILP_PRESOLVE_H

#include "lp/LpProblem.h"

#include <string>
#include <vector>

namespace cdvs {

/// Mapping from an original problem onto its presolve-reduced form.
struct ReductionCertificate {
  int OrigVars = 0;
  int OrigRows = 0;
  int ReducedVars = 0;
  int ReducedRows = 0;

  /// Original variable -> index in the reduced problem, or -1 when the
  /// variable was eliminated (then FixedValue holds its value).
  std::vector<int> VarMap;
  std::vector<double> FixedValue;

  /// Original row -> index in the reduced problem, or -1 when dropped.
  std::vector<int> RowMap;

  /// Objective contribution of the eliminated variables:
  /// original objective == reduced objective + ObjectiveOffset.
  double ObjectiveOffset = 0.0;

  int varsFixed() const { return OrigVars - ReducedVars; }
  int rowsDropped() const { return OrigRows - ReducedRows; }

  /// Expands a reduced-space point back to the original variable space.
  std::vector<double> expandSolution(const std::vector<double> &ReducedX) const;
};

/// Outcome of a presolve run.
struct PresolveResult {
  LpProblem Reduced;
  std::vector<int> IntegerVars; ///< Reduced-space indices of integer vars.
  ReductionCertificate Cert;

  /// Set when the fixings contradict a row or a bound; the original
  /// problem (under the requested fixings) is infeasible and Reduced is
  /// meaningless.
  bool Infeasible = false;
  std::string InfeasibleReason;
};

/// Options controlling the presolve.
struct PresolveOptions {
  /// Feasibility slack when deciding that a fully-fixed row is
  /// satisfied and that a fixing respects the variable bounds.
  double FeasTol = 1e-9;
  /// Propagate fixings through single-free-variable equality rows.
  bool PropagateEqualities = true;
};

/// Presolves \p P. \p IntegerVars lists integer variables in original
/// space; \p FixedVars / \p FixedValues designate caller-proven fixings
/// (parallel vectors).
PresolveResult presolve(const LpProblem &P, const std::vector<int> &IntegerVars,
                        const std::vector<int> &FixedVars,
                        const std::vector<double> &FixedValues,
                        const PresolveOptions &Opts = {});

} // namespace cdvs

#endif // CDVS_MILP_PRESOLVE_H
