//===- milp/Fingerprint.h - Content address of a DVS MILP instance -*- C++ -*-//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A canonical 128-bit fingerprint of a normalized DVS mode-assignment
/// MILP instance, used as the content address for the service result
/// cache (service/ResultCache.h): two requests with the same fingerprint
/// describe the same optimization problem and may share one solved
/// schedule.
///
/// The fingerprint covers everything that determines the solved MILP —
/// per-mode block costs (Tjm, Ejm), CFG edge counts Gij and local-path
/// counts Dhij, category weights, per-category deadlines, the voltage/
/// frequency table, the regulator's transition constants CE and CT, the
/// edge-filter threshold, and the initial mode — and nothing that does
/// not (function names, profile bookkeeping like single-mode totals,
/// solver knobs that cannot change the optimum).
///
/// Normalizations make equivalent-but-reordered inputs collide on
/// purpose:
///  * input categories are hashed individually (profile + weight +
///    deadline) and folded in sorted digest order, since the weighted
///    objective is a commutative sum;
///  * the voltage set is hashed in the ModeTable's canonical ascending-
///    frequency order, so shuffled level lists fingerprint identically.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_MILP_FINGERPRINT_H
#define CDVS_MILP_FINGERPRINT_H

#include "power/ModeTable.h"
#include "power/TransitionModel.h"
#include "profile/Profile.h"

#include <string>
#include <vector>

namespace cdvs {

/// \returns the 32-hex-char content address of the DVS MILP instance
/// defined by profiled \p Categories under \p DeadlinesSeconds (one
/// shared deadline, or one per category), the \p Modes table, the
/// \p Transitions cost model, the Section 5.2 edge-\p FilterThreshold,
/// and the pre-launch \p InitialMode.
std::string fingerprintDvsInstance(
    const std::vector<CategoryProfile> &Categories,
    const std::vector<double> &DeadlinesSeconds, const ModeTable &Modes,
    const TransitionModel &Transitions, double FilterThreshold,
    int InitialMode);

/// Fingerprint of one profile's MILP-relevant content (block costs, edge
/// and path counts). Also the key of the service's profile cache.
std::string fingerprintProfile(const Profile &P);

} // namespace cdvs

#endif // CDVS_MILP_FINGERPRINT_H
