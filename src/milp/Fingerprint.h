//===- milp/Fingerprint.h - Content address of a DVS MILP instance -*- C++ -*-//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A canonical 128-bit fingerprint of a normalized DVS mode-assignment
/// MILP instance, used as the content address for the service result
/// cache (service/ResultCache.h): two requests with the same fingerprint
/// describe the same optimization problem and may share one solved
/// schedule.
///
/// The fingerprint covers everything that determines the solved MILP —
/// per-mode block costs (Tjm, Ejm), CFG edge counts Gij and local-path
/// counts Dhij, category weights, per-category deadlines, the voltage/
/// frequency table, the regulator's transition constants CE and CT, the
/// edge-filter threshold, and the initial mode — and nothing that does
/// not (function names, profile bookkeeping like single-mode totals,
/// solver knobs that cannot change the optimum).
///
/// Normalizations make equivalent-but-reordered inputs collide on
/// purpose:
///  * input categories are hashed individually (profile + weight +
///    deadline) and folded in sorted digest order, since the weighted
///    objective is a commutative sum;
///  * the voltage set is hashed in the ModeTable's canonical ascending-
///    frequency order, so shuffled level lists fingerprint identically.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_MILP_FINGERPRINT_H
#define CDVS_MILP_FINGERPRINT_H

#include "power/ModeTable.h"
#include "power/TransitionModel.h"
#include "profile/Profile.h"
#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cdvs {

/// The 128-bit instance hash as a value type. The string digests that
/// key the result cache are exactly the toHex() rendering of one of
/// these; the cluster layer (src/cluster) hashes ring positions and
/// routes on the numeric halves, and logs/test fixtures round-trip
/// through the hex form instead of reformatting the halves ad hoc.
struct Fingerprint128 {
  uint64_t Hi = 0; ///< first 16 hex characters
  uint64_t Lo = 0; ///< last 16 hex characters

  /// \returns the canonical 32-lowercase-hex rendering, identical to
  /// HashBuilder::digest() of the same content.
  std::string toHex() const;

  /// Parses a 32-hex-character digest (case-insensitive). Errors on any
  /// other length or a non-hex character.
  static ErrorOr<Fingerprint128> parseHex(const std::string &Hex);

  bool operator==(const Fingerprint128 &O) const {
    return Hi == O.Hi && Lo == O.Lo;
  }
  bool operator!=(const Fingerprint128 &O) const { return !(*this == O); }
  bool operator<(const Fingerprint128 &O) const {
    return Hi != O.Hi ? Hi < O.Hi : Lo < O.Lo;
  }
};

/// \returns the 32-hex-char content address of the DVS MILP instance
/// defined by profiled \p Categories under \p DeadlinesSeconds (one
/// shared deadline, or one per category), the \p Modes table, the
/// \p Transitions cost model, the Section 5.2 edge-\p FilterThreshold,
/// and the pre-launch \p InitialMode.
std::string fingerprintDvsInstance(
    const std::vector<CategoryProfile> &Categories,
    const std::vector<double> &DeadlinesSeconds, const ModeTable &Modes,
    const TransitionModel &Transitions, double FilterThreshold,
    int InitialMode);

/// Fingerprint of one profile's MILP-relevant content (block costs, edge
/// and path counts). Also the key of the service's profile cache.
std::string fingerprintProfile(const Profile &P);

} // namespace cdvs

#endif // CDVS_MILP_FINGERPRINT_H
