//===- milp/MilpSolver.cpp - Branch-and-bound MILP solver ----------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "milp/MilpSolver.h"

#include "support/Error.h"

#include <algorithm>
#include <chrono>
#include <cmath>

using namespace cdvs;

const char *cdvs::milpStatusName(MilpStatus Status) {
  switch (Status) {
  case MilpStatus::Optimal:
    return "optimal";
  case MilpStatus::Feasible:
    return "feasible";
  case MilpStatus::Infeasible:
    return "infeasible";
  case MilpStatus::Unbounded:
    return "unbounded";
  case MilpStatus::Limit:
    return "limit";
  }
  cdvsUnreachable("bad MilpStatus");
}

struct MilpSolver::SearchState {
  double Incumbent = std::numeric_limits<double>::infinity();
  std::vector<double> BestX;
  long Nodes = 0;
  long LpIterations = 0;
  bool Truncated = false;
  bool RootUnbounded = false;
  double RootBound = 0.0;
  std::chrono::steady_clock::time_point Deadline;
};

MilpSolver::MilpSolver(LpProblem Problem, std::vector<int> IntegerVars,
                       MilpOptions Opts)
    : Problem(std::move(Problem)), IntegerVars(std::move(IntegerVars)),
      Opts(Opts) {
  GroupOfVar.assign(this->Problem.numVariables(), -1);
}

void MilpSolver::addSos1Group(std::vector<int> Vars) {
  int Group = static_cast<int>(Sos1Groups.size());
  for (int V : Vars) {
    assert(V >= 0 && V < Problem.numVariables() && "unknown variable");
    assert(GroupOfVar[V] == -1 && "variable in two SOS1 groups");
    GroupOfVar[V] = Group;
  }
  Sos1Groups.push_back(std::move(Vars));
}

/// Distance of \p X from the nearest integer.
static double fractionality(double X) {
  return std::fabs(X - std::round(X));
}

int MilpSolver::pickBranchVariable(const std::vector<double> &X) const {
  // Prefer SOS1-group branching: pick the group with the largest total
  // fractionality, then its most fractional member.
  int BestVar = -1;
  double BestGroupScore = 0.0;
  for (const auto &Group : Sos1Groups) {
    double Score = 0.0;
    int GroupVar = -1;
    double GroupVarFrac = 0.0;
    for (int V : Group) {
      double F = fractionality(X[V]);
      Score += F;
      if (F > GroupVarFrac) {
        GroupVarFrac = F;
        GroupVar = V;
      }
    }
    if (Score > BestGroupScore + Opts.IntTol && GroupVarFrac > Opts.IntTol) {
      BestGroupScore = Score;
      BestVar = GroupVar;
    }
  }
  if (BestVar >= 0)
    return BestVar;

  // Fall back to the most fractional integer variable overall.
  double BestFrac = Opts.IntTol;
  for (int V : IntegerVars) {
    double F = fractionality(X[V]);
    if (F > BestFrac) {
      BestFrac = F;
      BestVar = V;
    }
  }
  return BestVar;
}

bool MilpSolver::tryRounding(SearchState &S,
                             const std::vector<double> &Relaxed) {
  // Save bounds we are about to clobber.
  std::vector<std::pair<int, std::pair<double, double>>> Saved;
  auto fixVar = [&](int V, double Value) {
    Saved.push_back({V, {Problem.lowerBound(V), Problem.upperBound(V)}});
    Problem.setBounds(V, Value, Value);
  };

  // Snap each SOS1 group to its largest LP value.
  std::vector<bool> Handled(Problem.numVariables(), false);
  for (const auto &Group : Sos1Groups) {
    int Arg = Group.front();
    for (int V : Group)
      if (Relaxed[V] > Relaxed[Arg])
        Arg = V;
    for (int V : Group) {
      // Respect pre-existing fixings from the current branch.
      if (Problem.lowerBound(V) == Problem.upperBound(V)) {
        Handled[V] = true;
        continue;
      }
      fixVar(V, V == Arg ? 1.0 : 0.0);
      Handled[V] = true;
    }
  }
  for (int V : IntegerVars) {
    if (Handled[V] || Problem.lowerBound(V) == Problem.upperBound(V))
      continue;
    double R = std::round(Relaxed[V]);
    R = std::min(std::max(R, Problem.lowerBound(V)),
                 Problem.upperBound(V));
    fixVar(V, R);
  }

  LpSolution R = solveLp(Problem, Opts.LpOpts);
  S.LpIterations += R.Iterations;
  bool Improved = false;
  if (R.Status == LpStatus::Optimal &&
      R.Objective < S.Incumbent - Opts.AbsGap) {
    S.Incumbent = R.Objective;
    S.BestX = R.X;
    Improved = true;
  }

  for (auto It = Saved.rbegin(); It != Saved.rend(); ++It)
    Problem.setBounds(It->first, It->second.first, It->second.second);
  return Improved;
}

void MilpSolver::dfs(SearchState &S, int Depth) {
  if (S.Truncated)
    return;
  if (S.Nodes >= Opts.MaxNodes ||
      std::chrono::steady_clock::now() > S.Deadline) {
    S.Truncated = true;
    return;
  }

  LpSolution R = solveLp(Problem, Opts.LpOpts);
  ++S.Nodes;
  S.LpIterations += R.Iterations;

  if (R.Status == LpStatus::Infeasible)
    return;
  if (R.Status == LpStatus::Unbounded) {
    if (Depth == 0)
      S.RootUnbounded = true;
    // An unbounded node with integer restrictions still pending cannot be
    // pruned soundly in general; for our formulations (bounded binaries,
    // nonnegative costs) this never happens below the root.
    return;
  }
  if (R.Status == LpStatus::IterationLimit) {
    S.Truncated = true;
    return;
  }

  if (Depth == 0) {
    S.RootBound = R.Objective;
    if (Opts.UseRounding)
      tryRounding(S, R.X);
  }

  if (R.Objective >= S.Incumbent - Opts.AbsGap)
    return; // Prune: cannot beat the incumbent.

  int BranchVar = pickBranchVariable(R.X);
  if (BranchVar < 0) {
    // Integer feasible: new incumbent.
    S.Incumbent = R.Objective;
    S.BestX = R.X;
    return;
  }

  // Periodic rounding deeper in the tree keeps the incumbent fresh.
  if (Opts.UseRounding && Depth > 0 && S.Nodes % 512 == 0)
    tryRounding(S, R.X);

  double Value = R.X[BranchVar];
  double SavedLo = Problem.lowerBound(BranchVar);
  double SavedHi = Problem.upperBound(BranchVar);
  bool IsBinary = SavedLo >= -Opts.IntTol && SavedHi <= 1.0 + Opts.IntTol;

  if (IsBinary) {
    // Explore the likelier side first.
    double First = Value >= 0.5 ? 1.0 : 0.0;
    for (double Side : {First, 1.0 - First}) {
      Problem.setBounds(BranchVar, Side, Side);
      dfs(S, Depth + 1);
      Problem.setBounds(BranchVar, SavedLo, SavedHi);
      if (S.Truncated)
        return;
    }
    return;
  }

  // General integer: floor/ceiling split.
  double Floor = std::floor(Value);
  Problem.setBounds(BranchVar, SavedLo, Floor);
  dfs(S, Depth + 1);
  Problem.setBounds(BranchVar, SavedLo, SavedHi);
  if (S.Truncated)
    return;
  Problem.setBounds(BranchVar, Floor + 1.0, SavedHi);
  dfs(S, Depth + 1);
  Problem.setBounds(BranchVar, SavedLo, SavedHi);
}

MilpSolution MilpSolver::solve() {
  SearchState S;
  S.Deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(Opts.TimeLimitSec));

  dfs(S, 0);

  MilpSolution Sol;
  Sol.Nodes = S.Nodes;
  Sol.LpIterations = S.LpIterations;
  Sol.RootBound = S.RootBound;
  if (S.RootUnbounded) {
    Sol.Status = MilpStatus::Unbounded;
    return Sol;
  }
  bool HasIncumbent = !S.BestX.empty();
  if (HasIncumbent) {
    Sol.Status = S.Truncated ? MilpStatus::Feasible : MilpStatus::Optimal;
    Sol.Objective = S.Incumbent;
    Sol.X = S.BestX;
  } else {
    Sol.Status = S.Truncated ? MilpStatus::Limit : MilpStatus::Infeasible;
  }
  return Sol;
}
