//===- milp/MilpSolver.cpp - Branch-and-bound MILP solver ----------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
//
// Parallel explicit-node-list branch-and-bound.
//
// Each worker owns a mutex-guarded deque of nodes: it pushes/pops children
// at the back (depth-first, so the engine's basis is almost always the
// just-solved parent's) and victims are stolen from the front (the
// shallowest, largest subtrees — the classic B&B stealing policy). A node
// is just a bound-change delta chained to its parent, so the live tree
// costs O(depth) per branch path and siblings share their prefix.
//
// Per worker there is one persistent SimplexEngine; moving from the
// previously solved node to the next applies the bound diff between the
// two and re-solves warm (dual simplex repair from the held basis). The
// incumbent is shared through an atomic mirror for lock-free pruning
// reads, with a mutex protecting the authoritative value and its X.
//
// The search never prunes against anything but a proven incumbent, so the
// final objective equals the serial solver's within AbsGap regardless of
// thread count or exploration order.
//
//===----------------------------------------------------------------------===//

#include "milp/MilpSolver.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Clock.h"
#include "support/Error.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>
#include <mutex>
#include <thread>

using namespace cdvs;

const char *cdvs::milpStatusName(MilpStatus Status) {
  switch (Status) {
  case MilpStatus::Optimal:
    return "optimal";
  case MilpStatus::Feasible:
    return "feasible";
  case MilpStatus::Infeasible:
    return "infeasible";
  case MilpStatus::Unbounded:
    return "unbounded";
  case MilpStatus::Limit:
    return "limit";
  }
  cdvsUnreachable("bad MilpStatus");
}

/// Deeper nodes re-run the rounding heuristic after this many nodes have
/// been processed by the *same worker* since its last rounding attempt.
/// (A global node counter would almost never hit an exact multiple per
/// worker once several workers interleave increments.)
static constexpr long RoundingInterval = 512;

/// One tree node: a single bound change relative to the parent. The root
/// has Var == -1 and carries no change.
struct MilpSolver::Node {
  std::shared_ptr<const Node> Parent;
  int Var = -1;
  double Lo = 0.0, Hi = 0.0;
  /// Parent's LP relaxation objective: a valid lower bound for the whole
  /// subtree, used for best-bound pruning before the node's LP is solved.
  double Bound = -std::numeric_limits<double>::infinity();
  int Depth = 0;
};

struct MilpSolver::Worker {
  /// Lazily built so workers that never receive a node (tiny trees)
  /// never pay for a problem copy or tableau.
  std::unique_ptr<SimplexEngine> Engine;
  /// Bounds currently applied to Engine, indexed by variable.
  std::vector<double> CurLo, CurHi;
  /// Scratch for resolving a node's absolute bounds.
  std::vector<double> NewLo, NewHi;
  std::vector<long> Mark; // epoch marks for delta-chain resolution
  long Epoch = 0;
  long SinceRounding = 0;
  long LpIterations = 0;
  long ColdLps = 0; // cold solves issued outside the engine (WarmStart off)
  long Pruned = 0;  // best-bound prunes (pre-LP and post-LP)
  int Index = 0;    // this worker's slot in Shared::Queues
};

struct MilpSolver::Shared {
  std::deque<Worker> Workers; // deque: Worker holds an engine, keep stable
  /// The node deques, one per worker, with front-stealing (see
  /// support/ThreadPool.h). Built once NumWorkers is known.
  std::unique_ptr<WorkStealingDeques<std::shared_ptr<Node>>> Queues;
  std::atomic<long> NodesSolved{0};
  std::atomic<long> IncumbentUpdates{0};
  /// Nodes pushed but not yet fully processed; 0 means the tree is
  /// exhausted and idle workers may exit.
  std::atomic<long> Outstanding{0};
  std::atomic<bool> Truncated{false};
  std::atomic<bool> RootUnbounded{false};
  /// Lock-free mirror of IncumbentVal for pruning reads.
  std::atomic<double> Incumbent{std::numeric_limits<double>::infinity()};
  std::mutex IncM;
  double IncumbentVal = std::numeric_limits<double>::infinity();
  std::vector<double> BestX; // guarded by IncM
  double RootBound = 0.0;    // written only by the root node's worker
  std::chrono::steady_clock::time_point Deadline;
  int NumWorkers = 1;
};

MilpSolver::MilpSolver(LpProblem Problem, std::vector<int> IntegerVars,
                       MilpOptions Opts)
    : Problem(std::move(Problem)), IntegerVars(std::move(IntegerVars)),
      Opts(Opts) {
  GroupOfVar.assign(this->Problem.numVariables(), -1);
}

void MilpSolver::addSos1Group(std::vector<int> Vars) {
  int Group = static_cast<int>(Sos1Groups.size());
  for (int V : Vars) {
    assert(V >= 0 && V < Problem.numVariables() && "unknown variable");
    assert(GroupOfVar[V] == -1 && "variable in two SOS1 groups");
    GroupOfVar[V] = Group;
  }
  Sos1Groups.push_back(std::move(Vars));
}

/// Distance of \p X from the nearest integer.
static double fractionality(double X) {
  return std::fabs(X - std::round(X));
}

int MilpSolver::pickBranchVariable(const std::vector<double> &X) const {
  // Prefer SOS1-group branching: pick the group with the largest total
  // fractionality, then its most fractional member.
  int BestVar = -1;
  double BestGroupScore = 0.0;
  for (const auto &Group : Sos1Groups) {
    double Score = 0.0;
    int GroupVar = -1;
    double GroupVarFrac = 0.0;
    for (int V : Group) {
      double F = fractionality(X[V]);
      Score += F;
      if (F > GroupVarFrac) {
        GroupVarFrac = F;
        GroupVar = V;
      }
    }
    if (Score > BestGroupScore + Opts.IntTol && GroupVarFrac > Opts.IntTol) {
      BestGroupScore = Score;
      BestVar = GroupVar;
    }
  }
  if (BestVar >= 0)
    return BestVar;

  // Fall back to the most fractional integer variable overall.
  double BestFrac = Opts.IntTol;
  for (int V : IntegerVars) {
    double F = fractionality(X[V]);
    if (F > BestFrac) {
      BestFrac = F;
      BestVar = V;
    }
  }
  return BestVar;
}

/// Solves a worker's LP at its currently applied bounds: warm through
/// the engine, or cold when warm starting is disabled (ablation path).
static LpSolution solveNodeLpImpl(SimplexEngine &Engine, bool WarmStart,
                                  const SimplexOptions &LpOpts,
                                  long &ColdLps) {
  if (WarmStart)
    return Engine.solve();
  ++ColdLps;
  return solveLp(Engine.problem(), LpOpts);
}

bool MilpSolver::tryRounding(Shared &S, Worker &W,
                             const std::vector<double> &Relaxed) {
  // Save bounds we are about to clobber.
  std::vector<std::pair<int, std::pair<double, double>>> Saved;
  auto fixVar = [&](int V, double Value) {
    Saved.push_back({V, {W.CurLo[V], W.CurHi[V]}});
    W.Engine->setBounds(V, Value, Value);
    W.CurLo[V] = Value;
    W.CurHi[V] = Value;
  };

  // Snap each SOS1 group to its largest LP value.
  std::vector<bool> Handled(Problem.numVariables(), false);
  for (const auto &Group : Sos1Groups) {
    int Arg = Group.front();
    for (int V : Group)
      if (Relaxed[V] > Relaxed[Arg])
        Arg = V;
    for (int V : Group) {
      // Respect pre-existing fixings from the current branch.
      if (W.CurLo[V] == W.CurHi[V]) {
        Handled[V] = true;
        continue;
      }
      fixVar(V, V == Arg ? 1.0 : 0.0);
      Handled[V] = true;
    }
  }
  for (int V : IntegerVars) {
    if (Handled[V] || W.CurLo[V] == W.CurHi[V])
      continue;
    double R = std::round(Relaxed[V]);
    R = std::min(std::max(R, W.CurLo[V]), W.CurHi[V]);
    fixVar(V, R);
  }

  LpSolution R = solveNodeLpImpl(*W.Engine, Opts.WarmStart, Opts.LpOpts,
                                 W.ColdLps);
  W.LpIterations += R.Iterations;
  bool Improved = false;
  if (R.Status == LpStatus::Optimal) {
    std::lock_guard<std::mutex> Lock(S.IncM);
    if (R.Objective < S.IncumbentVal - Opts.AbsGap) {
      S.IncumbentVal = R.Objective;
      S.BestX = R.X;
      S.Incumbent.store(R.Objective);
      Improved = true;
    }
  }
  if (Improved) {
    S.IncumbentUpdates.fetch_add(1, std::memory_order_relaxed);
    obs::traceInstant("incumbent", "milp", "objective", R.Objective);
  }

  for (auto It = Saved.rbegin(); It != Saved.rend(); ++It) {
    W.Engine->setBounds(It->first, It->second.first, It->second.second);
    W.CurLo[It->first] = It->second.first;
    W.CurHi[It->first] = It->second.second;
  }
  return Improved;
}

void MilpSolver::processNode(Shared &S, Worker &W,
                             const std::shared_ptr<Node> &N) {
  // Best-bound prune on the parent relaxation before any LP work.
  if (N->Bound >= S.Incumbent.load() - Opts.AbsGap) {
    ++W.Pruned;
    return;
  }
  if (S.NodesSolved.load() >= Opts.MaxNodes ||
      std::chrono::steady_clock::now() > S.Deadline) {
    S.Truncated.store(true);
    return;
  }

  if (!W.Engine) {
    W.Engine = std::make_unique<SimplexEngine>(Problem, Opts.LpOpts);
    int N2 = Problem.numVariables();
    W.CurLo.resize(N2);
    W.CurHi.resize(N2);
    for (int V = 0; V < N2; ++V) {
      W.CurLo[V] = Problem.lowerBound(V);
      W.CurHi[V] = Problem.upperBound(V);
    }
    W.NewLo = W.CurLo;
    W.NewHi = W.CurHi;
    W.Mark.assign(N2, 0);
  }

  // Resolve the node's absolute bounds: root bounds overlaid with the
  // delta chain, child-most change winning. Only the integer-variable
  // entries of NewLo/NewHi are ever read.
  ++W.Epoch;
  for (int V : IntegerVars) {
    W.NewLo[V] = Problem.lowerBound(V);
    W.NewHi[V] = Problem.upperBound(V);
  }
  for (const Node *A = N.get(); A && A->Var >= 0; A = A->Parent.get()) {
    if (W.Mark[A->Var] != W.Epoch) {
      W.Mark[A->Var] = W.Epoch;
      W.NewLo[A->Var] = A->Lo;
      W.NewHi[A->Var] = A->Hi;
    }
  }
  // Only integer variables ever carry branch or rounding fixings, so the
  // diff against the engine's applied bounds is confined to them.
  for (int V : IntegerVars) {
    if (W.NewLo[V] != W.CurLo[V] || W.NewHi[V] != W.CurHi[V]) {
      W.Engine->setBounds(V, W.NewLo[V], W.NewHi[V]);
      W.CurLo[V] = W.NewLo[V];
      W.CurHi[V] = W.NewHi[V];
    }
  }

  LpSolution R = solveNodeLpImpl(*W.Engine, Opts.WarmStart, Opts.LpOpts,
                                 W.ColdLps);
  S.NodesSolved.fetch_add(1);
  W.LpIterations += R.Iterations;

  if (R.Status == LpStatus::Infeasible)
    return;
  if (R.Status == LpStatus::Unbounded) {
    if (N->Depth == 0)
      S.RootUnbounded.store(true);
    // An unbounded node with integer restrictions still pending cannot be
    // pruned soundly in general; for our formulations (bounded binaries,
    // nonnegative costs) this never happens below the root.
    return;
  }
  if (R.Status == LpStatus::IterationLimit) {
    S.Truncated.store(true);
    return;
  }

  if (N->Depth == 0) {
    S.RootBound = R.Objective;
    if (Opts.UseRounding)
      tryRounding(S, W, R.X);
  }

  if (R.Objective >= S.Incumbent.load() - Opts.AbsGap) {
    ++W.Pruned;
    return; // Prune: cannot beat the incumbent.
  }

  int BranchVar = pickBranchVariable(R.X);
  if (BranchVar < 0) {
    // Integer feasible: candidate incumbent.
    bool Improved = false;
    {
      std::lock_guard<std::mutex> Lock(S.IncM);
      if (R.Objective < S.IncumbentVal - Opts.AbsGap) {
        S.IncumbentVal = R.Objective;
        S.BestX = R.X;
        S.Incumbent.store(R.Objective);
        Improved = true;
      }
    }
    if (Improved) {
      S.IncumbentUpdates.fetch_add(1, std::memory_order_relaxed);
      obs::traceInstant("incumbent", "milp", "objective", R.Objective);
    }
    return;
  }

  // Periodic rounding deeper in the tree keeps the incumbent fresh.
  if (Opts.UseRounding && N->Depth > 0 &&
      ++W.SinceRounding >= RoundingInterval) {
    W.SinceRounding = 0;
    tryRounding(S, W, R.X);
  }

  double Value = R.X[BranchVar];
  double SavedLo = W.CurLo[BranchVar];
  double SavedHi = W.CurHi[BranchVar];
  bool IsBinary = SavedLo >= -Opts.IntTol && SavedHi <= 1.0 + Opts.IntTol;

  auto makeChild = [&](double Lo, double Hi) {
    auto C = std::make_shared<Node>();
    C->Parent = N;
    C->Var = BranchVar;
    C->Lo = Lo;
    C->Hi = Hi;
    C->Bound = R.Objective;
    C->Depth = N->Depth + 1;
    return C;
  };

  std::shared_ptr<Node> First, Second;
  if (IsBinary) {
    // The likelier side is explored first: it is pushed last so the
    // depth-first pop-from-back takes it next, while the other side
    // waits at the front where idle workers steal.
    double Likely = Value >= 0.5 ? 1.0 : 0.0;
    First = makeChild(1.0 - Likely, 1.0 - Likely);
    Second = makeChild(Likely, Likely);
  } else {
    // General integer: floor/ceiling split, floor side first (as the
    // serial solver did).
    double Floor = std::floor(Value);
    First = makeChild(Floor + 1.0, SavedHi);
    Second = makeChild(SavedLo, Floor);
  }

  S.Outstanding.fetch_add(2);
  S.Queues->push(W.Index, std::move(First));
  S.Queues->push(W.Index, std::move(Second));
}

void MilpSolver::workerLoop(Shared &S, int WorkerIndex) {
  Worker &W = S.Workers[WorkerIndex];
  for (;;) {
    if (S.Truncated.load())
      return;

    // Own newest node first (depth-first), else steal a victim's
    // shallowest; the deques count the steal traffic for us.
    std::shared_ptr<Node> N;
    if (!S.Queues->tryPop(WorkerIndex, N)) {
      if (S.Outstanding.load() == 0)
        return;
      std::this_thread::sleep_for(std::chrono::microseconds(20));
      continue;
    }

    processNode(S, W, N);
    S.Outstanding.fetch_sub(1);
  }
}

/// Folds one finished solve into the process-wide registry. Instrument
/// references are resolved once and cached (static locals), so the per-
/// solve cost is a handful of relaxed atomic adds.
static void exportSolveMetrics(const MilpSolution &Sol) {
  using namespace obs;
  static Counter &Solves = metrics().counter(
      "cdvs_milp_solves_total", "Branch-and-bound searches run");
  static Counter &Nodes = metrics().counter(
      "cdvs_milp_nodes_total", "B&B nodes whose LP relaxation was solved");
  static Counter &Pruned = metrics().counter(
      "cdvs_milp_nodes_pruned_total",
      "B&B nodes discarded by best-bound pruning");
  static Counter &Stolen = metrics().counter(
      "cdvs_milp_nodes_stolen_total",
      "B&B nodes taken from another worker's deque");
  static Counter &LpIters = metrics().counter(
      "cdvs_milp_lp_iterations_total",
      "Simplex iterations across all node LPs");
  static Counter &Warm = metrics().counter(
      "cdvs_milp_warm_lps_total",
      "Node LPs re-solved warm from a held basis");
  static Counter &Cold = metrics().counter(
      "cdvs_milp_cold_lps_total",
      "Node LPs solved through the cold two-phase path");
  static Counter &Pivots = metrics().counter(
      "cdvs_milp_lp_pivots_total",
      "Simplex pivots across the workers' engines, refactorization "
      "included");
  static Counter &Incumbents = metrics().counter(
      "cdvs_milp_incumbent_updates_total",
      "Improving integer-feasible points found");
  static Histogram &SolveLatency = metrics().histogram(
      "cdvs_milp_solve_seconds", "Wall time of one B&B search",
      latencyBucketsSeconds());
  Solves.inc();
  Nodes.inc(static_cast<double>(Sol.Nodes));
  Pruned.inc(static_cast<double>(Sol.Pruned));
  Stolen.inc(static_cast<double>(Sol.Steals));
  LpIters.inc(static_cast<double>(Sol.LpIterations));
  Warm.inc(static_cast<double>(Sol.WarmLps));
  Cold.inc(static_cast<double>(Sol.ColdLps));
  Pivots.inc(static_cast<double>(Sol.LpPivots));
  Incumbents.inc(static_cast<double>(Sol.IncumbentUpdates));
  SolveLatency.observe(Sol.SolveSeconds);
}

MilpSolution MilpSolver::solve() {
  obs::TraceSpan Span("milp_solve", "milp");
  uint64_t T0 = monotonicNanos();
  Shared S;
  S.Deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(Opts.TimeLimitSec));

  // A tree over k integer variables cannot keep more than ~k workers
  // busy; capping also spares thread spawns on the many tiny MILPs the
  // schedulers produce.
  int Threads = resolveThreads(Opts.NumThreads);
  Threads = std::min(
      Threads, 1 + static_cast<int>(IntegerVars.size()) / 4);
  S.NumWorkers = std::max(1, Threads);
  S.Queues = std::make_unique<WorkStealingDeques<std::shared_ptr<Node>>>(
      S.NumWorkers);
  for (int W = 0; W < S.NumWorkers; ++W) {
    S.Workers.emplace_back();
    S.Workers.back().Index = W;
  }

  auto Root = std::make_shared<Node>();
  S.Queues->push(0, std::move(Root));
  S.Outstanding.store(1);

  runOnWorkers(S.NumWorkers, [&](int W) { workerLoop(S, W); });

  MilpSolution Sol;
  Sol.Nodes = S.NodesSolved.load();
  for (Worker &W : S.Workers) {
    Sol.LpIterations += W.LpIterations;
    Sol.ColdLps += W.ColdLps;
    Sol.Pruned += W.Pruned;
    if (W.Engine) {
      Sol.WarmLps += W.Engine->warmSolves();
      Sol.ColdLps += W.Engine->coldSolves();
      Sol.LpPivots += W.Engine->totalPivots();
    }
  }
  Sol.Steals = S.Queues->steals();
  Sol.IncumbentUpdates = S.IncumbentUpdates.load();
  Sol.SolveSeconds = nanosToSeconds(monotonicNanos() - T0);
  Sol.RootBound = S.RootBound;
  if (S.RootUnbounded.load()) {
    Sol.Status = MilpStatus::Unbounded;
  } else {
    bool Truncated = S.Truncated.load();
    bool HasIncumbent = !S.BestX.empty();
    if (HasIncumbent) {
      Sol.Status = Truncated ? MilpStatus::Feasible : MilpStatus::Optimal;
      Sol.Objective = S.IncumbentVal;
      Sol.X = S.BestX;
    } else {
      Sol.Status = Truncated ? MilpStatus::Limit : MilpStatus::Infeasible;
    }
  }
  Span.arg("nodes", static_cast<double>(Sol.Nodes));
  Span.arg("steals", static_cast<double>(Sol.Steals));
  exportSolveMetrics(Sol);
  return Sol;
}
