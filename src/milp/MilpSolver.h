//===- milp/MilpSolver.h - Branch-and-bound MILP solver ---------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An exact branch-and-bound mixed-integer linear program solver built on
/// the bounded-variable simplex (lp/SimplexSolver.h). The paper solves its
/// DVS mode-assignment MILP with CPLEX; this is the from-scratch
/// replacement.
///
/// Structure exploited for the DVS formulation:
///  * SOS1 groups — each CFG edge's mode variables satisfy sum_m k = 1, so
///    branching picks the most fractional *group* and fixes its most
///    fractional member to 1 / 0 (fixing to 1 collapses the whole group);
///  * a rounding heuristic that snaps each group to its largest LP value
///    and re-solves the continuous rest, giving an early incumbent that
///    makes best-bound pruning effective.
///
/// Search architecture: an explicit node list on a work-stealing worker
/// pool. Each node stores only its bound-change delta against its parent
/// (an O(depth) chain shared between siblings); each worker owns a
/// persistent SimplexEngine whose LP is morphed from node to node by
/// applying the bound diff and re-solving warm from the previous basis —
/// a handful of dual-simplex pivots instead of a cold two-phase solve.
/// Workers share an atomic incumbent used for best-bound pruning.
///
/// The search is exact on natural termination: node exploration order
/// varies with thread count, but every pruning decision compares against
/// a proven incumbent, so the returned objective is the true optimum
/// (within AbsGap) for any NumThreads.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_MILP_MILPSOLVER_H
#define CDVS_MILP_MILPSOLVER_H

#include "lp/LpProblem.h"
#include "lp/SimplexSolver.h"

#include <memory>
#include <vector>

namespace cdvs {

/// Outcome of a MILP solve.
enum class MilpStatus {
  Optimal,   ///< Proven optimal incumbent.
  Feasible,  ///< Incumbent found but search truncated (node/time limit).
  Infeasible,///< No integer-feasible point exists.
  Unbounded, ///< LP relaxation unbounded.
  Limit      ///< Search truncated with no incumbent.
};

/// \returns a printable name for a MilpStatus.
const char *milpStatusName(MilpStatus Status);

/// Solution of a MILP solve. The counter block doubles as the solver's
/// Stats surface: tests and the metrics exporter read search effort
/// (nodes, prunes, steals, LP work) from here.
struct MilpSolution {
  MilpStatus Status = MilpStatus::Limit;
  double Objective = 0.0;
  std::vector<double> X;
  long Nodes = 0;
  long LpIterations = 0;
  double RootBound = 0.0;
  long WarmLps = 0; ///< Node LPs solved warm from a held basis.
  long ColdLps = 0; ///< Node LPs that ran the cold two-phase path.
  long LpPivots = 0; ///< Engine pivots, refactorization included.
  long Pruned = 0; ///< Nodes discarded by best-bound pruning.
  long Steals = 0; ///< Nodes a worker took from another's deque.
  long IncumbentUpdates = 0; ///< Times a better integer point was found.
  double SolveSeconds = 0.0; ///< Wall time of the whole search.
};

/// Tuning knobs for the branch-and-bound.
struct MilpOptions {
  double IntTol = 1e-6;     ///< |x - round(x)| below this is integral.
  double AbsGap = 1e-9;     ///< Prune nodes within this of the incumbent.
  long MaxNodes = 2000000;  ///< Node budget.
  double TimeLimitSec = 600.0;
  bool UseRounding = true;  ///< Enable the group-rounding heuristic.
  /// Worker threads for the tree search; 0 means one per hardware core.
  /// The effective count is additionally capped by the number of integer
  /// variables (tiny trees cannot feed many workers).
  int NumThreads = 0;
  /// Warm-start node LPs from the previous basis (dual simplex repair).
  /// Disable to force the cold two-phase path at every node (ablation).
  bool WarmStart = true;
  SimplexOptions LpOpts;
};

/// Branch-and-bound solver; minimizes the problem's objective.
class MilpSolver {
public:
  /// Takes the problem by value: branching mutates variable bounds.
  MilpSolver(LpProblem Problem, std::vector<int> IntegerVars,
             MilpOptions Opts = MilpOptions());

  /// Registers a SOS1 group: binary variables constrained elsewhere to
  /// sum to one (the caller must have added that row). Improves
  /// branching; membership must be a subset of the integer variables.
  void addSos1Group(std::vector<int> Vars);

  /// Runs the search.
  MilpSolution solve();

private:
  struct Shared;
  struct Worker;
  struct Node;
  void workerLoop(Shared &S, int WorkerIndex);
  void processNode(Shared &S, Worker &W, const std::shared_ptr<Node> &N);
  bool tryRounding(Shared &S, Worker &W, const std::vector<double> &Relaxed);
  int pickBranchVariable(const std::vector<double> &X) const;

  LpProblem Problem;
  std::vector<int> IntegerVars;
  std::vector<std::vector<int>> Sos1Groups;
  std::vector<int> GroupOfVar; // -1 if not in a group
  MilpOptions Opts;
};

} // namespace cdvs

#endif // CDVS_MILP_MILPSOLVER_H
