//===- milp/MilpSolver.h - Branch-and-bound MILP solver ---------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An exact branch-and-bound mixed-integer linear program solver built on
/// the bounded-variable simplex (lp/SimplexSolver.h). The paper solves its
/// DVS mode-assignment MILP with CPLEX; this is the from-scratch
/// replacement.
///
/// Structure exploited for the DVS formulation:
///  * SOS1 groups — each CFG edge's mode variables satisfy sum_m k = 1, so
///    branching picks the most fractional *group* and fixes its most
///    fractional member to 1 / 0 (fixing to 1 collapses the whole group);
///  * a rounding heuristic that snaps each group to its largest LP value
///    and re-solves the continuous rest, giving an early incumbent that
///    makes depth-first pruning effective.
///
/// Depth-first search with incumbent pruning is exact: on natural
/// termination the incumbent is a proven optimum.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_MILP_MILPSOLVER_H
#define CDVS_MILP_MILPSOLVER_H

#include "lp/LpProblem.h"
#include "lp/SimplexSolver.h"

#include <vector>

namespace cdvs {

/// Outcome of a MILP solve.
enum class MilpStatus {
  Optimal,   ///< Proven optimal incumbent.
  Feasible,  ///< Incumbent found but search truncated (node/time limit).
  Infeasible,///< No integer-feasible point exists.
  Unbounded, ///< LP relaxation unbounded.
  Limit      ///< Search truncated with no incumbent.
};

/// \returns a printable name for a MilpStatus.
const char *milpStatusName(MilpStatus Status);

/// Solution of a MILP solve.
struct MilpSolution {
  MilpStatus Status = MilpStatus::Limit;
  double Objective = 0.0;
  std::vector<double> X;
  long Nodes = 0;
  long LpIterations = 0;
  double RootBound = 0.0;
};

/// Tuning knobs for the branch-and-bound.
struct MilpOptions {
  double IntTol = 1e-6;     ///< |x - round(x)| below this is integral.
  double AbsGap = 1e-9;     ///< Prune nodes within this of the incumbent.
  long MaxNodes = 2000000;  ///< Node budget.
  double TimeLimitSec = 600.0;
  bool UseRounding = true;  ///< Enable the group-rounding heuristic.
  SimplexOptions LpOpts;
};

/// Branch-and-bound solver; minimizes the problem's objective.
class MilpSolver {
public:
  /// Takes the problem by value: branching mutates variable bounds.
  MilpSolver(LpProblem Problem, std::vector<int> IntegerVars,
             MilpOptions Opts = MilpOptions());

  /// Registers a SOS1 group: binary variables constrained elsewhere to
  /// sum to one (the caller must have added that row). Improves
  /// branching; membership must be a subset of the integer variables.
  void addSos1Group(std::vector<int> Vars);

  /// Runs the search.
  MilpSolution solve();

private:
  struct SearchState;
  void dfs(SearchState &S, int Depth);
  bool tryRounding(SearchState &S, const std::vector<double> &Relaxed);
  int pickBranchVariable(const std::vector<double> &X) const;

  LpProblem Problem;
  std::vector<int> IntegerVars;
  std::vector<std::vector<int>> Sos1Groups;
  std::vector<int> GroupOfVar; // -1 if not in a group
  MilpOptions Opts;
};

} // namespace cdvs

#endif // CDVS_MILP_MILPSOLVER_H
