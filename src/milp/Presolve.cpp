//===- milp/Presolve.cpp - Certified MILP presolve --------------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "milp/Presolve.h"

#include <cmath>
#include <cstdio>

namespace cdvs {

std::vector<double>
ReductionCertificate::expandSolution(const std::vector<double> &ReducedX) const {
  std::vector<double> X(OrigVars, 0.0);
  for (int V = 0; V < OrigVars; ++V)
    X[V] = VarMap[V] < 0 ? FixedValue[V] : ReducedX[VarMap[V]];
  return X;
}

namespace {

std::string describeVar(const LpProblem &P, int Var) {
  const std::string &Name = P.name(Var);
  if (!Name.empty())
    return Name;
  return "x" + std::to_string(Var);
}

} // namespace

PresolveResult presolve(const LpProblem &P, const std::vector<int> &IntegerVars,
                        const std::vector<int> &FixedVars,
                        const std::vector<double> &FixedValues,
                        const PresolveOptions &Opts) {
  const int NumVars = P.numVariables();
  const int NumRows = P.numRows();
  PresolveResult Res;
  ReductionCertificate &C = Res.Cert;
  C.OrigVars = NumVars;
  C.OrigRows = NumRows;
  C.VarMap.assign(NumVars, 0);
  C.FixedValue.assign(NumVars, 0.0);
  C.RowMap.assign(NumRows, 0);

  std::vector<char> Fixed(NumVars, 0);
  std::vector<double> Value(NumVars, 0.0);

  auto fixVar = [&](int V, double Val) -> bool {
    if (Val < P.lowerBound(V) - Opts.FeasTol ||
        Val > P.upperBound(V) + Opts.FeasTol) {
      Res.Infeasible = true;
      Res.InfeasibleReason = "fixing " + describeVar(P, V) + " to " +
                             std::to_string(Val) +
                             " violates its bounds";
      return false;
    }
    if (Fixed[V]) {
      if (std::fabs(Value[V] - Val) > Opts.FeasTol) {
        Res.Infeasible = true;
        Res.InfeasibleReason = "conflicting fixings for " + describeVar(P, V);
        return false;
      }
      return true;
    }
    Fixed[V] = 1;
    Value[V] = Val;
    return true;
  };

  // Caller-designated fixings, then bound-implied ones (Lo == Hi).
  for (size_t I = 0; I < FixedVars.size(); ++I)
    if (!fixVar(FixedVars[I], FixedValues[I]))
      return Res;
  for (int V = 0; V < NumVars; ++V)
    if (!Fixed[V] && P.upperBound(V) - P.lowerBound(V) <= Opts.FeasTol)
      if (!fixVar(V, P.lowerBound(V)))
        return Res;

  // Propagate to a fixpoint: an equality row whose terms leave exactly
  // one variable free determines that variable.
  if (Opts.PropagateEqualities) {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (int R = 0; R < NumRows; ++R) {
        if (P.sense(R) != RowSense::EQ)
          continue;
        int FreeVar = -1;
        double FreeCoeff = 0.0;
        double FixedSum = 0.0;
        bool MultiFree = false;
        for (const LpTerm &T : P.rowTerms(R)) {
          if (Fixed[T.Var]) {
            FixedSum += T.Coeff * Value[T.Var];
          } else if (FreeVar == T.Var) {
            FreeCoeff += T.Coeff; // Duplicate terms are summed.
          } else if (FreeVar < 0) {
            FreeVar = T.Var;
            FreeCoeff = T.Coeff;
          } else {
            MultiFree = true;
            break;
          }
        }
        if (MultiFree || FreeVar < 0 || FreeCoeff == 0.0)
          continue;
        if (!fixVar(FreeVar, (P.rhs(R) - FixedSum) / FreeCoeff))
          return Res;
        Changed = true;
      }
    }
  }

  // Build the variable mapping and the reduced problem columns.
  int NextVar = 0;
  for (int V = 0; V < NumVars; ++V) {
    if (Fixed[V]) {
      C.VarMap[V] = -1;
      C.FixedValue[V] = Value[V];
      C.ObjectiveOffset += P.cost(V) * Value[V];
    } else {
      C.VarMap[V] = NextVar++;
      Res.Reduced.addVariable(P.lowerBound(V), P.upperBound(V), P.cost(V),
                              P.name(V));
    }
  }
  C.ReducedVars = NextVar;

  // Rows: fold fixed terms into the RHS; rows with no free terms are
  // dropped after a feasibility check.
  int NextRow = 0;
  for (int R = 0; R < NumRows; ++R) {
    std::vector<LpTerm> Terms;
    double FixedSum = 0.0;
    for (const LpTerm &T : P.rowTerms(R)) {
      if (Fixed[T.Var])
        FixedSum += T.Coeff * Value[T.Var];
      else
        Terms.push_back({C.VarMap[T.Var], T.Coeff});
    }
    if (Terms.empty()) {
      double Lhs = FixedSum, Rhs = P.rhs(R);
      bool Ok = true;
      switch (P.sense(R)) {
      case RowSense::LE:
        Ok = Lhs <= Rhs + Opts.FeasTol;
        break;
      case RowSense::GE:
        Ok = Lhs >= Rhs - Opts.FeasTol;
        break;
      case RowSense::EQ:
        Ok = std::fabs(Lhs - Rhs) <= Opts.FeasTol;
        break;
      }
      if (!Ok) {
        Res.Infeasible = true;
        char Buf[128];
        std::snprintf(Buf, sizeof(Buf),
                      "row %d fully fixed but violated (lhs=%g rhs=%g)", R,
                      Lhs, Rhs);
        Res.InfeasibleReason = Buf;
        return Res;
      }
      C.RowMap[R] = -1;
      continue;
    }
    C.RowMap[R] = NextRow++;
    Res.Reduced.addRow(P.sense(R), P.rhs(R) - FixedSum, std::move(Terms));
  }
  C.ReducedRows = NextRow;

  for (int V : IntegerVars)
    if (C.VarMap[V] >= 0)
      Res.IntegerVars.push_back(C.VarMap[V]);

  return Res;
}

} // namespace cdvs
