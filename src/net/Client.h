//===- net/Client.h - Blocking cdvs-wire v1 client --------------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small blocking client for net::Server: connect, send Request
/// frames (pipelined, correlation ids chosen here or by the caller),
/// read whatever frames come back. call() is the synchronous
/// convenience — one request, wait for its response — while the
/// send/read halves are exposed separately so the load generator can
/// pipeline and the protocol tests can speak raw bytes (sendRaw) and
/// half-close (shutdownWrite).
///
/// One Client is one connection and is not thread-safe.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_NET_CLIENT_H
#define CDVS_NET_CLIENT_H

#include "net/Wire.h"
#include "service/Job.h"
#include "support/Error.h"

#include <cstdint>
#include <memory>
#include <string>

namespace cdvs {
namespace net {

/// Connection-level knobs for net::Client.
struct ClientOptions {
  int ConnectTimeoutMs = 5'000;
  /// Default bound applied when readFrame()/call() are passed a
  /// negative timeout. A dead or wedged peer therefore stalls a caller
  /// for at most this long instead of forever; 0 restores the old
  /// wait-forever behavior.
  int RequestTimeoutMs = 30'000;
  /// connectWithRetry(): total connect attempts (>= 1) before giving up.
  int ConnectAttempts = 1;
  /// connectWithRetry(): backoff before attempt N+1 is
  /// min(ReconnectBaseMs << N, ReconnectMaxMs).
  int ReconnectBaseMs = 50;
  int ReconnectMaxMs = 2'000;
  /// Per-frame payload cap applied to *received* frames.
  size_t MaxFrameBytes = kDefaultMaxPayloadBytes;
};

/// Blocking cdvs-wire client; see the file comment.
class Client {
public:
  Client() = default;
  ~Client();
  Client(Client &&Other) noexcept;
  Client &operator=(Client &&Other) noexcept;
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects to \p Host:\p Port. \returns the connected client.
  static ErrorOr<Client> connect(const std::string &Host, uint16_t Port,
                                 ClientOptions Opts = ClientOptions());

  /// Like connect(), but retries a refused/timed-out connect up to
  /// Opts.ConnectAttempts times with bounded exponential backoff
  /// (ReconnectBaseMs doubling per attempt, capped at ReconnectMaxMs).
  /// The error after the last attempt names how many were made.
  static ErrorOr<Client> connectWithRetry(const std::string &Host,
                                          uint16_t Port,
                                          ClientOptions Opts = ClientOptions());

  bool connected() const { return Fd >= 0; }
  int fd() const { return Fd; }

  /// Sends one Request frame carrying \p Request as JSON (a
  /// GraphRequest frame when the request carries a task graph).
  /// \returns the correlation id used (auto-assigned from an internal
  /// counter when \p Correlation is 0). A non-null valid \p Trace rides
  /// in the frame's extension block.
  ErrorOr<uint64_t> sendRequest(const JobRequest &Request,
                                uint64_t Correlation = 0,
                                const TraceContext *Trace = nullptr);

  /// Sends one Ping frame. \returns its correlation id.
  ErrorOr<uint64_t> ping(uint64_t Correlation = 0);

  /// Sends one PeerFetch frame probing the peer's result cache for
  /// \p FingerprintHex (32 hex chars). \returns its correlation id.
  ErrorOr<uint64_t> sendPeerFetch(const std::string &FingerprintHex,
                                  uint64_t Correlation = 0,
                                  const TraceContext *Trace = nullptr);

  /// Sends one StatsFetch frame (live metrics/trace scrape probe).
  /// \returns its correlation id.
  ErrorOr<uint64_t> sendStatsFetch(uint64_t Correlation = 0);

  /// Writes raw bytes to the socket — protocol tests send truncated and
  /// corrupted frames through this.
  ErrorOr<bool> sendRaw(const void *Data, size_t Len);

  /// Blocks up to \p TimeoutMs for the next complete frame. A negative
  /// timeout means "the default bound": Opts.RequestTimeoutMs, or wait
  /// forever when that is 0. Errors on timeout, protocol violations,
  /// and EOF (EOF with a clean buffer reports "connection closed").
  ErrorOr<Frame> readFrame(int TimeoutMs);

  /// Synchronous round trip: send \p Request, then read frames until
  /// this request's correlation id answers (other frames are dropped —
  /// use the split halves to pipeline). A Reject for this id is an
  /// error of the form "rejected: <code>: <reason>".
  ErrorOr<JobResult> call(const JobRequest &Request, int TimeoutMs,
                          const TraceContext *Trace = nullptr);

  /// Half-close: no more writes; the server answers what is in flight,
  /// flushes, and closes (readFrame then reports EOF).
  void shutdownWrite();

  /// Closes the connection.
  void close();

private:
  int Fd = -1;
  uint64_t NextCorrelation = 1;
  ClientOptions Opts;
  FrameParser Parser{kDefaultMaxPayloadBytes};
};

} // namespace net
} // namespace cdvs

#endif // CDVS_NET_CLIENT_H
