//===- net/Client.cpp - Blocking cdvs-wire v1 client -----------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "net/Client.h"

#include "net/EventLoop.h"
#include "service/JobIO.h"
#include "service/JsonLite.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace cdvs;
using namespace cdvs::net;

Client::~Client() { close(); }

Client::Client(Client &&Other) noexcept
    : Fd(Other.Fd), NextCorrelation(Other.NextCorrelation),
      Opts(Other.Opts), Parser(std::move(Other.Parser)) {
  Other.Fd = -1;
}

Client &Client::operator=(Client &&Other) noexcept {
  if (this != &Other) {
    close();
    Fd = Other.Fd;
    NextCorrelation = Other.NextCorrelation;
    Opts = Other.Opts;
    Parser = std::move(Other.Parser);
    Other.Fd = -1;
  }
  return *this;
}

ErrorOr<Client> Client::connect(const std::string &Host, uint16_t Port,
                                ClientOptions Opts) {
  ErrorOr<int> Fd = connectTcp(Host, Port, Opts.ConnectTimeoutMs);
  if (!Fd)
    return makeError(Fd.message());
  Client C;
  C.Fd = *Fd;
  C.Opts = Opts;
  C.Parser = FrameParser(Opts.MaxFrameBytes);
  return C;
}

ErrorOr<Client> Client::connectWithRetry(const std::string &Host,
                                         uint16_t Port,
                                         ClientOptions Opts) {
  int Attempts = std::max(1, Opts.ConnectAttempts);
  std::string LastError;
  for (int A = 0; A < Attempts; ++A) {
    if (A > 0) {
      // min(Base << (A-1), Max), guarding the shift against overflow.
      int Shift = std::min(A - 1, 20);
      long Backoff = static_cast<long>(std::max(0, Opts.ReconnectBaseMs))
                     << Shift;
      Backoff = std::min(Backoff,
                         static_cast<long>(std::max(0, Opts.ReconnectMaxMs)));
      if (Backoff > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(Backoff));
    }
    ErrorOr<Client> C = connect(Host, Port, Opts);
    if (C)
      return C;
    LastError = C.message();
  }
  return makeError("connect to " + Host + ":" + std::to_string(Port) +
                   " failed after " + std::to_string(Attempts) +
                   " attempt(s): " + LastError);
}

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

void Client::shutdownWrite() {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_WR);
}

ErrorOr<bool> Client::sendRaw(const void *Data, size_t Len) {
  if (Fd < 0)
    return makeError("not connected");
  const char *P = static_cast<const char *>(Data);
  size_t Off = 0;
  while (Off < Len) {
    ssize_t N = ::send(Fd, P + Off, Len - Off, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return makeError(std::string("send failed: ") +
                       std::strerror(errno));
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

ErrorOr<uint64_t> Client::sendRequest(const JobRequest &Request,
                                      uint64_t Correlation,
                                      const TraceContext *Trace) {
  if (Correlation == 0)
    Correlation = NextCorrelation++;
  // Graph jobs travel as GraphRequest frames — the server and the
  // router key on the frame type without parsing the payload twice.
  FrameType Type =
      Request.Graph ? FrameType::GraphRequest : FrameType::Request;
  std::string F = encodeFrame(Type, Correlation,
                              jobRequestToJson(Request), Trace);
  ErrorOr<bool> S = sendRaw(F.data(), F.size());
  if (!S)
    return makeError(S.message());
  return Correlation;
}

ErrorOr<uint64_t> Client::ping(uint64_t Correlation) {
  if (Correlation == 0)
    Correlation = NextCorrelation++;
  std::string F =
      encodeFrame(FrameType::Ping, Correlation, std::string());
  ErrorOr<bool> S = sendRaw(F.data(), F.size());
  if (!S)
    return makeError(S.message());
  return Correlation;
}

ErrorOr<uint64_t> Client::sendPeerFetch(const std::string &FingerprintHex,
                                        uint64_t Correlation,
                                        const TraceContext *Trace) {
  if (Correlation == 0)
    Correlation = NextCorrelation++;
  std::string F = encodeFrame(FrameType::PeerFetch, Correlation,
                              "{\"fingerprint\":\"" +
                                  jsonEscape(FingerprintHex) + "\"}",
                              Trace);
  ErrorOr<bool> S = sendRaw(F.data(), F.size());
  if (!S)
    return makeError(S.message());
  return Correlation;
}

ErrorOr<uint64_t> Client::sendStatsFetch(uint64_t Correlation) {
  if (Correlation == 0)
    Correlation = NextCorrelation++;
  std::string F =
      encodeFrame(FrameType::StatsFetch, Correlation, std::string());
  ErrorOr<bool> S = sendRaw(F.data(), F.size());
  if (!S)
    return makeError(S.message());
  return Correlation;
}

ErrorOr<Frame> Client::readFrame(int TimeoutMs) {
  if (Fd < 0)
    return makeError("not connected");
  if (TimeoutMs < 0)
    TimeoutMs = Opts.RequestTimeoutMs > 0 ? Opts.RequestTimeoutMs : -1;
  for (;;) {
    Frame F;
    FrameParser::Next R = Parser.next(F);
    if (R == FrameParser::Next::Frame)
      return F;
    if (R == FrameParser::Next::Error)
      return makeError(std::string("protocol error: ") +
                       wireStatusName(Parser.error()));

    struct pollfd P;
    P.fd = Fd;
    P.events = POLLIN;
    P.revents = 0;
    int PR = ::poll(&P, 1, TimeoutMs);
    if (PR < 0) {
      if (errno == EINTR)
        continue;
      return makeError(std::string("poll failed: ") +
                       std::strerror(errno));
    }
    if (PR == 0)
      return makeError("timed out waiting for a frame");

    char Buf[64 * 1024];
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      Parser.feed(Buf, static_cast<size_t>(N));
      continue;
    }
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return makeError(std::string("recv failed: ") +
                       std::strerror(errno));
    }
    if (Parser.buffered() > 0)
      return makeError("connection closed mid-frame");
    return makeError("connection closed");
  }
}

ErrorOr<JobResult> Client::call(const JobRequest &Request, int TimeoutMs,
                                const TraceContext *Trace) {
  ErrorOr<uint64_t> Corr = sendRequest(Request, 0, Trace);
  if (!Corr)
    return makeError(Corr.message());
  for (;;) {
    ErrorOr<Frame> F = readFrame(TimeoutMs);
    if (!F)
      return makeError(F.message());
    if (F->Correlation != *Corr)
      continue; // pipelined traffic for other correlation ids
    if (F->Type == FrameType::Reject) {
      ErrorOr<RejectInfo> R = decodeReject(F->Payload);
      if (!R)
        return makeError("rejected (unparseable reject payload)");
      return makeError("rejected: " + R->Code + ": " + R->Reason);
    }
    if (F->Type != FrameType::Response &&
        F->Type != FrameType::GraphResponse)
      continue; // e.g. a Pong that reused the id; keep waiting
    return jobResultFromJsonText(F->Payload);
  }
}
