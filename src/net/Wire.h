//===- net/Wire.h - cdvs-wire v1 framed protocol ----------------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `cdvs-wire v1` framing shared by net::Server, net::Client, and
/// the load generator. Every frame is a fixed 20-byte header, an
/// optional extension block, and an opaque payload:
///
///   offset  size  field
///        0     4  magic "CDVS"
///        4     1  version (currently 1)
///        5     1  frame type (FrameType)
///        6     1  extension block length in bytes (0 in old frames)
///        7     1  reserved, must be zero
///        8     8  correlation id, little-endian
///       16     4  payload length in bytes, little-endian
///       20     e  extension block (TLV records, e = byte 6)
///     20+e     n  payload
///
/// The extension block is a sequence of [type:1][len:1][data:len]
/// records. Receivers skip record types they do not know — that is the
/// forward-compatibility contract — but a record that overruns the
/// block, or a known type with the wrong length, is a framing error
/// (BadExtension). The one record this build emits is the trace
/// context (type 1, 25 bytes): 128-bit trace id (hi/lo, little-endian
/// u64 each), parent span id (little-endian u64), and a flags byte
/// whose bit 0 is the sampling decision. Frames written by older
/// builds carry extension length 0 and parse exactly as before.
///
/// Payloads are the service's existing request/response vocabulary in
/// JSON (service/JobIO.h) — a Request carries one dvsd-style request
/// object, a Response one result object whose `schedule` field is the
/// `cdvs-schedule v1` text (dvs/ScheduleIO.h). Reject payloads are a
/// small {"code","reason"} object; Ping payloads are empty, and Pong
/// payloads are either empty (old builds) or {"now_ns":<monotonic
/// clock>} so scrapers can align per-process clocks from RTT
/// midpoints.
/// PeerFetch/PeerData are the backend-to-backend cache-fill pair: a
/// PeerFetch carries {"fingerprint":"<32 hex>"}, its PeerData answer a
/// {"found",...} object serializing the cached schedule (or a miss) —
/// see service/JobIO.h. StatsFetch/StatsData are the live-scrape pair:
/// StatsFetch carries an empty payload, StatsData answers with one
/// JSON object bundling the process role, Prometheus metrics text, and
/// the recent trace buffer (dvs-stat --scrape merges these across
/// endpoints). GraphRequest/GraphResponse are the task-graph job pair:
/// the same JSON vocabulary as Request/Response, but the request
/// carries a "graph" object (service/JobIO.h) and the response's
/// `schedule` field holds `cdvs-taskplan v1` text — a distinct frame
/// type so routers can key graph jobs on graph content without parsing
/// payloads twice, and so old builds reject them loudly (BadType)
/// instead of mis-scheduling them. The
/// correlation id is chosen by the client and echoed verbatim, which is
/// what lets responses stream back out of order over one connection.
///
/// Decoding is strict: wrong magic, unknown version or type, a nonzero
/// reserved field, a malformed extension block, or a payload length
/// above the receiver's limit are
/// distinct errors, not best-effort skips — the peer is told (a Reject
/// frame) and the connection is closed, because a framing error means
/// the byte stream can no longer be trusted.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_NET_WIRE_H
#define CDVS_NET_WIRE_H

#include "support/Error.h"

#include <cstdint>
#include <string>

namespace cdvs {
namespace net {

/// The four magic bytes every frame starts with.
inline constexpr char kWireMagic[4] = {'C', 'D', 'V', 'S'};
/// The one protocol version this build speaks.
inline constexpr uint8_t kWireVersion = 1;
/// Header size in bytes; the payload follows immediately.
inline constexpr size_t kFrameHeaderBytes = 20;
/// Default per-frame payload cap (1 MiB) — far above any real request
/// or serialized schedule, small enough to bound per-connection memory.
inline constexpr size_t kDefaultMaxPayloadBytes = 1u << 20;

/// Frame kinds of cdvs-wire v1.
enum class FrameType : uint8_t {
  Request = 1,    ///< client -> server: one JSON job request
  Response = 2,   ///< server -> client: one JSON job result
  Reject = 3,     ///< server -> client: structured {"code","reason"}
  Ping = 4,       ///< either direction: liveness probe, empty payload
  Pong = 5,       ///< answer to Ping, correlation id echoed
  PeerFetch = 6,  ///< backend -> backend: {"fingerprint"} cache probe
  PeerData = 7,   ///< answer to PeerFetch: cached schedule, or a miss
  StatsFetch = 8, ///< scraper -> process: live stats probe, empty
  StatsData = 9,  ///< answer to StatsFetch: role + metrics + traces
  GraphRequest = 10,  ///< client -> server: one JSON task-graph job
  GraphResponse = 11, ///< server -> client: one JSON graph job result
};

/// \returns a printable lower-case name ("request", "response", ...).
const char *frameTypeName(FrameType Type);

/// True when \p Raw is a FrameType this version understands.
bool validFrameType(uint8_t Raw);

/// The per-request trace context carried in a frame's extension block:
/// a 128-bit trace id naming the whole distributed request, the span id
/// of the sender's enclosing span, and the sampling decision. A zero
/// trace id means "no context".
struct TraceContext {
  uint64_t TraceHi = 0;
  uint64_t TraceLo = 0;
  uint64_t ParentSpan = 0;
  bool Sampled = false;

  bool valid() const { return TraceHi != 0 || TraceLo != 0; }
};

/// Extension record type carrying a TraceContext.
inline constexpr uint8_t kExtTrace = 1;
/// Payload bytes of a trace extension record: 3 LE u64 + flags byte.
inline constexpr uint8_t kExtTraceBytes = 25;

/// The decoded fixed-size frame header.
struct FrameHeader {
  FrameType Type = FrameType::Ping;
  uint8_t ExtBytes = 0;
  uint64_t Correlation = 0;
  uint32_t PayloadBytes = 0;
};

/// One complete frame (header fields + payload bytes).
struct Frame {
  FrameType Type = FrameType::Ping;
  uint64_t Correlation = 0;
  std::string Payload;
  TraceContext Trace; ///< valid only when HasTrace
  bool HasTrace = false;
};

/// Outcome of decoding a header prefix.
enum class WireStatus {
  Ok,           ///< header decoded into the out-param
  NeedMore,     ///< fewer than kFrameHeaderBytes available
  BadMagic,     ///< first four bytes are not "CDVS"
  BadVersion,   ///< version byte this build does not speak
  BadType,      ///< unknown frame type
  BadReserved,  ///< reserved field nonzero
  BadExtension, ///< extension block is structurally malformed
  Oversized,    ///< payload length above the receiver's cap
};

/// \returns a printable name for a WireStatus ("ok", "bad_magic", ...).
const char *wireStatusName(WireStatus Status);

/// Serializes a header into \p Out (exactly kFrameHeaderBytes bytes).
void encodeFrameHeader(const FrameHeader &H,
                       unsigned char Out[kFrameHeaderBytes]);

/// Builds a complete frame: header + \p Payload.
std::string encodeFrame(FrameType Type, uint64_t Correlation,
                        const std::string &Payload);

/// Builds a complete frame carrying \p Trace in the extension block
/// (or none when \p Trace is null or invalid — identical bytes to the
/// plain overload, so unsampled traffic pays nothing on the wire).
std::string encodeFrame(FrameType Type, uint64_t Correlation,
                        const std::string &Payload,
                        const TraceContext *Trace);

/// Walks \p Len bytes of extension block: unknown record types are
/// skipped, a trace record (kExtTrace) is decoded into \p Trace and
/// \p HasTrace set. \returns BadExtension when a record overruns the
/// block or a trace record has the wrong length, Ok otherwise.
WireStatus decodeExtensions(const unsigned char *Data, size_t Len,
                            TraceContext &Trace, bool &HasTrace);

/// Decodes a header from \p Data (length \p Len). Payload lengths above
/// \p MaxPayloadBytes decode as Oversized (the header itself is still
/// written to \p Out so the receiver can name the offending length).
WireStatus decodeFrameHeader(const unsigned char *Data, size_t Len,
                             size_t MaxPayloadBytes, FrameHeader &Out);

/// Validates however much of a header prefix is present (\p Len may be
/// less than kFrameHeaderBytes): magic, version, type, and the reserved
/// field are checked as soon as their bytes exist. Ok means "no error
/// yet", not "complete" — callers that need a full header still use
/// decodeFrameHeader. This is what lets FrameParser reject garbage on
/// its first bytes instead of stalling until 20 of them arrive.
WireStatus validateHeaderPrefix(const unsigned char *Data, size_t Len);

/// Incremental frame assembler for one byte stream: feed() appends
/// whatever arrived, next() yields complete frames until the buffer
/// runs dry or a framing error is hit — header-prefix errors (bad
/// magic/version/type/reserved) surface as soon as the offending byte
/// is buffered, without waiting for a full header. After an error the
/// parser is poisoned — the stream cannot be resynchronized — and every
/// further next() reports the same error.
class FrameParser {
public:
  explicit FrameParser(size_t MaxPayloadBytes = kDefaultMaxPayloadBytes)
      : MaxPayload(MaxPayloadBytes) {}

  /// Appends \p Len raw bytes from the stream.
  void feed(const char *Data, size_t Len) { Buf.append(Data, Len); }

  enum class Next {
    Frame,    ///< one frame extracted into the out-param
    NeedMore, ///< the buffer holds no complete frame
    Error,    ///< framing error; see error()
  };

  /// Extracts the next complete frame, if any.
  Next next(Frame &Out);

  /// The framing error after Next::Error (WireStatus::Ok otherwise).
  WireStatus error() const { return Err; }

  /// Bytes buffered but not yet consumed by next(). Nonzero at stream
  /// EOF means the peer hung up mid-frame (a truncated frame).
  size_t buffered() const { return Buf.size(); }

private:
  std::string Buf;
  size_t MaxPayload;
  WireStatus Err = WireStatus::Ok;
};

/// Structured payload of a Reject frame.
struct RejectInfo {
  std::string Code;   ///< stable machine-readable cause, e.g. "too_large"
  std::string Reason; ///< human-readable detail
};

/// Serializes a Reject payload ({"code":...,"reason":...}).
std::string encodeReject(const std::string &Code,
                         const std::string &Reason);

/// Parses a Reject payload; errors on anything but the expected shape.
ErrorOr<RejectInfo> decodeReject(const std::string &Payload);

} // namespace net
} // namespace cdvs

#endif // CDVS_NET_WIRE_H
