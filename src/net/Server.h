//===- net/Server.h - multi-reactor DVS scheduling server -------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The network front end of the scheduling service: N reactor threads
/// (ServerOptions::Reactors) each own a full event-loop stack — their
/// own Poller, timer wheel, wakeup fd, and listening socket bound with
/// SO_REUSEPORT — so accept/read/write and all per-connection state stay
/// reactor-local and lock-free on the hot path. The kernel's reuseport
/// hash spreads incoming connections across the reactors; on stacks
/// without SO_REUSEPORT (or under ForceAcceptHandoff) reactor 0 owns the
/// one listener and round-robins accepted fds to its peers through
/// per-reactor handoff queues and a wakeup-fd nudge.
///
/// Jobs run on the embedded SchedulerService's persistent TaskPool;
/// completions come back through a *per-reactor* lock-free MPSC queue
/// (worker threads push, the owning reactor drains on wakeup), so
/// response routing never takes a lock shared between reactors.
/// Responses stream out of order per connection, matched by the
/// correlation id the client chose.
///
/// Robustness edges, all enforced per connection on its owning reactor:
///
///  * framing errors (bad magic/version/type/reserved, oversized
///    payloads, a peer that hangs up mid-frame) answer with one
///    structured Reject frame, then close — the stream cannot be
///    resynchronized;
///  * write backpressure: when a connection's queued response bytes
///    exceed WriteQueueHighWater the reactor stops reading it (the
///    kernel socket buffer then pushes back on the client) and resumes
///    below WriteQueueLowWater;
///  * idle, request, and slow-frame timeouts ride each reactor's hashed
///    timer wheel: a silent connection is closed after IdleTimeoutMs, a
///    request older than RequestTimeoutMs answers Reject{"timeout"} (the
///    late result is dropped when it eventually lands), and a connection
///    that dribbles bytes without completing a frame within
///    SlowFrameTimeoutMs (slowloris) draws Reject{"slow_frame"} and
///    closes;
///  * overload shedding: when a reactor's count of admitted-but-
///    unanswered jobs crosses ShedHighWater, lax requests (deadline
///    tightness at or above ShedLaxTightness, peeked from the payload
///    without a full JSON parse) answer Reject{"shed"}; past
///    ShedHardWater every request sheds, regardless of class — so a
///    stampede costs the reactor one cheap scan per frame instead of a
///    parse, an admission, and a solve;
///  * MaxConnections (server-wide): surplus accepts get
///    Reject{"overloaded"} and an immediate close; admission-queue
///    backpressure inside the service surfaces as an ordinary rejected
///    Response, exactly like dvsd;
///  * graceful drain (beginDrain(), wired to SIGTERM in dvs-server):
///    every reactor closes its listener, stops reading, lets every
///    already-admitted job complete and flush, then closes its
///    connections; waitDrained() observers wake once the last reactor
///    quiesces.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_NET_SERVER_H
#define CDVS_NET_SERVER_H

#include "net/EventLoop.h"
#include "net/Wire.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "service/Service.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace cdvs {
namespace net {

/// Sizing and policy knobs for a net::Server.
struct ServerOptions {
  std::string BindAddress = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via Server::port().
  uint16_t Port = 0;
  int Backlog = 128;
  /// Reactor (event-loop) threads; 0 means one per hardware core.
  int Reactors = 1;
  /// Use the single-acceptor round-robin handoff path even where
  /// SO_REUSEPORT exists (tests; kernels without reusable ports fall
  /// back to this automatically).
  bool ForceAcceptHandoff = false;
  /// Accepted connections beyond this (server-wide) answer
  /// Reject{"overloaded"}.
  size_t MaxConnections = 256;
  /// Per-frame payload cap; longer headers answer Reject{"too_large"}.
  size_t MaxFrameBytes = kDefaultMaxPayloadBytes;
  /// Stop reading a connection once its queued response bytes pass
  /// this...
  size_t WriteQueueHighWater = 4u << 20;
  /// ...and resume once they fall below this.
  size_t WriteQueueLowWater = 1u << 20;
  /// Close connections silent for this long; 0 disables.
  uint64_t IdleTimeoutMs = 60'000;
  /// Reject{"timeout"} requests in flight longer than this; 0 disables.
  uint64_t RequestTimeoutMs = 0;
  /// Reject{"slow_frame"} connections that sit on a partial frame this
  /// long without completing it (slowloris guard); 0 disables. The
  /// clock restarts whenever a complete frame is extracted, so slow but
  /// steady pipelines never trip it.
  uint64_t SlowFrameTimeoutMs = 10'000;
  /// Overload shedding: once a reactor's admitted-but-unanswered job
  /// count reaches this, lax-class requests answer Reject{"shed"}
  /// before the payload is parsed. 0 disables shedding.
  size_t ShedHighWater = 0;
  /// Past this pending count every request sheds regardless of class;
  /// 0 defaults to 2 * ShedHighWater.
  size_t ShedHardWater = 0;
  /// Deadline-class boundary: requests whose peeked tightness is at or
  /// above this are "lax" (sheddable at ShedHighWater); tighter
  /// deadlines stay admitted until ShedHardWater.
  double ShedLaxTightness = 0.5;
  /// SO_SNDBUF for accepted sockets; 0 keeps the kernel default. Tests
  /// shrink it so write backpressure triggers with small payloads.
  int SocketSendBufferBytes = 0;
  /// Use the portable poll(2) backend even where epoll exists.
  bool ForcePoll = false;
  /// Configuration of the embedded SchedulerService.
  ServiceOptions Service;
};

/// Reactor-side counters, aggregated across reactors by Server::stats().
struct ServerStats {
  long ConnectionsAccepted = 0;
  long ConnectionsRejected = 0; ///< over MaxConnections
  long ConnectionsClosed = 0;
  long FramesIn = 0;
  long FramesOut = 0;
  long long BytesIn = 0;
  long long BytesOut = 0;
  long RejectsSent = 0;    ///< Reject frames of any code
  long ProtocolErrors = 0; ///< framing errors (reject-then-close)
  long IdleCloses = 0;
  long RequestTimeouts = 0;
  long SlowFrameCloses = 0;    ///< slowloris guard firings
  long LoadSheds = 0;          ///< Reject{"shed"} answers (any class)
  long PeerFetches = 0;        ///< PeerFetch cache probes served
  long PeerFetchHits = 0;      ///< ...that found a cached schedule
  long HandoffAccepts = 0;     ///< connections adopted via fd handoff
  long ReadPauses = 0;         ///< backpressure engagements
  long OrphanCompletions = 0;  ///< job finished after its conn closed
  size_t OpenConnections = 0;  ///< currently open
};

/// The scheduling server; see the file comment.
class Server {
public:
  explicit Server(ServerOptions Opts = ServerOptions());
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds, listens, and spawns the reactor threads. Errors (port in
  /// use, bad address) are returned, not retried.
  ErrorOr<bool> start();

  /// The bound port (after start(); useful with Port = 0). All reactors
  /// share it (SO_REUSEPORT) or funnel through it (handoff fallback).
  uint16_t port() const { return BoundPort; }
  /// "epoll" or "poll" (after start()).
  const char *backendName() const { return Backend; }
  /// Reactor threads actually running (after start()).
  int reactors() const { return NumReactors; }
  /// True when the reactors share the port via SO_REUSEPORT, false on
  /// the accept-handoff fallback (after start()).
  bool usingReusePort() const { return ReusePortActive; }

  /// The embedded scheduling service (tests pause/resume it; the tool
  /// reads its stats).
  SchedulerService &service() { return Service; }

  /// Starts a graceful drain: stop accepting, stop reading, let every
  /// admitted job complete and flush, then close. Idempotent,
  /// thread-safe, safe from signal-handler-adjacent contexts (one
  /// atomic store + N write syscalls).
  void beginDrain();

  /// Waits until the drain finished (every reactor closed every
  /// connection). \returns false on timeout. TimeoutSeconds <= 0 polls
  /// once.
  bool waitDrained(double TimeoutSeconds);

  /// Hard stop: drains nothing, closes everything, joins the reactors,
  /// and shuts the service down. The destructor calls this.
  void stop();

  ServerStats stats() const;

private:
  struct Connection {
    int Fd = -1;
    uint64_t Id = 0;
    FrameParser Parser;
    std::deque<std::string> WriteQ;
    size_t WriteQBytes = 0;
    size_t WriteOff = 0; ///< bytes of WriteQ.front() already sent
    int InFlight = 0;    ///< jobs admitted, response not yet queued
    bool ReadPaused = false;
    /// Hard close: drop the connection once WriteQ drains (framing
    /// error, idle timeout).
    bool CloseAfterFlush = false;
    /// Soft close (peer half-closed): close once WriteQ drains AND
    /// every in-flight job has answered.
    bool SawEof = false;
    unsigned Subscribed = 0; ///< EvIn/EvOut bits currently registered
    uint64_t IdleTimer = 0;  ///< wheel id, 0 = none
    uint64_t SlowTimer = 0;  ///< partial-frame (slowloris) wheel id
    /// In-flight request bookkeeping, keyed by correlation id.
    std::map<uint64_t, uint64_t> StartNs;
    std::map<uint64_t, uint64_t> RequestTimers;
    std::set<uint64_t> TimedOut;
    /// Lifetime span ("conn" on the net category); ends at close.
    std::unique_ptr<obs::TraceSpan> Span;

    explicit Connection(size_t MaxPayload) : Parser(MaxPayload) {}
  };

  struct Completion {
    uint64_t ConnId = 0;
    uint64_t Correlation = 0;
    std::string Payload; ///< response JSON, serialized on the worker
    /// Response for single-program jobs, GraphResponse for graph jobs —
    /// the answer frame mirrors the request frame's kind.
    FrameType Type = FrameType::Response;
  };

  /// Lock-free MPSC handoff from pipeline workers to one reactor:
  /// push() is a CAS loop on an intrusive Treiber list (any thread),
  /// drainTo() exchanges the whole list and reverses it (owner reactor
  /// only). Depth is tracked for the completion-queue-depth gauge.
  class CompletionQueue {
  public:
    ~CompletionQueue();
    void push(Completion C);
    /// Appends all pending completions to \p Out in rough FIFO order.
    void drainTo(std::vector<Completion> &Out);
    long depth() const { return Depth.load(std::memory_order_relaxed); }

  private:
    struct Node {
      Completion C;
      Node *Next = nullptr;
    };
    std::atomic<Node *> Head{nullptr};
    std::atomic<long> Depth{0};
  };

  /// Everything one reactor thread owns. Only CQ, Handoff(+mutex),
  /// Wakeup, and the Counters mutex are ever touched by other threads.
  struct Reactor {
    int Index = 0;
    std::unique_ptr<Poller> Io;
    TimerWheel Wheel;
    WakeupFd Wakeup;
    int ListenFd = -1; ///< own REUSEPORT listener, or reactor 0's only
    std::thread Thread;

    // Reactor-thread-only connection state.
    std::map<int, std::unique_ptr<Connection>> ByFd;
    std::map<uint64_t, Connection *> ById;
    uint64_t NextConnId = 1; ///< seeded Index+1, stepped by NumReactors
    bool DrainStarted = false;
    bool DrainedLocal = false;
    /// Jobs admitted from this reactor, completion not yet delivered —
    /// the shedding watermark input.
    long PendingJobs = 0;

    /// Worker threads push completed jobs here; Wakeup nudges the loop.
    CompletionQueue CQ;
    /// Accept-handoff fallback: reactor 0 pushes accepted fds here.
    std::mutex HandoffMu;
    std::vector<int> Handoff;

    mutable std::mutex StatsMu;
    ServerStats Counters; ///< guarded by StatsMu

    // Per-reactor instruments, registered once in Server::start() so
    // the frame hot path never touches the registry lock.
    obs::Counter *AcceptsCtr = nullptr;
    obs::Counter *FramesInCtr = nullptr;
    obs::Counter *FramesOutCtr = nullptr;
    obs::Counter *BytesInCtr = nullptr;
    obs::Counter *BytesOutCtr = nullptr;
    obs::Gauge *OpenGauge = nullptr;
    obs::Gauge *DrainGauge = nullptr;
    obs::Gauge *CqDepthGauge = nullptr;
    obs::Histogram *LatencyHist = nullptr;
  };

  void loop(Reactor &R);
  void teardown(Reactor &R);
  void acceptReady(Reactor &R, uint64_t NowNs);
  void adoptHandoff(Reactor &R, uint64_t NowNs);
  void adoptConnection(Reactor &R, int Fd, uint64_t NowNs);
  void rejectAccept(Reactor &R, int Fd);
  void readReady(Reactor &R, Connection &C, uint64_t NowNs);
  void writeReady(Reactor &R, Connection &C);
  /// \returns the number of complete frames extracted (slow-frame
  /// progress tracking).
  size_t processFrames(Reactor &R, Connection &C, uint64_t NowNs);
  /// Admits one job frame (Request or GraphRequest — the frame kind
  /// must match the payload: a Request carrying a "graph" object, or a
  /// GraphRequest without one, draws Reject{"bad_request"}). The
  /// completion answers with the mirroring response frame kind.
  void handleRequest(Reactor &R, Connection &C, Frame &F, uint64_t NowNs);
  /// Answers a backend-to-backend PeerFetch cache probe with PeerData
  /// (found + serialized schedule, or a miss) from the service's result
  /// cache — a peek, so peer probes never skew hit/miss counters or LRU
  /// recency.
  void handlePeerFetch(Reactor &R, Connection &C, Frame &F);
  /// Answers a StatsFetch live-scrape probe with a StatsData bundle:
  /// process role, metrics exposition, and the recent trace buffer
  /// (dvs-stat --scrape merges these across endpoints).
  void handleStatsFetch(Reactor &R, Connection &C, Frame &F);
  /// \returns the shed class ("lax"/"hard") when the reactor's pending
  /// count says this request must be refused, nullptr to admit.
  const char *shedClass(const Reactor &R, const Frame &F) const;
  void handleCompletions(Reactor &R, uint64_t NowNs);
  void enqueueFrame(Reactor &R, Connection &C, FrameType Type,
                    uint64_t Correlation, const std::string &Payload);
  void sendReject(Reactor &R, Connection &C, uint64_t Correlation,
                  const std::string &Code, const std::string &Reason);
  void updateSubscription(Reactor &R, Connection &C);
  void armIdleTimer(Reactor &R, Connection &C, uint64_t NowNs);
  void trackFrameProgress(Reactor &R, Connection &C, size_t Extracted,
                          uint64_t NowNs);
  void closeConnection(Reactor &R, uint64_t ConnId);
  void startDrainOnLoop(Reactor &R);
  void finishDrainIfIdle(Reactor &R);
  void updateConnectionGauges(Reactor &R);

  ServerOptions Opts;
  SchedulerService Service;

  std::vector<std::unique_ptr<Reactor>> Reactors;
  int NumReactors = 0;
  bool ReusePortActive = false;
  uint16_t BoundPort = 0;
  const char *Backend = "";
  /// Handoff fallback: reactor 0's round-robin cursor (loop-thread
  /// only).
  size_t HandoffCursor = 0;
  /// Server-wide open-connection count for the MaxConnections limit
  /// (each reactor only sees its own ByFd).
  std::atomic<long> OpenConns{0};

  // Cross-thread lifecycle.
  std::atomic<bool> StopRequested{false};
  std::atomic<bool> DrainRequested{false};
  std::atomic<int> DrainedReactors{0};

  mutable std::mutex StateMu;
  std::condition_variable DrainedCv;
  bool Drained = false;
};

} // namespace net
} // namespace cdvs

#endif // CDVS_NET_SERVER_H
