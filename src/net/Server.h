//===- net/Server.h - epoll-based DVS scheduling server ---------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The network front end of the scheduling service: one event-loop
/// thread drives nonblocking accept/read/write over cdvs-wire v1 frames
/// (net/Wire.h) and bridges Request frames onto an embedded
/// SchedulerService. Jobs run on the service's persistent TaskPool;
/// completions come back to the loop through a WakeupFd-signalled queue,
/// so responses stream out of order per connection, matched by the
/// correlation id the client chose.
///
/// Robustness edges, all enforced per connection:
///
///  * framing errors (bad magic/version/type/reserved, oversized
///    payloads, a peer that hangs up mid-frame) answer with one
///    structured Reject frame, then close — the stream cannot be
///    resynchronized;
///  * write backpressure: when a connection's queued response bytes
///    exceed WriteQueueHighWater the loop stops reading it (the kernel
///    socket buffer then pushes back on the client) and resumes below
///    WriteQueueLowWater;
///  * idle and request timeouts ride a hashed timer wheel: a silent
///    connection is closed after IdleTimeoutMs, a request older than
///    RequestTimeoutMs answers Reject{"timeout"} (the late result is
///    dropped when it eventually lands);
///  * MaxConnections: surplus accepts get Reject{"overloaded"} and an
///    immediate close; admission-queue backpressure inside the service
///    surfaces as an ordinary rejected Response, exactly like dvsd;
///  * graceful drain (beginDrain(), wired to SIGTERM in dvs-server):
///    the listener closes, reading stops, every already-admitted job
///    completes and flushes, then connections close and waitDrained()
///    observers wake.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_NET_SERVER_H
#define CDVS_NET_SERVER_H

#include "net/EventLoop.h"
#include "net/Wire.h"
#include "obs/Trace.h"
#include "service/Service.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace cdvs {
namespace net {

/// Sizing and policy knobs for a net::Server.
struct ServerOptions {
  std::string BindAddress = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via Server::port().
  uint16_t Port = 0;
  int Backlog = 128;
  /// Accepted connections beyond this answer Reject{"overloaded"}.
  size_t MaxConnections = 256;
  /// Per-frame payload cap; longer headers answer Reject{"too_large"}.
  size_t MaxFrameBytes = kDefaultMaxPayloadBytes;
  /// Stop reading a connection once its queued response bytes pass
  /// this...
  size_t WriteQueueHighWater = 4u << 20;
  /// ...and resume once they fall below this.
  size_t WriteQueueLowWater = 1u << 20;
  /// Close connections silent for this long; 0 disables.
  uint64_t IdleTimeoutMs = 60'000;
  /// Reject{"timeout"} requests in flight longer than this; 0 disables.
  uint64_t RequestTimeoutMs = 0;
  /// SO_SNDBUF for accepted sockets; 0 keeps the kernel default. Tests
  /// shrink it so write backpressure triggers with small payloads.
  int SocketSendBufferBytes = 0;
  /// Use the portable poll(2) backend even where epoll exists.
  bool ForcePoll = false;
  /// Configuration of the embedded SchedulerService.
  ServiceOptions Service;
};

/// Loop-side counters, snapshot via Server::stats().
struct ServerStats {
  long ConnectionsAccepted = 0;
  long ConnectionsRejected = 0; ///< over MaxConnections
  long ConnectionsClosed = 0;
  long FramesIn = 0;
  long FramesOut = 0;
  long long BytesIn = 0;
  long long BytesOut = 0;
  long RejectsSent = 0;    ///< Reject frames of any code
  long ProtocolErrors = 0; ///< framing errors (reject-then-close)
  long IdleCloses = 0;
  long RequestTimeouts = 0;
  long ReadPauses = 0;         ///< backpressure engagements
  long OrphanCompletions = 0;  ///< job finished after its conn closed
  size_t OpenConnections = 0;  ///< currently open
};

/// The scheduling server; see the file comment.
class Server {
public:
  explicit Server(ServerOptions Opts = ServerOptions());
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds, listens, and spawns the event-loop thread. Errors (port in
  /// use, bad address) are returned, not retried.
  ErrorOr<bool> start();

  /// The bound port (after start(); useful with Port = 0).
  uint16_t port() const { return BoundPort; }
  /// "epoll" or "poll" (after start()).
  const char *backendName() const { return Backend; }

  /// The embedded scheduling service (tests pause/resume it; the tool
  /// reads its stats).
  SchedulerService &service() { return Service; }

  /// Starts a graceful drain: stop accepting, stop reading, let every
  /// admitted job complete and flush, then close. Idempotent,
  /// thread-safe, safe from signal-handler-adjacent contexts (one
  /// atomic store + one write syscall).
  void beginDrain();

  /// Waits until the drain finished (every connection closed). \returns
  /// false on timeout. TimeoutSeconds <= 0 polls once.
  bool waitDrained(double TimeoutSeconds);

  /// Hard stop: drains nothing, closes everything, joins the loop, and
  /// shuts the service down. The destructor calls this.
  void stop();

  ServerStats stats() const;

private:
  struct Connection {
    int Fd = -1;
    uint64_t Id = 0;
    FrameParser Parser;
    std::deque<std::string> WriteQ;
    size_t WriteQBytes = 0;
    size_t WriteOff = 0; ///< bytes of WriteQ.front() already sent
    int InFlight = 0;    ///< jobs admitted, response not yet queued
    bool ReadPaused = false;
    /// Hard close: drop the connection once WriteQ drains (framing
    /// error, idle timeout).
    bool CloseAfterFlush = false;
    /// Soft close (peer half-closed): close once WriteQ drains AND
    /// every in-flight job has answered.
    bool SawEof = false;
    unsigned Subscribed = 0; ///< EvIn/EvOut bits currently registered
    uint64_t IdleTimer = 0;  ///< wheel id, 0 = none
    /// In-flight request bookkeeping, keyed by correlation id.
    std::map<uint64_t, uint64_t> StartNs;
    std::map<uint64_t, uint64_t> RequestTimers;
    std::set<uint64_t> TimedOut;
    /// Lifetime span ("conn" on the net category); ends at close.
    std::unique_ptr<obs::TraceSpan> Span;

    explicit Connection(size_t MaxPayload) : Parser(MaxPayload) {}
  };

  struct Completion {
    uint64_t ConnId = 0;
    uint64_t Correlation = 0;
    std::string Payload; ///< response JSON, serialized on the worker
  };

  void loop();
  void acceptReady(uint64_t NowNs);
  void readReady(Connection &C, uint64_t NowNs);
  void writeReady(Connection &C);
  void processFrames(Connection &C, uint64_t NowNs);
  void handleRequest(Connection &C, Frame &F, uint64_t NowNs);
  void handleCompletions(uint64_t NowNs);
  void enqueueFrame(Connection &C, FrameType Type, uint64_t Correlation,
                    const std::string &Payload);
  void sendReject(Connection &C, uint64_t Correlation,
                  const std::string &Code, const std::string &Reason);
  void updateSubscription(Connection &C);
  void armIdleTimer(Connection &C, uint64_t NowNs);
  void closeConnection(uint64_t ConnId);
  void startDrainOnLoop();
  void finishDrainIfIdle();
  void updateConnectionGauges();

  ServerOptions Opts;
  SchedulerService Service;

  std::unique_ptr<Poller> Io;
  TimerWheel Wheel;
  WakeupFd Wakeup;
  int ListenFd = -1;
  uint16_t BoundPort = 0;
  const char *Backend = "";
  std::thread LoopThread;

  // Loop-thread-only connection state.
  std::map<int, std::unique_ptr<Connection>> ByFd;
  std::map<uint64_t, Connection *> ById;
  uint64_t NextConnId = 1;
  bool DrainStarted = false; ///< loop-side latch of DrainRequested

  // Cross-thread handoff.
  std::atomic<bool> StopRequested{false};
  std::atomic<bool> DrainRequested{false};
  std::mutex CompletionsMu;
  std::vector<Completion> Completions;

  mutable std::mutex StateMu;
  std::condition_variable DrainedCv;
  bool Drained = false;
  ServerStats Counters; ///< guarded by StateMu
};

} // namespace net
} // namespace cdvs

#endif // CDVS_NET_SERVER_H
