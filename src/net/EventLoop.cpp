//===- net/EventLoop.cpp - Readiness polling, timers, sockets --------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "net/EventLoop.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#include <sys/eventfd.h>
#define CDVS_NET_HAVE_EPOLL 1
#endif

using namespace cdvs;
using namespace cdvs::net;

//===----------------------------------------------------------------------===//
// Pollers
//===----------------------------------------------------------------------===//

namespace {

#if CDVS_NET_HAVE_EPOLL

unsigned fromEpoll(uint32_t E) {
  unsigned Out = 0;
  if (E & (EPOLLIN | EPOLLRDHUP))
    Out |= EvIn;
  if (E & EPOLLOUT)
    Out |= EvOut;
  if (E & EPOLLERR)
    Out |= EvErr;
  if (E & EPOLLHUP)
    Out |= EvHup;
  return Out;
}

uint32_t toEpoll(unsigned E) {
  uint32_t Out = 0;
  if (E & EvIn)
    Out |= EPOLLIN | EPOLLRDHUP;
  if (E & EvOut)
    Out |= EPOLLOUT;
  return Out;
}

class EpollPoller final : public Poller {
public:
  EpollPoller() : Ep(epoll_create1(EPOLL_CLOEXEC)) {}
  ~EpollPoller() override {
    if (Ep >= 0)
      ::close(Ep);
  }

  bool valid() const { return Ep >= 0; }

  bool add(int Fd, unsigned Events) override {
    return ctl(EPOLL_CTL_ADD, Fd, Events);
  }
  bool update(int Fd, unsigned Events) override {
    return ctl(EPOLL_CTL_MOD, Fd, Events);
  }
  bool remove(int Fd) override { return ctl(EPOLL_CTL_DEL, Fd, 0); }

  int wait(std::vector<PollEvent> &Out, int TimeoutMs) override {
    Out.clear();
    epoll_event Evs[64];
    int N = epoll_wait(Ep, Evs, 64, TimeoutMs);
    if (N < 0)
      return errno == EINTR ? 0 : -1;
    for (int I = 0; I < N; ++I)
      Out.push_back({Evs[I].data.fd, fromEpoll(Evs[I].events)});
    return N;
  }

  const char *backendName() const override { return "epoll"; }

private:
  bool ctl(int Op, int Fd, unsigned Events) {
    epoll_event E{};
    E.events = toEpoll(Events);
    E.data.fd = Fd;
    return epoll_ctl(Ep, Op, Fd, &E) == 0;
  }

  int Ep;
};

#endif // CDVS_NET_HAVE_EPOLL

/// Portable fallback: rebuilds the pollfd array from the watch map on
/// every wait. O(n) per call, which is fine at this server's connection
/// counts — correctness and portability are the point of this backend.
class PollPoller final : public Poller {
public:
  bool add(int Fd, unsigned Events) override {
    return Watches.emplace(Fd, Events).second;
  }
  bool update(int Fd, unsigned Events) override {
    auto It = Watches.find(Fd);
    if (It == Watches.end())
      return false;
    It->second = Events;
    return true;
  }
  bool remove(int Fd) override { return Watches.erase(Fd) > 0; }

  int wait(std::vector<PollEvent> &Out, int TimeoutMs) override {
    Out.clear();
    Fds.clear();
    for (const auto &[Fd, Events] : Watches) {
      pollfd P{};
      P.fd = Fd;
      P.events = static_cast<short>(((Events & EvIn) ? POLLIN : 0) |
                                    ((Events & EvOut) ? POLLOUT : 0));
      Fds.push_back(P);
    }
    int N = ::poll(Fds.data(), Fds.size(), TimeoutMs);
    if (N < 0)
      return errno == EINTR ? 0 : -1;
    for (const pollfd &P : Fds) {
      if (!P.revents)
        continue;
      unsigned E = 0;
      if (P.revents & POLLIN)
        E |= EvIn;
      if (P.revents & POLLOUT)
        E |= EvOut;
      if (P.revents & POLLERR)
        E |= EvErr;
      if (P.revents & (POLLHUP | POLLNVAL))
        E |= EvHup;
      Out.push_back({P.fd, E});
    }
    return N;
  }

  const char *backendName() const override { return "poll"; }

private:
  std::map<int, unsigned> Watches;
  std::vector<pollfd> Fds;
};

} // namespace

std::unique_ptr<Poller> Poller::create(bool ForcePoll) {
#if CDVS_NET_HAVE_EPOLL
  if (!ForcePoll) {
    auto Ep = std::make_unique<EpollPoller>();
    if (Ep->valid())
      return Ep;
  }
#else
  (void)ForcePoll;
#endif
  return std::make_unique<PollPoller>();
}

//===----------------------------------------------------------------------===//
// TimerWheel
//===----------------------------------------------------------------------===//

TimerWheel::TimerWheel(uint64_t TickNanos, size_t Slots_)
    : Slots(Slots_ < 2 ? 2 : Slots_),
      TickNanos(TickNanos < 1 ? 1 : TickNanos) {}

uint64_t TimerWheel::schedule(uint64_t NowNanos, uint64_t DelayNanos,
                              std::function<void()> Fn) {
  Timer T;
  T.Id = NextId++;
  T.DeadlineNanos = NowNanos + DelayNanos;
  T.Fn = std::move(Fn);
  uint64_t Id = T.Id;
  Slots[slotOf(T.DeadlineNanos)].push_back(std::move(T));
  ++Count;
  return Id;
}

bool TimerWheel::cancel(uint64_t Id) {
  for (auto &Slot : Slots) {
    for (auto It = Slot.begin(); It != Slot.end(); ++It) {
      if (It->Id == Id) {
        Slot.erase(It);
        --Count;
        return true;
      }
    }
  }
  return false;
}

size_t TimerWheel::advance(uint64_t NowNanos) {
  uint64_t NowTick = NowNanos / TickNanos;
  if (DoneTick == ~uint64_t{0} || DoneTick > NowTick)
    DoneTick = NowTick;

  // Collect first, fire after: callbacks may re-enter schedule/cancel.
  std::vector<std::function<void()>> Due;
  // Rescan from DoneTick itself: the current tick is never fully done —
  // a timer filed there with a deadline later in the tick must fire on
  // a later advance() within the same tick, not one rotation later.
  uint64_t FirstTick = DoneTick;
  // A gap longer than one rotation still only needs each slot once.
  if (NowTick - FirstTick + 1 >= Slots.size())
    FirstTick = NowTick + 1 - Slots.size();
  for (uint64_t Tick = FirstTick; Tick <= NowTick; ++Tick) {
    auto &Slot = Slots[static_cast<size_t>(Tick % Slots.size())];
    for (auto It = Slot.begin(); It != Slot.end();) {
      if (It->DeadlineNanos <= NowNanos) {
        Due.push_back(std::move(It->Fn));
        It = Slot.erase(It);
        --Count;
      } else {
        ++It;
      }
    }
  }
  DoneTick = NowTick;
  for (auto &Fn : Due)
    Fn();
  return Due.size();
}

int TimerWheel::pollTimeoutMs(uint64_t NowNanos) const {
  if (Count == 0)
    return -1;
  uint64_t NextTickNanos = (NowNanos / TickNanos + 1) * TickNanos;
  uint64_t DeltaMs = (NextTickNanos - NowNanos) / 1'000'000;
  return static_cast<int>(std::max<uint64_t>(1, DeltaMs));
}

//===----------------------------------------------------------------------===//
// WakeupFd
//===----------------------------------------------------------------------===//

WakeupFd::WakeupFd() {
#if CDVS_NET_HAVE_EPOLL
  int Fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (Fd >= 0) {
    ReadEnd = WriteEnd = Fd;
    return;
  }
#endif
  int Fds[2];
  if (::pipe(Fds) == 0) {
    setNonBlocking(Fds[0]);
    setNonBlocking(Fds[1]);
    ReadEnd = Fds[0];
    WriteEnd = Fds[1];
  }
}

WakeupFd::~WakeupFd() {
  if (ReadEnd >= 0)
    ::close(ReadEnd);
  if (WriteEnd >= 0 && WriteEnd != ReadEnd)
    ::close(WriteEnd);
}

void WakeupFd::notify() {
  if (WriteEnd < 0)
    return;
  uint64_t One = 1;
  // EAGAIN means a wakeup is already pending — exactly what we want.
  ssize_t R = ::write(WriteEnd, &One, sizeof(One));
  (void)R;
}

void WakeupFd::drain() {
  if (ReadEnd < 0)
    return;
  uint64_t Buf[32];
  while (::read(ReadEnd, Buf, sizeof(Buf)) > 0)
    ;
}

//===----------------------------------------------------------------------===//
// Socket helpers
//===----------------------------------------------------------------------===//

bool cdvs::net::setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

ErrorOr<int> cdvs::net::listenTcp(const std::string &BindAddress,
                                  uint16_t Port, int Backlog,
                                  bool ReusePort) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return makeError(std::string("socket: ") + std::strerror(errno));
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (ReusePort) {
#ifdef SO_REUSEPORT
    if (::setsockopt(Fd, SOL_SOCKET, SO_REUSEPORT, &One, sizeof(One)) !=
        0) {
      std::string E = std::strerror(errno);
      ::close(Fd);
      return makeError("setsockopt(SO_REUSEPORT): " + E);
    }
#else
    // Callers fall back to the accept-handoff path on this error.
    ::close(Fd);
    return makeError("SO_REUSEPORT unsupported on this platform");
#endif
  }

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, BindAddress.c_str(), &Addr.sin_addr) != 1) {
    ::close(Fd);
    return makeError("invalid bind address '" + BindAddress + "'");
  }
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    std::string E = std::strerror(errno);
    ::close(Fd);
    return makeError("bind " + BindAddress + ":" + std::to_string(Port) +
                     ": " + E);
  }
  if (::listen(Fd, Backlog) != 0) {
    std::string E = std::strerror(errno);
    ::close(Fd);
    return makeError("listen: " + E);
  }
  if (!setNonBlocking(Fd)) {
    ::close(Fd);
    return makeError("cannot set listener nonblocking");
  }
  return Fd;
}

ErrorOr<uint16_t> cdvs::net::localPort(int Fd) {
  sockaddr_in Addr{};
  socklen_t Len = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) != 0)
    return makeError(std::string("getsockname: ") + std::strerror(errno));
  return static_cast<uint16_t>(ntohs(Addr.sin_port));
}

ErrorOr<int> cdvs::net::connectTcp(const std::string &Host, uint16_t Port,
                                   int TimeoutMs) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return makeError(std::string("socket: ") + std::strerror(errno));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    ::close(Fd);
    return makeError("invalid address '" + Host +
                     "' (numeric IPv4 expected)");
  }

  // Nonblocking connect + poll gives the timeout; flip back to blocking
  // for the client's simple read/write loop.
  if (!setNonBlocking(Fd)) {
    ::close(Fd);
    return makeError("cannot set socket nonblocking");
  }
  int R = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  if (R != 0 && errno != EINPROGRESS) {
    std::string E = std::strerror(errno);
    ::close(Fd);
    return makeError("connect " + Host + ":" + std::to_string(Port) +
                     ": " + E);
  }
  if (R != 0) {
    pollfd P{};
    P.fd = Fd;
    P.events = POLLOUT;
    int N = ::poll(&P, 1, TimeoutMs);
    int SoErr = 0;
    socklen_t Len = sizeof(SoErr);
    if (N <= 0 ||
        ::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &SoErr, &Len) != 0 ||
        SoErr != 0) {
      std::string E = N <= 0 ? "timed out" : std::strerror(SoErr);
      ::close(Fd);
      return makeError("connect " + Host + ":" + std::to_string(Port) +
                       ": " + E);
    }
  }
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  ::fcntl(Fd, F_SETFL, Flags & ~O_NONBLOCK);
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return Fd;
}
