//===- net/Wire.cpp - cdvs-wire v1 framed protocol -------------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "net/Wire.h"

#include "service/JsonLite.h"

#include <cstring>

using namespace cdvs;
using namespace cdvs::net;

const char *cdvs::net::frameTypeName(FrameType Type) {
  switch (Type) {
  case FrameType::Request:
    return "request";
  case FrameType::Response:
    return "response";
  case FrameType::Reject:
    return "reject";
  case FrameType::Ping:
    return "ping";
  case FrameType::Pong:
    return "pong";
  case FrameType::PeerFetch:
    return "peer_fetch";
  case FrameType::PeerData:
    return "peer_data";
  case FrameType::StatsFetch:
    return "stats_fetch";
  case FrameType::StatsData:
    return "stats_data";
  case FrameType::GraphRequest:
    return "graph_request";
  case FrameType::GraphResponse:
    return "graph_response";
  }
  cdvsUnreachable("bad FrameType");
}

bool cdvs::net::validFrameType(uint8_t Raw) {
  return Raw >= static_cast<uint8_t>(FrameType::Request) &&
         Raw <= static_cast<uint8_t>(FrameType::GraphResponse);
}

const char *cdvs::net::wireStatusName(WireStatus Status) {
  switch (Status) {
  case WireStatus::Ok:
    return "ok";
  case WireStatus::NeedMore:
    return "need_more";
  case WireStatus::BadMagic:
    return "bad_magic";
  case WireStatus::BadVersion:
    return "bad_version";
  case WireStatus::BadType:
    return "bad_type";
  case WireStatus::BadReserved:
    return "bad_reserved";
  case WireStatus::BadExtension:
    return "bad_extension";
  case WireStatus::Oversized:
    return "too_large";
  }
  cdvsUnreachable("bad WireStatus");
}

void cdvs::net::encodeFrameHeader(const FrameHeader &H,
                                  unsigned char Out[kFrameHeaderBytes]) {
  std::memcpy(Out, kWireMagic, 4);
  Out[4] = kWireVersion;
  Out[5] = static_cast<unsigned char>(H.Type);
  Out[6] = H.ExtBytes;
  Out[7] = 0;
  for (int I = 0; I < 8; ++I)
    Out[8 + I] = static_cast<unsigned char>(H.Correlation >> (8 * I));
  for (int I = 0; I < 4; ++I)
    Out[16 + I] = static_cast<unsigned char>(H.PayloadBytes >> (8 * I));
}

std::string cdvs::net::encodeFrame(FrameType Type, uint64_t Correlation,
                                   const std::string &Payload) {
  return encodeFrame(Type, Correlation, Payload, nullptr);
}

std::string cdvs::net::encodeFrame(FrameType Type, uint64_t Correlation,
                                   const std::string &Payload,
                                   const TraceContext *Trace) {
  bool WithTrace = Trace && Trace->valid();
  FrameHeader H;
  H.Type = Type;
  H.ExtBytes = WithTrace ? static_cast<uint8_t>(2 + kExtTraceBytes) : 0;
  H.Correlation = Correlation;
  H.PayloadBytes = static_cast<uint32_t>(Payload.size());
  unsigned char Hdr[kFrameHeaderBytes];
  encodeFrameHeader(H, Hdr);
  std::string Out;
  Out.reserve(kFrameHeaderBytes + H.ExtBytes + Payload.size());
  Out.append(reinterpret_cast<const char *>(Hdr), kFrameHeaderBytes);
  if (WithTrace) {
    unsigned char Ext[2 + kExtTraceBytes];
    Ext[0] = kExtTrace;
    Ext[1] = kExtTraceBytes;
    for (int I = 0; I < 8; ++I)
      Ext[2 + I] = static_cast<unsigned char>(Trace->TraceHi >> (8 * I));
    for (int I = 0; I < 8; ++I)
      Ext[10 + I] = static_cast<unsigned char>(Trace->TraceLo >> (8 * I));
    for (int I = 0; I < 8; ++I)
      Ext[18 + I] =
          static_cast<unsigned char>(Trace->ParentSpan >> (8 * I));
    Ext[26] = Trace->Sampled ? 1 : 0;
    Out.append(reinterpret_cast<const char *>(Ext), sizeof(Ext));
  }
  Out += Payload;
  return Out;
}

WireStatus cdvs::net::decodeExtensions(const unsigned char *Data,
                                       size_t Len, TraceContext &Trace,
                                       bool &HasTrace) {
  size_t Pos = 0;
  while (Pos < Len) {
    // Every record needs its two-byte type/length prologue and `length`
    // data bytes inside the block — a truncated record is an error, not
    // a skip, because the block boundary is already known exactly.
    if (Pos + 2 > Len)
      return WireStatus::BadExtension;
    uint8_t RecType = Data[Pos];
    uint8_t RecLen = Data[Pos + 1];
    if (Pos + 2 + RecLen > Len)
      return WireStatus::BadExtension;
    const unsigned char *Rec = Data + Pos + 2;
    if (RecType == kExtTrace) {
      if (RecLen != kExtTraceBytes)
        return WireStatus::BadExtension;
      Trace.TraceHi = 0;
      Trace.TraceLo = 0;
      Trace.ParentSpan = 0;
      for (int I = 7; I >= 0; --I)
        Trace.TraceHi = (Trace.TraceHi << 8) | Rec[I];
      for (int I = 7; I >= 0; --I)
        Trace.TraceLo = (Trace.TraceLo << 8) | Rec[8 + I];
      for (int I = 7; I >= 0; --I)
        Trace.ParentSpan = (Trace.ParentSpan << 8) | Rec[16 + I];
      Trace.Sampled = (Rec[24] & 1) != 0;
      HasTrace = true;
    }
    // Unknown record types are skipped: that is how a newer sender
    // talks to this build without being rejected.
    Pos += 2 + static_cast<size_t>(RecLen);
  }
  return WireStatus::Ok;
}

WireStatus cdvs::net::decodeFrameHeader(const unsigned char *Data,
                                        size_t Len, size_t MaxPayloadBytes,
                                        FrameHeader &Out) {
  if (Len < kFrameHeaderBytes)
    return WireStatus::NeedMore;
  if (std::memcmp(Data, kWireMagic, 4) != 0)
    return WireStatus::BadMagic;
  if (Data[4] != kWireVersion)
    return WireStatus::BadVersion;
  if (!validFrameType(Data[5]))
    return WireStatus::BadType;
  if (Data[7] != 0)
    return WireStatus::BadReserved;
  Out.Type = static_cast<FrameType>(Data[5]);
  Out.ExtBytes = Data[6];
  Out.Correlation = 0;
  for (int I = 7; I >= 0; --I)
    Out.Correlation = (Out.Correlation << 8) | Data[8 + I];
  Out.PayloadBytes = 0;
  for (int I = 3; I >= 0; --I)
    Out.PayloadBytes = (Out.PayloadBytes << 8) | Data[16 + I];
  if (Out.PayloadBytes > MaxPayloadBytes)
    return WireStatus::Oversized;
  return WireStatus::Ok;
}

WireStatus cdvs::net::validateHeaderPrefix(const unsigned char *Data,
                                           size_t Len) {
  size_t MagicLen = Len < 4 ? Len : 4;
  if (std::memcmp(Data, kWireMagic, MagicLen) != 0)
    return WireStatus::BadMagic;
  if (Len > 4 && Data[4] != kWireVersion)
    return WireStatus::BadVersion;
  if (Len > 5 && !validFrameType(Data[5]))
    return WireStatus::BadType;
  // Byte 6 is the extension length — any value is structurally legal
  // here; byte 7 is still reserved-must-be-zero.
  if (Len > 7 && Data[7] != 0)
    return WireStatus::BadReserved;
  return WireStatus::Ok;
}

FrameParser::Next FrameParser::next(Frame &Out) {
  if (Err != WireStatus::Ok)
    return Next::Error;
  FrameHeader H;
  WireStatus S = decodeFrameHeader(
      reinterpret_cast<const unsigned char *>(Buf.data()), Buf.size(),
      MaxPayload, H);
  if (S == WireStatus::NeedMore) {
    // Garbage should fail on its first bytes, not stall until 20 of
    // them arrive (a peer that sends junk may never send more).
    WireStatus P = validateHeaderPrefix(
        reinterpret_cast<const unsigned char *>(Buf.data()), Buf.size());
    if (P != WireStatus::Ok) {
      Err = P;
      return Next::Error;
    }
    return Next::NeedMore;
  }
  if (S != WireStatus::Ok) {
    Err = S;
    return Next::Error;
  }
  size_t Total = kFrameHeaderBytes + H.ExtBytes + H.PayloadBytes;
  if (Buf.size() < Total)
    return Next::NeedMore;
  Out.Type = H.Type;
  Out.Correlation = H.Correlation;
  Out.Trace = TraceContext();
  Out.HasTrace = false;
  if (H.ExtBytes != 0) {
    WireStatus E = decodeExtensions(
        reinterpret_cast<const unsigned char *>(Buf.data()) +
            kFrameHeaderBytes,
        H.ExtBytes, Out.Trace, Out.HasTrace);
    if (E != WireStatus::Ok) {
      Err = E;
      return Next::Error;
    }
  }
  Out.Payload.assign(Buf, kFrameHeaderBytes + H.ExtBytes,
                     H.PayloadBytes);
  Buf.erase(0, Total);
  return Next::Frame;
}

std::string cdvs::net::encodeReject(const std::string &Code,
                                    const std::string &Reason) {
  return "{\"code\":\"" + jsonEscape(Code) + "\",\"reason\":\"" +
         jsonEscape(Reason) + "\"}";
}

ErrorOr<RejectInfo> cdvs::net::decodeReject(const std::string &Payload) {
  ErrorOr<JsonValue> V = parseJson(Payload);
  if (!V)
    return makeError("reject payload: " + V.message());
  const JsonValue *Code = V->find("code");
  const JsonValue *Reason = V->find("reason");
  if (!Code || !Code->isString() || !Reason || !Reason->isString())
    return makeError("reject payload needs string 'code' and 'reason'");
  return RejectInfo{Code->Str, Reason->Str};
}
