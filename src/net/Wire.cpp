//===- net/Wire.cpp - cdvs-wire v1 framed protocol -------------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "net/Wire.h"

#include "service/JsonLite.h"

#include <cstring>

using namespace cdvs;
using namespace cdvs::net;

const char *cdvs::net::frameTypeName(FrameType Type) {
  switch (Type) {
  case FrameType::Request:
    return "request";
  case FrameType::Response:
    return "response";
  case FrameType::Reject:
    return "reject";
  case FrameType::Ping:
    return "ping";
  case FrameType::Pong:
    return "pong";
  case FrameType::PeerFetch:
    return "peer_fetch";
  case FrameType::PeerData:
    return "peer_data";
  }
  cdvsUnreachable("bad FrameType");
}

bool cdvs::net::validFrameType(uint8_t Raw) {
  return Raw >= static_cast<uint8_t>(FrameType::Request) &&
         Raw <= static_cast<uint8_t>(FrameType::PeerData);
}

const char *cdvs::net::wireStatusName(WireStatus Status) {
  switch (Status) {
  case WireStatus::Ok:
    return "ok";
  case WireStatus::NeedMore:
    return "need_more";
  case WireStatus::BadMagic:
    return "bad_magic";
  case WireStatus::BadVersion:
    return "bad_version";
  case WireStatus::BadType:
    return "bad_type";
  case WireStatus::BadReserved:
    return "bad_reserved";
  case WireStatus::Oversized:
    return "too_large";
  }
  cdvsUnreachable("bad WireStatus");
}

void cdvs::net::encodeFrameHeader(const FrameHeader &H,
                                  unsigned char Out[kFrameHeaderBytes]) {
  std::memcpy(Out, kWireMagic, 4);
  Out[4] = kWireVersion;
  Out[5] = static_cast<unsigned char>(H.Type);
  Out[6] = 0;
  Out[7] = 0;
  for (int I = 0; I < 8; ++I)
    Out[8 + I] = static_cast<unsigned char>(H.Correlation >> (8 * I));
  for (int I = 0; I < 4; ++I)
    Out[16 + I] = static_cast<unsigned char>(H.PayloadBytes >> (8 * I));
}

std::string cdvs::net::encodeFrame(FrameType Type, uint64_t Correlation,
                                   const std::string &Payload) {
  FrameHeader H;
  H.Type = Type;
  H.Correlation = Correlation;
  H.PayloadBytes = static_cast<uint32_t>(Payload.size());
  unsigned char Hdr[kFrameHeaderBytes];
  encodeFrameHeader(H, Hdr);
  std::string Out;
  Out.reserve(kFrameHeaderBytes + Payload.size());
  Out.append(reinterpret_cast<const char *>(Hdr), kFrameHeaderBytes);
  Out += Payload;
  return Out;
}

WireStatus cdvs::net::decodeFrameHeader(const unsigned char *Data,
                                        size_t Len, size_t MaxPayloadBytes,
                                        FrameHeader &Out) {
  if (Len < kFrameHeaderBytes)
    return WireStatus::NeedMore;
  if (std::memcmp(Data, kWireMagic, 4) != 0)
    return WireStatus::BadMagic;
  if (Data[4] != kWireVersion)
    return WireStatus::BadVersion;
  if (!validFrameType(Data[5]))
    return WireStatus::BadType;
  if (Data[6] != 0 || Data[7] != 0)
    return WireStatus::BadReserved;
  Out.Type = static_cast<FrameType>(Data[5]);
  Out.Correlation = 0;
  for (int I = 7; I >= 0; --I)
    Out.Correlation = (Out.Correlation << 8) | Data[8 + I];
  Out.PayloadBytes = 0;
  for (int I = 3; I >= 0; --I)
    Out.PayloadBytes = (Out.PayloadBytes << 8) | Data[16 + I];
  if (Out.PayloadBytes > MaxPayloadBytes)
    return WireStatus::Oversized;
  return WireStatus::Ok;
}

WireStatus cdvs::net::validateHeaderPrefix(const unsigned char *Data,
                                           size_t Len) {
  size_t MagicLen = Len < 4 ? Len : 4;
  if (std::memcmp(Data, kWireMagic, MagicLen) != 0)
    return WireStatus::BadMagic;
  if (Len > 4 && Data[4] != kWireVersion)
    return WireStatus::BadVersion;
  if (Len > 5 && !validFrameType(Data[5]))
    return WireStatus::BadType;
  if ((Len > 6 && Data[6] != 0) || (Len > 7 && Data[7] != 0))
    return WireStatus::BadReserved;
  return WireStatus::Ok;
}

FrameParser::Next FrameParser::next(Frame &Out) {
  if (Err != WireStatus::Ok)
    return Next::Error;
  FrameHeader H;
  WireStatus S = decodeFrameHeader(
      reinterpret_cast<const unsigned char *>(Buf.data()), Buf.size(),
      MaxPayload, H);
  if (S == WireStatus::NeedMore) {
    // Garbage should fail on its first bytes, not stall until 20 of
    // them arrive (a peer that sends junk may never send more).
    WireStatus P = validateHeaderPrefix(
        reinterpret_cast<const unsigned char *>(Buf.data()), Buf.size());
    if (P != WireStatus::Ok) {
      Err = P;
      return Next::Error;
    }
    return Next::NeedMore;
  }
  if (S != WireStatus::Ok) {
    Err = S;
    return Next::Error;
  }
  if (Buf.size() < kFrameHeaderBytes + H.PayloadBytes)
    return Next::NeedMore;
  Out.Type = H.Type;
  Out.Correlation = H.Correlation;
  Out.Payload.assign(Buf, kFrameHeaderBytes, H.PayloadBytes);
  Buf.erase(0, kFrameHeaderBytes + H.PayloadBytes);
  return Next::Frame;
}

std::string cdvs::net::encodeReject(const std::string &Code,
                                    const std::string &Reason) {
  return "{\"code\":\"" + jsonEscape(Code) + "\",\"reason\":\"" +
         jsonEscape(Reason) + "\"}";
}

ErrorOr<RejectInfo> cdvs::net::decodeReject(const std::string &Payload) {
  ErrorOr<JsonValue> V = parseJson(Payload);
  if (!V)
    return makeError("reject payload: " + V.message());
  const JsonValue *Code = V->find("code");
  const JsonValue *Reason = V->find("reason");
  if (!Code || !Code->isString() || !Reason || !Reason->isString())
    return makeError("reject payload needs string 'code' and 'reason'");
  return RejectInfo{Code->Str, Reason->Str};
}
