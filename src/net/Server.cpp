//===- net/Server.cpp - epoll-based DVS scheduling server ------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "net/Server.h"

#include "obs/Metrics.h"
#include "service/JobIO.h"
#include "support/Clock.h"

#include <cerrno>
#include <cstring>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace cdvs;
using namespace cdvs::net;

namespace {

obs::Counter &framesCounter(FrameType Type, const char *Dir) {
  return obs::metrics().counter(
      "cdvs_net_frames_total", "cdvs-wire frames by type and direction",
      {{"type", frameTypeName(Type)}, {"dir", Dir}});
}

obs::Counter &bytesCounter(const char *Dir) {
  return obs::metrics().counter("cdvs_net_bytes_total",
                                "cdvs-wire payload+header bytes by direction",
                                {{"dir", Dir}});
}

obs::Gauge &connGauge(const char *State) {
  return obs::metrics().gauge("cdvs_net_connections",
                              "Open server connections by state",
                              {{"state", State}});
}

obs::Histogram &requestLatency() {
  return obs::metrics().histogram(
      "cdvs_net_request_latency_seconds",
      "Request receipt to response enqueue, per completed request",
      obs::latencyBucketsSeconds());
}

} // namespace

Server::Server(ServerOptions O)
    : Opts(std::move(O)), Service(Opts.Service) {}

Server::~Server() { stop(); }

ErrorOr<bool> Server::start() {
  if (LoopThread.joinable())
    return makeError("server already started");
  if (!Wakeup.valid())
    return makeError("wakeup descriptor unavailable");
  Io = Poller::create(Opts.ForcePoll);
  if (!Io)
    return makeError("no poll backend available");
  Backend = Io->backendName();

  ErrorOr<int> LFd = listenTcp(Opts.BindAddress, Opts.Port, Opts.Backlog);
  if (!LFd)
    return makeError(LFd.message());
  ListenFd = *LFd;
  ErrorOr<uint16_t> P = localPort(ListenFd);
  if (!P) {
    ::close(ListenFd);
    ListenFd = -1;
    return makeError(P.message());
  }
  BoundPort = *P;

  if (!Io->add(ListenFd, EvIn) || !Io->add(Wakeup.fd(), EvIn)) {
    ::close(ListenFd);
    ListenFd = -1;
    return makeError("failed to register listener with poller");
  }
  LoopThread = std::thread([this] { loop(); });
  return true;
}

void Server::beginDrain() {
  DrainRequested.store(true, std::memory_order_release);
  Wakeup.notify();
}

bool Server::waitDrained(double TimeoutSeconds) {
  std::unique_lock<std::mutex> L(StateMu);
  if (TimeoutSeconds <= 0)
    return Drained;
  return DrainedCv.wait_for(L,
                            std::chrono::duration<double>(TimeoutSeconds),
                            [this] { return Drained; });
}

void Server::stop() {
  StopRequested.store(true, std::memory_order_release);
  Wakeup.notify();
  if (LoopThread.joinable())
    LoopThread.join();
  // The loop is gone: late worker callbacks only append to Completions
  // and poke the wakeup fd, both of which stay valid until the members
  // destruct — after this shutdown() returns, no callback is running.
  Service.shutdown();
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> L(StateMu);
  return Counters;
}

//===----------------------------------------------------------------------===//
// Event loop (everything below runs on LoopThread only)
//===----------------------------------------------------------------------===//

void Server::loop() {
  std::vector<PollEvent> Events;
  while (!StopRequested.load(std::memory_order_acquire)) {
    if (DrainRequested.load(std::memory_order_acquire) && !DrainStarted)
      startDrainOnLoop();

    uint64_t Now = monotonicNanos();
    Wheel.advance(Now);
    handleCompletions(Now);
    finishDrainIfIdle();
    if (StopRequested.load(std::memory_order_acquire))
      break;

    int TimeoutMs = Wheel.pollTimeoutMs(monotonicNanos());
    int N = Io->wait(Events, TimeoutMs);
    if (N < 0)
      continue;
    Now = monotonicNanos();
    for (const PollEvent &E : Events) {
      if (E.Fd == Wakeup.fd()) {
        Wakeup.drain();
        continue;
      }
      if (E.Fd == ListenFd) {
        acceptReady(Now);
        continue;
      }
      auto It = ByFd.find(E.Fd);
      if (It == ByFd.end())
        continue;
      Connection &C = *It->second;
      uint64_t Id = C.Id;
      if (E.Events & EvErr) {
        closeConnection(Id);
        continue;
      }
      if (E.Events & EvOut) {
        writeReady(C);
        if (!ById.count(Id))
          continue;
      }
      if (E.Events & (EvIn | EvHup))
        readReady(C, Now);
    }
  }

  // Teardown: close every connection, then the listener.
  std::vector<uint64_t> Ids;
  Ids.reserve(ById.size());
  for (const auto &[Id, C] : ById)
    Ids.push_back(Id);
  for (uint64_t Id : Ids)
    closeConnection(Id);
  if (ListenFd >= 0) {
    Io->remove(ListenFd);
    ::close(ListenFd);
    ListenFd = -1;
  }
  Io->remove(Wakeup.fd());
}

void Server::acceptReady(uint64_t NowNs) {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break; // EAGAIN, or transient (ECONNABORTED, EMFILE): retry on
             // the next readiness edge
    }
    setNonBlocking(Fd);
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    if (Opts.SocketSendBufferBytes > 0)
      ::setsockopt(Fd, SOL_SOCKET, SO_SNDBUF, &Opts.SocketSendBufferBytes,
                   sizeof(Opts.SocketSendBufferBytes));

    if (ByFd.size() >= Opts.MaxConnections) {
      // Over the limit: one structured Reject, best effort, then close.
      std::string F = encodeFrame(FrameType::Reject, 0,
                                  encodeReject("overloaded",
                                               "connection limit reached"));
      (void)::send(Fd, F.data(), F.size(), MSG_NOSIGNAL);
      framesCounter(FrameType::Reject, "out").inc();
      // Count before close: a peer that has seen EOF must also see the
      // rejection in stats().
      {
        std::lock_guard<std::mutex> L(StateMu);
        ++Counters.ConnectionsRejected;
        ++Counters.RejectsSent;
      }
      ::close(Fd);
      obs::traceInstant("conn_reject", "net");
      continue;
    }

    auto C = std::make_unique<Connection>(Opts.MaxFrameBytes);
    C->Fd = Fd;
    C->Id = NextConnId++;
    C->Span = std::make_unique<obs::TraceSpan>("conn", "net");
    C->Subscribed = EvIn;
    Io->add(Fd, EvIn);
    armIdleTimer(*C, NowNs);
    ById[C->Id] = C.get();
    ByFd[Fd] = std::move(C);
    {
      std::lock_guard<std::mutex> L(StateMu);
      ++Counters.ConnectionsAccepted;
      Counters.OpenConnections = ByFd.size();
    }
    updateConnectionGauges();
  }
}

void Server::readReady(Connection &C, uint64_t NowNs) {
  if (C.ReadPaused || C.CloseAfterFlush || C.SawEof || DrainStarted)
    return;
  uint64_t Id = C.Id;
  char Buf[64 * 1024];
  long long Got = 0;
  bool PeerClosed = false;
  for (;;) {
    ssize_t N = ::recv(C.Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      C.Parser.feed(Buf, static_cast<size_t>(N));
      Got += N;
      continue;
    }
    if (N == 0) {
      PeerClosed = true;
      break;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    closeConnection(Id);
    return;
  }
  if (Got > 0) {
    bytesCounter("in").inc(static_cast<double>(Got));
    std::lock_guard<std::mutex> L(StateMu);
    Counters.BytesIn += Got;
  }
  armIdleTimer(C, NowNs);
  processFrames(C, NowNs);
  if (!ById.count(Id))
    return;
  if (PeerClosed) {
    if (C.Parser.buffered() > 0 && C.Parser.error() == WireStatus::Ok &&
        !C.CloseAfterFlush) {
      // Peer hung up mid-frame: a truncated frame is a framing error.
      {
        std::lock_guard<std::mutex> L(StateMu);
        ++Counters.ProtocolErrors;
      }
      sendReject(C, 0, "bad_frame", "connection closed mid-frame");
      if (!ById.count(Id))
        return;
      C.CloseAfterFlush = true;
    }
    // Half close: no more requests will arrive; answer what is in
    // flight, flush, then close.
    C.SawEof = true;
    writeReady(C);
  }
}

void Server::processFrames(Connection &C, uint64_t NowNs) {
  uint64_t Id = C.Id;
  for (;;) {
    if (C.CloseAfterFlush)
      return;
    Frame F;
    FrameParser::Next R = C.Parser.next(F);
    if (R == FrameParser::Next::NeedMore)
      return;
    if (R == FrameParser::Next::Error) {
      // The stream cannot be resynchronized: name the error, close.
      {
        std::lock_guard<std::mutex> L(StateMu);
        ++Counters.ProtocolErrors;
      }
      const char *Code = wireStatusName(C.Parser.error());
      sendReject(C, 0, Code, std::string("framing error: ") + Code);
      if (!ById.count(Id))
        return;
      C.CloseAfterFlush = true;
      updateSubscription(C);
      writeReady(C);
      return;
    }

    framesCounter(F.Type, "in").inc();
    {
      std::lock_guard<std::mutex> L(StateMu);
      ++Counters.FramesIn;
    }
    obs::TraceSpan Span("frame", "net");
    Span.arg("bytes", static_cast<double>(F.Payload.size()));

    switch (F.Type) {
    case FrameType::Ping:
      enqueueFrame(C, FrameType::Pong, F.Correlation, std::string());
      break;
    case FrameType::Request:
      handleRequest(C, F, NowNs);
      break;
    default:
      // Response/Reject/Pong are server-to-client only.
      {
        std::lock_guard<std::mutex> L(StateMu);
        ++Counters.ProtocolErrors;
      }
      sendReject(C, F.Correlation, "bad_frame",
                 std::string("unexpected client frame type '") +
                     frameTypeName(F.Type) + "'");
      if (!ById.count(Id))
        return;
      C.CloseAfterFlush = true;
      updateSubscription(C);
      writeReady(C);
      return;
    }
    if (!ById.count(Id))
      return;
  }
}

void Server::handleRequest(Connection &C, Frame &F, uint64_t NowNs) {
  if (DrainStarted) {
    sendReject(C, F.Correlation, "draining", "server is draining");
    return;
  }
  if (C.StartNs.count(F.Correlation) || C.TimedOut.count(F.Correlation)) {
    sendReject(C, F.Correlation, "bad_request",
               "correlation id already in flight");
    return;
  }
  ErrorOr<JobRequest> Req = jobRequestFromJsonText(F.Payload);
  if (!Req) {
    sendReject(C, F.Correlation, "bad_request", Req.message());
    return;
  }

  uint64_t ConnId = C.Id;
  uint64_t Corr = F.Correlation;
  C.StartNs[Corr] = NowNs;
  ++C.InFlight;
  if (Opts.RequestTimeoutMs > 0) {
    uint64_t Tid = Wheel.schedule(
        NowNs, Opts.RequestTimeoutMs * 1'000'000ull, [this, ConnId, Corr] {
          auto It = ById.find(ConnId);
          if (It == ById.end())
            return;
          Connection &TC = *It->second;
          if (!TC.StartNs.erase(Corr))
            return; // already answered
          TC.RequestTimers.erase(Corr);
          TC.TimedOut.insert(Corr);
          --TC.InFlight;
          {
            std::lock_guard<std::mutex> L(StateMu);
            ++Counters.RequestTimeouts;
          }
          sendReject(TC, Corr, "timeout", "request timed out");
        });
    C.RequestTimers[Corr] = Tid;
  }

  // The callback runs on a pipeline worker (or inline on this thread
  // when admission rejects): serialize there, hand the bytes to the
  // loop, wake it. Never touches connection state directly.
  Service.submitAsync(std::move(*Req), [this, ConnId, Corr](JobResult R) {
    Completion Cp;
    Cp.ConnId = ConnId;
    Cp.Correlation = Corr;
    Cp.Payload = jobResultToJson(R, /*IncludeSchedule=*/true);
    {
      std::lock_guard<std::mutex> L(CompletionsMu);
      Completions.push_back(std::move(Cp));
    }
    Wakeup.notify();
  });
}

void Server::handleCompletions(uint64_t NowNs) {
  std::vector<Completion> Batch;
  {
    std::lock_guard<std::mutex> L(CompletionsMu);
    Batch.swap(Completions);
  }
  for (Completion &Cp : Batch) {
    auto It = ById.find(Cp.ConnId);
    if (It == ById.end()) {
      std::lock_guard<std::mutex> L(StateMu);
      ++Counters.OrphanCompletions;
      continue;
    }
    Connection &C = *It->second;
    if (C.TimedOut.erase(Cp.Correlation)) {
      // Answered late; the client already got Reject{"timeout"}.
      std::lock_guard<std::mutex> L(StateMu);
      ++Counters.OrphanCompletions;
      continue;
    }
    auto SIt = C.StartNs.find(Cp.Correlation);
    if (SIt != C.StartNs.end()) {
      requestLatency().observe(
          static_cast<double>(NowNs - SIt->second) * 1e-9);
      C.StartNs.erase(SIt);
    }
    if (auto TIt = C.RequestTimers.find(Cp.Correlation);
        TIt != C.RequestTimers.end()) {
      Wheel.cancel(TIt->second);
      C.RequestTimers.erase(TIt);
    }
    --C.InFlight;
    enqueueFrame(C, FrameType::Response, Cp.Correlation, Cp.Payload);
  }
}

void Server::enqueueFrame(Connection &C, FrameType Type,
                          uint64_t Correlation,
                          const std::string &Payload) {
  uint64_t Id = C.Id;
  std::string Data = encodeFrame(Type, Correlation, Payload);
  C.WriteQBytes += Data.size();
  C.WriteQ.push_back(std::move(Data));
  framesCounter(Type, "out").inc();
  {
    std::lock_guard<std::mutex> L(StateMu);
    ++Counters.FramesOut;
  }
  writeReady(C);
  if (!ById.count(Id))
    return;
  if (!C.ReadPaused && C.WriteQBytes > Opts.WriteQueueHighWater) {
    // Backpressure: stop reading this connection; the kernel socket
    // buffer then pushes back on the sender.
    C.ReadPaused = true;
    {
      std::lock_guard<std::mutex> L(StateMu);
      ++Counters.ReadPauses;
    }
    obs::traceInstant("read_pause", "net", "queued_bytes",
                      static_cast<double>(C.WriteQBytes));
    updateSubscription(C);
  }
}

void Server::sendReject(Connection &C, uint64_t Correlation,
                        const std::string &Code,
                        const std::string &Reason) {
  {
    std::lock_guard<std::mutex> L(StateMu);
    ++Counters.RejectsSent;
  }
  enqueueFrame(C, FrameType::Reject, Correlation,
               encodeReject(Code, Reason));
}

void Server::writeReady(Connection &C) {
  uint64_t Id = C.Id;
  long long Sent = 0;
  bool Dead = false;
  {
    // Count under the lock, held across the sends: a peer that has
    // received a frame and then asks stats() must see its bytes — the
    // snapshot blocks until this loop's increments are in.
    std::lock_guard<std::mutex> L(StateMu);
    while (!C.WriteQ.empty()) {
      const std::string &Front = C.WriteQ.front();
      ssize_t N = ::send(C.Fd, Front.data() + C.WriteOff,
                         Front.size() - C.WriteOff, MSG_NOSIGNAL);
      if (N > 0) {
        Sent += N;
        Counters.BytesOut += N;
        C.WriteOff += static_cast<size_t>(N);
        if (C.WriteOff == Front.size()) {
          C.WriteQBytes -= Front.size();
          C.WriteQ.pop_front();
          C.WriteOff = 0;
        }
        continue;
      }
      if (N < 0 && errno == EINTR)
        continue;
      if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
        break;
      Dead = true;
      break;
    }
  }
  if (Dead) {
    closeConnection(Id);
    return;
  }
  if (Sent > 0)
    bytesCounter("out").inc(static_cast<double>(Sent));
  if (C.ReadPaused && !C.CloseAfterFlush &&
      C.WriteQBytes < Opts.WriteQueueLowWater) {
    C.ReadPaused = false;
    obs::traceInstant("read_resume", "net");
  }
  if (C.WriteQ.empty()) {
    bool Done = C.CloseAfterFlush ||
                ((C.SawEof || DrainStarted) && C.InFlight == 0);
    if (Done) {
      closeConnection(Id);
      return;
    }
  }
  updateSubscription(C);
}

void Server::updateSubscription(Connection &C) {
  unsigned Want = 0;
  if (!C.ReadPaused && !C.CloseAfterFlush && !C.SawEof && !DrainStarted)
    Want |= EvIn;
  if (!C.WriteQ.empty())
    Want |= EvOut;
  if (Want != C.Subscribed) {
    Io->update(C.Fd, Want);
    C.Subscribed = Want;
  }
}

void Server::armIdleTimer(Connection &C, uint64_t NowNs) {
  if (Opts.IdleTimeoutMs == 0)
    return;
  if (C.IdleTimer)
    Wheel.cancel(C.IdleTimer);
  uint64_t ConnId = C.Id;
  C.IdleTimer = Wheel.schedule(
      NowNs, Opts.IdleTimeoutMs * 1'000'000ull, [this, ConnId] {
        auto It = ById.find(ConnId);
        if (It == ById.end())
          return;
        Connection &IC = *It->second;
        IC.IdleTimer = 0;
        if (IC.InFlight > 0 || !IC.WriteQ.empty()) {
          // Waiting on our own pipeline is not idleness; re-arm.
          armIdleTimer(IC, monotonicNanos());
          return;
        }
        {
          std::lock_guard<std::mutex> L(StateMu);
          ++Counters.IdleCloses;
        }
        IC.CloseAfterFlush = true;
        sendReject(IC, 0, "idle_timeout", "connection idle");
      });
}

void Server::closeConnection(uint64_t ConnId) {
  auto It = ById.find(ConnId);
  if (It == ById.end())
    return;
  Connection *C = It->second;
  if (C->IdleTimer)
    Wheel.cancel(C->IdleTimer);
  for (const auto &[Corr, Tid] : C->RequestTimers)
    Wheel.cancel(Tid);
  Io->remove(C->Fd);
  ::close(C->Fd);
  int Fd = C->Fd;
  ById.erase(It);
  ByFd.erase(Fd); // destroys C; its Span records the conn lifetime
  {
    std::lock_guard<std::mutex> L(StateMu);
    ++Counters.ConnectionsClosed;
    Counters.OpenConnections = ByFd.size();
  }
  updateConnectionGauges();
  finishDrainIfIdle();
}

void Server::startDrainOnLoop() {
  DrainStarted = true;
  obs::traceInstant("drain_begin", "net");
  if (ListenFd >= 0) {
    Io->remove(ListenFd);
    ::close(ListenFd);
    ListenFd = -1;
  }
  std::vector<uint64_t> Ids;
  Ids.reserve(ById.size());
  for (const auto &[Id, C] : ById)
    Ids.push_back(Id);
  for (uint64_t Id : Ids) {
    auto It = ById.find(Id);
    if (It == ById.end())
      continue;
    // Stop reading; flush what is queued; writeReady closes the
    // connection once nothing is queued and nothing is in flight.
    updateSubscription(*It->second);
    writeReady(*It->second);
  }
  updateConnectionGauges();
  finishDrainIfIdle();
}

void Server::finishDrainIfIdle() {
  if (!DrainStarted || !ByFd.empty())
    return;
  {
    std::lock_guard<std::mutex> L(StateMu);
    if (Drained)
      return;
    Drained = true;
  }
  obs::traceInstant("drain_done", "net");
  DrainedCv.notify_all();
}

void Server::updateConnectionGauges() {
  connGauge("open").set(static_cast<double>(ByFd.size()));
  connGauge("draining").set(
      DrainStarted ? static_cast<double>(ByFd.size()) : 0.0);
}
