//===- net/Server.cpp - multi-reactor DVS scheduling server ----------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "net/Server.h"

#include "service/JobIO.h"
#include "support/Clock.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace cdvs;
using namespace cdvs::net;

namespace {

std::string reactorLabel(int Index) { return std::to_string(Index); }

obs::Counter &framesCounter(int Reactor, FrameType Type, const char *Dir) {
  return obs::metrics().counter(
      "cdvs_net_frames_total", "cdvs-wire frames by type and direction",
      {{"type", frameTypeName(Type)},
       {"dir", Dir},
       {"reactor", reactorLabel(Reactor)}});
}

obs::Counter &shedsCounter(int Reactor, const char *Class) {
  return obs::metrics().counter(
      "cdvs_net_sheds_total",
      "Load-shedding rejects by reactor and deadline class",
      {{"reactor", reactorLabel(Reactor)}, {"class", Class}});
}

} // namespace

//===----------------------------------------------------------------------===//
// CompletionQueue
//===----------------------------------------------------------------------===//

Server::CompletionQueue::~CompletionQueue() {
  Node *N = Head.exchange(nullptr, std::memory_order_acquire);
  while (N) {
    Node *Next = N->Next;
    delete N;
    N = Next;
  }
}

void Server::CompletionQueue::push(Completion C) {
  Node *N = new Node{std::move(C), nullptr};
  Node *Old = Head.load(std::memory_order_relaxed);
  do {
    N->Next = Old;
  } while (!Head.compare_exchange_weak(Old, N, std::memory_order_release,
                                       std::memory_order_relaxed));
  Depth.fetch_add(1, std::memory_order_relaxed);
}

void Server::CompletionQueue::drainTo(std::vector<Completion> &Out) {
  Node *N = Head.exchange(nullptr, std::memory_order_acquire);
  if (!N)
    return;
  // The Treiber list is LIFO; reverse it so completions deliver in
  // rough arrival order.
  Node *Prev = nullptr;
  long Count = 0;
  while (N) {
    Node *Next = N->Next;
    N->Next = Prev;
    Prev = N;
    N = Next;
    ++Count;
  }
  for (N = Prev; N;) {
    Out.push_back(std::move(N->C));
    Node *Next = N->Next;
    delete N;
    N = Next;
  }
  Depth.fetch_sub(Count, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

Server::Server(ServerOptions O)
    : Opts(std::move(O)), Service(Opts.Service) {}

Server::~Server() { stop(); }

ErrorOr<bool> Server::start() {
  if (!Reactors.empty())
    return makeError("server already started");

  NumReactors = Opts.Reactors;
  if (NumReactors <= 0) {
    unsigned HW = std::thread::hardware_concurrency();
    NumReactors = HW == 0 ? 1 : static_cast<int>(HW);
  }
  NumReactors = std::min(NumReactors, 64);

  for (int I = 0; I < NumReactors; ++I) {
    auto R = std::make_unique<Reactor>();
    R->Index = I;
    R->NextConnId = static_cast<uint64_t>(I) + 1;
    if (!R->Wakeup.valid())
      return makeError("wakeup descriptor unavailable");
    R->Io = Poller::create(Opts.ForcePoll);
    if (!R->Io)
      return makeError("no poll backend available");
    Reactors.push_back(std::move(R));
  }
  Backend = Reactors[0]->Io->backendName();

  auto CloseListeners = [this] {
    for (auto &R : Reactors)
      if (R->ListenFd >= 0) {
        ::close(R->ListenFd);
        R->ListenFd = -1;
      }
  };

  // One REUSEPORT listener per reactor lets the kernel spread accepts;
  // any bind failure (kernel without reusable ports) falls back to a
  // single listener owned by reactor 0 plus fd handoff.
  ReusePortActive = false;
  if (NumReactors > 1 && !Opts.ForceAcceptHandoff) {
    ErrorOr<int> First =
        listenTcp(Opts.BindAddress, Opts.Port, Opts.Backlog,
                  /*ReusePort=*/true);
    if (First) {
      Reactors[0]->ListenFd = *First;
      ErrorOr<uint16_t> P = localPort(*First);
      if (!P) {
        CloseListeners();
        return makeError(P.message());
      }
      BoundPort = *P;
      ReusePortActive = true;
      for (int I = 1; I < NumReactors && ReusePortActive; ++I) {
        ErrorOr<int> LFd = listenTcp(Opts.BindAddress, BoundPort,
                                     Opts.Backlog, /*ReusePort=*/true);
        if (LFd)
          Reactors[I]->ListenFd = *LFd;
        else
          ReusePortActive = false;
      }
      if (!ReusePortActive)
        CloseListeners();
    }
  }
  if (!ReusePortActive) {
    ErrorOr<int> LFd =
        listenTcp(Opts.BindAddress, Opts.Port, Opts.Backlog);
    if (!LFd)
      return makeError(LFd.message());
    Reactors[0]->ListenFd = *LFd;
    ErrorOr<uint16_t> P = localPort(*LFd);
    if (!P) {
      CloseListeners();
      return makeError(P.message());
    }
    BoundPort = *P;
  }

  for (auto &R : Reactors) {
    if ((R->ListenFd >= 0 && !R->Io->add(R->ListenFd, EvIn)) ||
        !R->Io->add(R->Wakeup.fd(), EvIn)) {
      CloseListeners();
      return makeError("failed to register listener with poller");
    }
  }

  obs::metrics()
      .gauge("cdvs_net_reactors", "Reactor threads serving this process")
      .set(static_cast<double>(NumReactors));
  for (auto &RPtr : Reactors) {
    Reactor &R = *RPtr;
    obs::Labels L{{"reactor", reactorLabel(R.Index)}};
    R.AcceptsCtr = &obs::metrics().counter(
        "cdvs_net_accepts_total", "Connections accepted per reactor", L);
    R.FramesInCtr = &framesCounter(R.Index, FrameType::Request, "in");
    R.FramesOutCtr = &framesCounter(R.Index, FrameType::Response, "out");
    R.BytesInCtr = &obs::metrics().counter(
        "cdvs_net_bytes_total",
        "cdvs-wire payload+header bytes by direction",
        {{"dir", "in"}, {"reactor", reactorLabel(R.Index)}});
    R.BytesOutCtr = &obs::metrics().counter(
        "cdvs_net_bytes_total",
        "cdvs-wire payload+header bytes by direction",
        {{"dir", "out"}, {"reactor", reactorLabel(R.Index)}});
    R.OpenGauge = &obs::metrics().gauge(
        "cdvs_net_connections", "Open server connections by state",
        {{"state", "open"}, {"reactor", reactorLabel(R.Index)}});
    R.DrainGauge = &obs::metrics().gauge(
        "cdvs_net_connections", "Open server connections by state",
        {{"state", "draining"}, {"reactor", reactorLabel(R.Index)}});
    R.CqDepthGauge = &obs::metrics().gauge(
        "cdvs_net_completion_queue_depth",
        "Peak completions drained from one reactor's queue in a batch",
        L);
    R.LatencyHist = &obs::metrics().histogram(
        "cdvs_net_request_latency_seconds",
        "Request receipt to response enqueue, per completed request",
        obs::latencyBucketsSeconds(), L);
    // Pre-register the shed classes so cdvs_net_sheds_total exists in
    // every snapshot (dvs-stat --check), sheds or none.
    for (const char *Cls : {"lax", "hard", "slow_frame"})
      (void)shedsCounter(R.Index, Cls);
  }

  for (auto &R : Reactors) {
    Reactor *RP = R.get();
    R->Thread = std::thread([this, RP] { loop(*RP); });
  }
  return true;
}

void Server::beginDrain() {
  DrainRequested.store(true, std::memory_order_release);
  for (auto &R : Reactors)
    R->Wakeup.notify();
}

bool Server::waitDrained(double TimeoutSeconds) {
  std::unique_lock<std::mutex> L(StateMu);
  if (TimeoutSeconds <= 0)
    return Drained;
  return DrainedCv.wait_for(L,
                            std::chrono::duration<double>(TimeoutSeconds),
                            [this] { return Drained; });
}

void Server::stop() {
  StopRequested.store(true, std::memory_order_release);
  for (auto &R : Reactors)
    R->Wakeup.notify();
  for (auto &R : Reactors)
    if (R->Thread.joinable())
      R->Thread.join();
  // The reactors are gone: late worker callbacks only push onto a
  // CompletionQueue and poke a wakeup fd, both of which stay valid
  // until the members destruct — after this shutdown() returns, no
  // callback is running.
  Service.shutdown();
}

ServerStats Server::stats() const {
  ServerStats Out;
  for (const auto &R : Reactors) {
    std::lock_guard<std::mutex> L(R->StatsMu);
    const ServerStats &C = R->Counters;
    Out.ConnectionsAccepted += C.ConnectionsAccepted;
    Out.ConnectionsRejected += C.ConnectionsRejected;
    Out.ConnectionsClosed += C.ConnectionsClosed;
    Out.FramesIn += C.FramesIn;
    Out.FramesOut += C.FramesOut;
    Out.BytesIn += C.BytesIn;
    Out.BytesOut += C.BytesOut;
    Out.RejectsSent += C.RejectsSent;
    Out.ProtocolErrors += C.ProtocolErrors;
    Out.IdleCloses += C.IdleCloses;
    Out.RequestTimeouts += C.RequestTimeouts;
    Out.SlowFrameCloses += C.SlowFrameCloses;
    Out.LoadSheds += C.LoadSheds;
    Out.PeerFetches += C.PeerFetches;
    Out.PeerFetchHits += C.PeerFetchHits;
    Out.HandoffAccepts += C.HandoffAccepts;
    Out.ReadPauses += C.ReadPauses;
    Out.OrphanCompletions += C.OrphanCompletions;
    Out.OpenConnections += C.OpenConnections;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Reactor loop (everything below runs on one reactor's thread only)
//===----------------------------------------------------------------------===//

void Server::loop(Reactor &R) {
  std::vector<PollEvent> Events;
  while (!StopRequested.load(std::memory_order_acquire)) {
    if (DrainRequested.load(std::memory_order_acquire) && !R.DrainStarted)
      startDrainOnLoop(R);

    uint64_t Now = monotonicNanos();
    R.Wheel.advance(Now);
    adoptHandoff(R, Now);
    handleCompletions(R, Now);
    finishDrainIfIdle(R);
    if (StopRequested.load(std::memory_order_acquire))
      break;

    int TimeoutMs = R.Wheel.pollTimeoutMs(monotonicNanos());
    int N = R.Io->wait(Events, TimeoutMs);
    if (N < 0)
      continue;
    Now = monotonicNanos();
    for (const PollEvent &E : Events) {
      if (E.Fd == R.Wakeup.fd()) {
        R.Wakeup.drain();
        continue;
      }
      if (E.Fd == R.ListenFd && R.ListenFd >= 0) {
        acceptReady(R, Now);
        continue;
      }
      auto It = R.ByFd.find(E.Fd);
      if (It == R.ByFd.end())
        continue;
      Connection &C = *It->second;
      uint64_t Id = C.Id;
      if (E.Events & EvErr) {
        closeConnection(R, Id);
        continue;
      }
      if (E.Events & EvOut) {
        writeReady(R, C);
        if (!R.ById.count(Id))
          continue;
      }
      if (E.Events & (EvIn | EvHup))
        readReady(R, C, Now);
    }
  }
  teardown(R);
}

void Server::teardown(Reactor &R) {
  std::vector<uint64_t> Ids;
  Ids.reserve(R.ById.size());
  for (const auto &[Id, C] : R.ById)
    Ids.push_back(Id);
  for (uint64_t Id : Ids)
    closeConnection(R, Id);
  if (R.ListenFd >= 0) {
    R.Io->remove(R.ListenFd);
    ::close(R.ListenFd);
    R.ListenFd = -1;
  }
  // Handed-off fds this reactor never adopted still need closing.
  std::vector<int> Orphans;
  {
    std::lock_guard<std::mutex> L(R.HandoffMu);
    Orphans.swap(R.Handoff);
  }
  for (int Fd : Orphans)
    ::close(Fd);
  R.Io->remove(R.Wakeup.fd());
}

void Server::acceptReady(Reactor &R, uint64_t NowNs) {
  for (;;) {
    int Fd = ::accept(R.ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break; // EAGAIN, or transient (ECONNABORTED, EMFILE): retry on
             // the next readiness edge
    }
    setNonBlocking(Fd);
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    if (Opts.SocketSendBufferBytes > 0)
      ::setsockopt(Fd, SOL_SOCKET, SO_SNDBUF, &Opts.SocketSendBufferBytes,
                   sizeof(Opts.SocketSendBufferBytes));

    if (OpenConns.load(std::memory_order_relaxed) >=
        static_cast<long>(Opts.MaxConnections)) {
      rejectAccept(R, Fd);
      continue;
    }

    if (!ReusePortActive && NumReactors > 1) {
      // Handoff fallback: round-robin accepted fds across the peers
      // (including this reactor, so the acceptor serves its share).
      Reactor &Target = *Reactors[HandoffCursor++ % NumReactors];
      if (&Target != &R) {
        {
          std::lock_guard<std::mutex> L(Target.HandoffMu);
          Target.Handoff.push_back(Fd);
        }
        Target.Wakeup.notify();
        continue;
      }
    }
    adoptConnection(R, Fd, NowNs);
  }
}

void Server::rejectAccept(Reactor &R, int Fd) {
  // Over the limit: one structured Reject, best effort, then close.
  std::string F = encodeFrame(FrameType::Reject, 0,
                              encodeReject("overloaded",
                                           "connection limit reached"));
  (void)::send(Fd, F.data(), F.size(), MSG_NOSIGNAL);
  framesCounter(R.Index, FrameType::Reject, "out").inc();
  // Count before close: a peer that has seen EOF must also see the
  // rejection in stats().
  {
    std::lock_guard<std::mutex> L(R.StatsMu);
    ++R.Counters.ConnectionsRejected;
    ++R.Counters.RejectsSent;
  }
  ::close(Fd);
  obs::traceInstant("conn_reject", "net");
}

void Server::adoptHandoff(Reactor &R, uint64_t NowNs) {
  std::vector<int> Fds;
  {
    std::lock_guard<std::mutex> L(R.HandoffMu);
    Fds.swap(R.Handoff);
  }
  for (int Fd : Fds) {
    if (R.DrainStarted || StopRequested.load(std::memory_order_acquire)) {
      ::close(Fd);
      continue;
    }
    adoptConnection(R, Fd, NowNs);
    {
      std::lock_guard<std::mutex> L(R.StatsMu);
      ++R.Counters.HandoffAccepts;
    }
  }
}

void Server::adoptConnection(Reactor &R, int Fd, uint64_t NowNs) {
  auto C = std::make_unique<Connection>(Opts.MaxFrameBytes);
  C->Fd = Fd;
  C->Id = R.NextConnId;
  R.NextConnId += static_cast<uint64_t>(NumReactors);
  C->Span = std::make_unique<obs::TraceSpan>("conn", "net");
  C->Subscribed = EvIn;
  R.Io->add(Fd, EvIn);
  armIdleTimer(R, *C, NowNs);
  R.ById[C->Id] = C.get();
  R.ByFd[Fd] = std::move(C);
  OpenConns.fetch_add(1, std::memory_order_relaxed);
  R.AcceptsCtr->inc();
  {
    std::lock_guard<std::mutex> L(R.StatsMu);
    ++R.Counters.ConnectionsAccepted;
    R.Counters.OpenConnections = R.ByFd.size();
  }
  updateConnectionGauges(R);
}

void Server::readReady(Reactor &R, Connection &C, uint64_t NowNs) {
  if (C.ReadPaused || C.CloseAfterFlush || C.SawEof || R.DrainStarted)
    return;
  uint64_t Id = C.Id;
  char Buf[64 * 1024];
  long long Got = 0;
  bool PeerClosed = false;
  for (;;) {
    ssize_t N = ::recv(C.Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      C.Parser.feed(Buf, static_cast<size_t>(N));
      Got += N;
      continue;
    }
    if (N == 0) {
      PeerClosed = true;
      break;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    closeConnection(R, Id);
    return;
  }
  if (Got > 0) {
    R.BytesInCtr->inc(static_cast<double>(Got));
    std::lock_guard<std::mutex> L(R.StatsMu);
    R.Counters.BytesIn += Got;
  }
  armIdleTimer(R, C, NowNs);
  size_t Extracted = processFrames(R, C, NowNs);
  if (!R.ById.count(Id))
    return;
  trackFrameProgress(R, C, Extracted, NowNs);
  if (PeerClosed) {
    if (C.Parser.buffered() > 0 && C.Parser.error() == WireStatus::Ok &&
        !C.CloseAfterFlush) {
      // Peer hung up mid-frame: a truncated frame is a framing error.
      {
        std::lock_guard<std::mutex> L(R.StatsMu);
        ++R.Counters.ProtocolErrors;
      }
      sendReject(R, C, 0, "bad_frame", "connection closed mid-frame");
      if (!R.ById.count(Id))
        return;
      C.CloseAfterFlush = true;
    }
    // Half close: no more requests will arrive; answer what is in
    // flight, flush, then close.
    C.SawEof = true;
    writeReady(R, C);
  }
}

size_t Server::processFrames(Reactor &R, Connection &C, uint64_t NowNs) {
  uint64_t Id = C.Id;
  size_t Extracted = 0;
  for (;;) {
    if (C.CloseAfterFlush)
      return Extracted;
    Frame F;
    FrameParser::Next Res = C.Parser.next(F);
    if (Res == FrameParser::Next::NeedMore)
      return Extracted;
    if (Res == FrameParser::Next::Error) {
      // The stream cannot be resynchronized: name the error, close.
      {
        std::lock_guard<std::mutex> L(R.StatsMu);
        ++R.Counters.ProtocolErrors;
      }
      const char *Code = wireStatusName(C.Parser.error());
      sendReject(R, C, 0, Code, std::string("framing error: ") + Code);
      if (!R.ById.count(Id))
        return Extracted;
      C.CloseAfterFlush = true;
      updateSubscription(R, C);
      writeReady(R, C);
      return Extracted;
    }

    ++Extracted;
    if (F.Type == FrameType::Request)
      R.FramesInCtr->inc(); // hot path: skip the registry lock
    else
      framesCounter(R.Index, F.Type, "in").inc();
    {
      std::lock_guard<std::mutex> L(R.StatsMu);
      ++R.Counters.FramesIn;
    }
    // Install the frame's trace context (or clear any stale one) so
    // every span below — and the JobRequest handed to the pipeline —
    // inherits the sender's trace id.
    obs::SpanContext FrameCtx;
    if (F.HasTrace) {
      FrameCtx.TraceHi = F.Trace.TraceHi;
      FrameCtx.TraceLo = F.Trace.TraceLo;
      FrameCtx.Span = F.Trace.ParentSpan;
      FrameCtx.Sampled = F.Trace.Sampled;
    }
    obs::ScopedSpanContext CtxGuard(FrameCtx);
    obs::TraceSpan Span("frame", "net");
    Span.arg("bytes", static_cast<double>(F.Payload.size()));

    switch (F.Type) {
    case FrameType::Ping:
      // The monotonic-clock stamp lets scrapers align per-process
      // clocks from the RTT midpoint; old clients ignore Pong payloads.
      enqueueFrame(R, C, FrameType::Pong, F.Correlation,
                   "{\"now_ns\":" + std::to_string(monotonicNanos()) +
                       "}");
      break;
    case FrameType::Request:
    case FrameType::GraphRequest:
      handleRequest(R, C, F, NowNs);
      break;
    case FrameType::PeerFetch:
      handlePeerFetch(R, C, F);
      break;
    case FrameType::StatsFetch:
      handleStatsFetch(R, C, F);
      break;
    default:
      // Response/Reject/Pong/PeerData are server-to-client only.
      {
        std::lock_guard<std::mutex> L(R.StatsMu);
        ++R.Counters.ProtocolErrors;
      }
      sendReject(R, C, F.Correlation, "bad_frame",
                 std::string("unexpected client frame type '") +
                     frameTypeName(F.Type) + "'");
      if (!R.ById.count(Id))
        return Extracted;
      C.CloseAfterFlush = true;
      updateSubscription(R, C);
      writeReady(R, C);
      return Extracted;
    }
    if (!R.ById.count(Id))
      return Extracted;
  }
}

const char *Server::shedClass(const Reactor &R, const Frame &F) const {
  if (Opts.ShedHighWater == 0 ||
      static_cast<size_t>(R.PendingJobs) < Opts.ShedHighWater)
    return nullptr;
  size_t Hard = Opts.ShedHardWater ? Opts.ShedHardWater
                                   : Opts.ShedHighWater * 2;
  if (static_cast<size_t>(R.PendingJobs) >= Hard)
    return "hard";
  // Deadline class from a cheap payload scan — the full JSON parse is
  // exactly what an overloaded reactor must not pay per shed request.
  if (peekDeadlineTightness(F.Payload, /*Fallback=*/0.5) >=
      Opts.ShedLaxTightness)
    return "lax";
  return nullptr;
}

void Server::handleRequest(Reactor &R, Connection &C, Frame &F,
                           uint64_t NowNs) {
  if (R.DrainStarted) {
    sendReject(R, C, F.Correlation, "draining", "server is draining");
    return;
  }
  if (C.StartNs.count(F.Correlation) || C.TimedOut.count(F.Correlation)) {
    sendReject(R, C, F.Correlation, "bad_request",
               "correlation id already in flight");
    return;
  }
  if (const char *Class = shedClass(R, F)) {
    shedsCounter(R.Index, Class).inc();
    {
      std::lock_guard<std::mutex> L(R.StatsMu);
      ++R.Counters.LoadSheds;
    }
    sendReject(R, C, F.Correlation, "shed",
               std::string("overloaded: ") + Class +
                   "-class request shed at " +
                   std::to_string(R.PendingJobs) + " pending");
    return;
  }
  ErrorOr<JobRequest> Req = jobRequestFromJsonText(F.Payload);
  if (!Req) {
    sendReject(R, C, F.Correlation, "bad_request", Req.message());
    return;
  }
  // The frame kind must match the payload kind: routers key graph jobs
  // on graph content from the frame type alone, so a mismatch means
  // someone is mislabeling traffic — refuse it rather than schedule it.
  bool IsGraph = F.Type == FrameType::GraphRequest;
  if ((Req->Graph != nullptr) != IsGraph) {
    sendReject(R, C, F.Correlation, "bad_request",
               IsGraph ? "graph_request frame without a graph payload"
                       : "graph payloads must use graph_request frames");
    return;
  }
  // Hand the pipeline the thread's current context (the frame span when
  // tracing is on, else the sender's raw context): the job span and
  // everything under it, including peer fills, join the same trace.
  obs::SpanContext Ctx = obs::currentSpanContext();
  if (Ctx.valid()) {
    Req->TraceHi = Ctx.TraceHi;
    Req->TraceLo = Ctx.TraceLo;
    Req->TraceParentSpan = Ctx.Span;
    Req->TraceSampled = Ctx.Sampled;
  }

  uint64_t ConnId = C.Id;
  uint64_t Corr = F.Correlation;
  C.StartNs[Corr] = NowNs;
  ++C.InFlight;
  ++R.PendingJobs;
  if (Opts.RequestTimeoutMs > 0) {
    Reactor *RP = &R;
    uint64_t Tid = R.Wheel.schedule(
        NowNs, Opts.RequestTimeoutMs * 1'000'000ull,
        [this, RP, ConnId, Corr] {
          auto It = RP->ById.find(ConnId);
          if (It == RP->ById.end())
            return;
          Connection &TC = *It->second;
          if (!TC.StartNs.erase(Corr))
            return; // already answered
          TC.RequestTimers.erase(Corr);
          TC.TimedOut.insert(Corr);
          --TC.InFlight;
          {
            std::lock_guard<std::mutex> L(RP->StatsMu);
            ++RP->Counters.RequestTimeouts;
          }
          sendReject(*RP, TC, Corr, "timeout", "request timed out");
        });
    C.RequestTimers[Corr] = Tid;
  }

  // The callback runs on a pipeline worker (or inline on this thread
  // when admission rejects): serialize there, push the bytes onto the
  // owning reactor's lock-free completion queue, wake that reactor.
  // Never touches connection state directly.
  Reactor *RP = &R;
  FrameType AnswerType =
      IsGraph ? FrameType::GraphResponse : FrameType::Response;
  Service.submitAsync(std::move(*Req),
                      [RP, ConnId, Corr, AnswerType](JobResult Res) {
    Completion Cp;
    Cp.ConnId = ConnId;
    Cp.Correlation = Corr;
    Cp.Payload = jobResultToJson(Res, /*IncludeSchedule=*/true);
    Cp.Type = AnswerType;
    RP->CQ.push(std::move(Cp));
    RP->Wakeup.notify();
  });
}

void Server::handlePeerFetch(Reactor &R, Connection &C, Frame &F) {
  // Served inline on the reactor: a peek is two map lookups under a
  // shard lock, orders of magnitude under a frame round trip, and peer
  // probes must stay cheap even while the pipeline is saturated.
  ErrorOr<std::string> Fp = peerFetchFromJsonText(F.Payload);
  if (!Fp) {
    sendReject(R, C, F.Correlation, "bad_request", Fp.message());
    return;
  }
  obs::TraceSpan Span("peer_serve", "net");
  std::shared_ptr<const CachedSchedule> Hit = Service.cachePeek(*Fp);
  Span.arg("hit", Hit ? 1.0 : 0.0);
  {
    std::lock_guard<std::mutex> L(R.StatsMu);
    ++R.Counters.PeerFetches;
    if (Hit)
      ++R.Counters.PeerFetchHits;
  }
  enqueueFrame(R, C, FrameType::PeerData, F.Correlation,
               peerDataToJson(Hit.get()));
}

void Server::handleStatsFetch(Reactor &R, Connection &C, Frame &F) {
  // Served inline on the reactor like PeerFetch: the renders take the
  // registry/ring locks briefly, and scrapes are rare (human or CI
  // cadence) next to request traffic.
  static obs::Counter &Scrapes = obs::metrics().counter(
      "cdvs_stats_scrapes_total",
      "StatsFetch scrapes answered over the wire.");
  Scrapes.inc();
  std::string Payload = "{\"role\":\"server\",\"pid\":" +
                        std::to_string(static_cast<long>(getpid())) +
                        ",\"now_ns\":" +
                        std::to_string(monotonicNanos()) +
                        ",\"trace_dropped\":" +
                        std::to_string(obs::trace().dropped()) +
                        ",\"metrics\":\"" +
                        jsonEscape(obs::metrics().renderPrometheus()) +
                        "\",\"trace\":" +
                        obs::trace().renderChromeTrace(
                            static_cast<int>(getpid()), "dvs-server") +
                        "}";
  enqueueFrame(R, C, FrameType::StatsData, F.Correlation, Payload);
}

void Server::handleCompletions(Reactor &R, uint64_t NowNs) {
  std::vector<Completion> Batch;
  R.CQ.drainTo(Batch);
  if (Batch.empty())
    return;
  R.CqDepthGauge->max(static_cast<double>(Batch.size()));
  for (Completion &Cp : Batch) {
    --R.PendingJobs;
    auto It = R.ById.find(Cp.ConnId);
    if (It == R.ById.end()) {
      std::lock_guard<std::mutex> L(R.StatsMu);
      ++R.Counters.OrphanCompletions;
      continue;
    }
    Connection &C = *It->second;
    if (C.TimedOut.erase(Cp.Correlation)) {
      // Answered late; the client already got Reject{"timeout"}.
      std::lock_guard<std::mutex> L(R.StatsMu);
      ++R.Counters.OrphanCompletions;
      continue;
    }
    auto SIt = C.StartNs.find(Cp.Correlation);
    if (SIt != C.StartNs.end()) {
      R.LatencyHist->observe(static_cast<double>(NowNs - SIt->second) *
                             1e-9);
      C.StartNs.erase(SIt);
    }
    if (auto TIt = C.RequestTimers.find(Cp.Correlation);
        TIt != C.RequestTimers.end()) {
      R.Wheel.cancel(TIt->second);
      C.RequestTimers.erase(TIt);
    }
    --C.InFlight;
    enqueueFrame(R, C, Cp.Type, Cp.Correlation, Cp.Payload);
  }
}

void Server::enqueueFrame(Reactor &R, Connection &C, FrameType Type,
                          uint64_t Correlation,
                          const std::string &Payload) {
  uint64_t Id = C.Id;
  std::string Data = encodeFrame(Type, Correlation, Payload);
  C.WriteQBytes += Data.size();
  C.WriteQ.push_back(std::move(Data));
  if (Type == FrameType::Response)
    R.FramesOutCtr->inc(); // hot path: skip the registry lock
  else
    framesCounter(R.Index, Type, "out").inc();
  {
    std::lock_guard<std::mutex> L(R.StatsMu);
    ++R.Counters.FramesOut;
  }
  writeReady(R, C);
  if (!R.ById.count(Id))
    return;
  if (!C.ReadPaused && C.WriteQBytes > Opts.WriteQueueHighWater) {
    // Backpressure: stop reading this connection; the kernel socket
    // buffer then pushes back on the sender.
    C.ReadPaused = true;
    {
      std::lock_guard<std::mutex> L(R.StatsMu);
      ++R.Counters.ReadPauses;
    }
    obs::traceInstant("read_pause", "net", "queued_bytes",
                      static_cast<double>(C.WriteQBytes));
    updateSubscription(R, C);
  }
}

void Server::sendReject(Reactor &R, Connection &C, uint64_t Correlation,
                        const std::string &Code,
                        const std::string &Reason) {
  {
    std::lock_guard<std::mutex> L(R.StatsMu);
    ++R.Counters.RejectsSent;
  }
  enqueueFrame(R, C, FrameType::Reject, Correlation,
               encodeReject(Code, Reason));
}

void Server::writeReady(Reactor &R, Connection &C) {
  uint64_t Id = C.Id;
  long long Sent = 0;
  bool Dead = false;
  {
    // Count under the lock, held across the sends: a peer that has
    // received a frame and then asks stats() must see its bytes — the
    // snapshot blocks until this loop's increments are in.
    std::lock_guard<std::mutex> L(R.StatsMu);
    while (!C.WriteQ.empty()) {
      const std::string &Front = C.WriteQ.front();
      ssize_t N = ::send(C.Fd, Front.data() + C.WriteOff,
                         Front.size() - C.WriteOff, MSG_NOSIGNAL);
      if (N > 0) {
        Sent += N;
        R.Counters.BytesOut += N;
        C.WriteOff += static_cast<size_t>(N);
        if (C.WriteOff == Front.size()) {
          C.WriteQBytes -= Front.size();
          C.WriteQ.pop_front();
          C.WriteOff = 0;
        }
        continue;
      }
      if (N < 0 && errno == EINTR)
        continue;
      if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
        break;
      Dead = true;
      break;
    }
  }
  if (Dead) {
    closeConnection(R, Id);
    return;
  }
  if (Sent > 0)
    R.BytesOutCtr->inc(static_cast<double>(Sent));
  if (C.ReadPaused && !C.CloseAfterFlush &&
      C.WriteQBytes < Opts.WriteQueueLowWater) {
    C.ReadPaused = false;
    obs::traceInstant("read_resume", "net");
  }
  if (C.WriteQ.empty()) {
    bool Done = C.CloseAfterFlush ||
                ((C.SawEof || R.DrainStarted) && C.InFlight == 0);
    if (Done) {
      closeConnection(R, Id);
      return;
    }
  }
  updateSubscription(R, C);
}

void Server::updateSubscription(Reactor &R, Connection &C) {
  unsigned Want = 0;
  if (!C.ReadPaused && !C.CloseAfterFlush && !C.SawEof && !R.DrainStarted)
    Want |= EvIn;
  if (!C.WriteQ.empty())
    Want |= EvOut;
  if (Want != C.Subscribed) {
    R.Io->update(C.Fd, Want);
    C.Subscribed = Want;
  }
}

void Server::armIdleTimer(Reactor &R, Connection &C, uint64_t NowNs) {
  if (Opts.IdleTimeoutMs == 0)
    return;
  if (C.IdleTimer)
    R.Wheel.cancel(C.IdleTimer);
  uint64_t ConnId = C.Id;
  Reactor *RP = &R;
  C.IdleTimer = R.Wheel.schedule(
      NowNs, Opts.IdleTimeoutMs * 1'000'000ull, [this, RP, ConnId] {
        auto It = RP->ById.find(ConnId);
        if (It == RP->ById.end())
          return;
        Connection &IC = *It->second;
        IC.IdleTimer = 0;
        if (IC.InFlight > 0 || !IC.WriteQ.empty()) {
          // Waiting on our own pipeline is not idleness; re-arm.
          armIdleTimer(*RP, IC, monotonicNanos());
          return;
        }
        {
          std::lock_guard<std::mutex> L(RP->StatsMu);
          ++RP->Counters.IdleCloses;
        }
        IC.CloseAfterFlush = true;
        sendReject(*RP, IC, 0, "idle_timeout", "connection idle");
      });
}

void Server::trackFrameProgress(Reactor &R, Connection &C,
                                size_t Extracted, uint64_t NowNs) {
  if (Opts.SlowFrameTimeoutMs == 0 || C.CloseAfterFlush)
    return;
  if (C.Parser.buffered() == 0) {
    // Clean frame boundary: nothing half-received, no deadline.
    if (C.SlowTimer) {
      R.Wheel.cancel(C.SlowTimer);
      C.SlowTimer = 0;
    }
    return;
  }
  // A partial frame is buffered. Restart the clock when the connection
  // made frame progress; keep the old deadline when it only dribbled.
  if (C.SlowTimer) {
    if (Extracted == 0)
      return;
    R.Wheel.cancel(C.SlowTimer);
  }
  uint64_t ConnId = C.Id;
  Reactor *RP = &R;
  C.SlowTimer = R.Wheel.schedule(
      NowNs, Opts.SlowFrameTimeoutMs * 1'000'000ull, [this, RP, ConnId] {
        auto It = RP->ById.find(ConnId);
        if (It == RP->ById.end())
          return;
        Connection &SC = *It->second;
        SC.SlowTimer = 0;
        if (SC.Parser.buffered() == 0 || SC.CloseAfterFlush)
          return; // completed in the same tick, or already closing
        shedsCounter(RP->Index, "slow_frame").inc();
        {
          std::lock_guard<std::mutex> L(RP->StatsMu);
          ++RP->Counters.SlowFrameCloses;
        }
        sendReject(*RP, SC, 0, "slow_frame",
                   "frame not completed in time");
        auto AIt = RP->ById.find(ConnId);
        if (AIt == RP->ById.end())
          return;
        SC.CloseAfterFlush = true;
        updateSubscription(*RP, SC);
        writeReady(*RP, SC);
      });
}

void Server::closeConnection(Reactor &R, uint64_t ConnId) {
  auto It = R.ById.find(ConnId);
  if (It == R.ById.end())
    return;
  Connection *C = It->second;
  if (C->IdleTimer)
    R.Wheel.cancel(C->IdleTimer);
  if (C->SlowTimer)
    R.Wheel.cancel(C->SlowTimer);
  for (const auto &[Corr, Tid] : C->RequestTimers)
    R.Wheel.cancel(Tid);
  R.Io->remove(C->Fd);
  ::close(C->Fd);
  int Fd = C->Fd;
  R.ById.erase(It);
  R.ByFd.erase(Fd); // destroys C; its Span records the conn lifetime
  OpenConns.fetch_sub(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> L(R.StatsMu);
    ++R.Counters.ConnectionsClosed;
    R.Counters.OpenConnections = R.ByFd.size();
  }
  updateConnectionGauges(R);
  finishDrainIfIdle(R);
}

void Server::startDrainOnLoop(Reactor &R) {
  R.DrainStarted = true;
  obs::traceInstant("drain_begin", "net");
  if (R.ListenFd >= 0) {
    R.Io->remove(R.ListenFd);
    ::close(R.ListenFd);
    R.ListenFd = -1;
  }
  // Connections handed off but not yet adopted close unopened.
  adoptHandoff(R, monotonicNanos());
  std::vector<uint64_t> Ids;
  Ids.reserve(R.ById.size());
  for (const auto &[Id, C] : R.ById)
    Ids.push_back(Id);
  for (uint64_t Id : Ids) {
    auto It = R.ById.find(Id);
    if (It == R.ById.end())
      continue;
    // Stop reading; flush what is queued; writeReady closes the
    // connection once nothing is queued and nothing is in flight.
    updateSubscription(R, *It->second);
    writeReady(R, *It->second);
  }
  updateConnectionGauges(R);
  finishDrainIfIdle(R);
}

void Server::finishDrainIfIdle(Reactor &R) {
  if (!R.DrainStarted || R.DrainedLocal || !R.ByFd.empty())
    return;
  R.DrainedLocal = true;
  obs::traceInstant("drain_done", "net");
  if (DrainedReactors.fetch_add(1, std::memory_order_acq_rel) + 1 <
      NumReactors)
    return;
  {
    std::lock_guard<std::mutex> L(StateMu);
    Drained = true;
  }
  DrainedCv.notify_all();
}

void Server::updateConnectionGauges(Reactor &R) {
  R.OpenGauge->set(static_cast<double>(R.ByFd.size()));
  R.DrainGauge->set(
      R.DrainStarted ? static_cast<double>(R.ByFd.size()) : 0.0);
}
