//===- net/EventLoop.h - Readiness polling, timers, sockets -----*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The OS-facing substrate of net::Server: a readiness Poller (epoll on
/// Linux, poll(2) everywhere — and on Linux too when forced, so the
/// fallback stays tested), a hashed TimerWheel for the server's idle and
/// request deadlines, a WakeupFd that lets worker threads nudge the
/// event loop (eventfd, or a self-pipe where eventfd is unavailable),
/// and small nonblocking-TCP helpers shared with net::Client.
///
/// Everything here is single-owner: a Poller/TimerWheel belongs to one
/// loop thread and is not thread-safe; WakeupFd::notify() is the one
/// cross-thread entry point (a single write syscall, async-signal-safe).
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_NET_EVENTLOOP_H
#define CDVS_NET_EVENTLOOP_H

#include "support/Error.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace cdvs {
namespace net {

/// Readiness bits, backend-neutral.
enum : unsigned {
  EvIn = 1u << 0,  ///< readable (or pending accept)
  EvOut = 1u << 1, ///< writable
  EvErr = 1u << 2, ///< error condition
  EvHup = 1u << 3, ///< peer hung up
};

/// One ready descriptor from Poller::wait().
struct PollEvent {
  int Fd = -1;
  unsigned Events = 0;
};

/// Readiness notification backend. add/update/remove return false on OS
/// errors (a closed fd, exhausted watch table); wait() returns the
/// number of events delivered, 0 on timeout, -1 on unrecoverable error.
class Poller {
public:
  virtual ~Poller() = default;

  virtual bool add(int Fd, unsigned Events) = 0;
  virtual bool update(int Fd, unsigned Events) = 0;
  virtual bool remove(int Fd) = 0;
  /// Blocks up to \p TimeoutMs (-1 = forever) and appends ready fds to
  /// \p Out (cleared first).
  virtual int wait(std::vector<PollEvent> &Out, int TimeoutMs) = 0;
  virtual const char *backendName() const = 0;

  /// Builds the platform's best backend; \p ForcePoll selects the
  /// portable poll(2) backend even where epoll exists (tests, the
  /// server's --poll escape hatch).
  static std::unique_ptr<Poller> create(bool ForcePoll = false);
};

/// Hashed timer wheel: O(1) schedule/cancel, ticks scanned lazily from
/// advance(). Deadlines farther out than one rotation stay filed in
/// their slot and are skipped (by deadline comparison) until their
/// rotation comes around. Granularity is TickNanos — callbacks fire on
/// the first advance() past their deadline, so they can be late by one
/// tick plus the poll latency, which is exactly right for multi-second
/// idle/request timeouts.
class TimerWheel {
public:
  explicit TimerWheel(uint64_t TickNanos = 10'000'000 /* 10 ms */,
                      size_t Slots = 512);

  /// Files \p Fn to run once \p DelayNanos after \p NowNanos.
  /// \returns a nonzero id for cancel().
  uint64_t schedule(uint64_t NowNanos, uint64_t DelayNanos,
                    std::function<void()> Fn);

  /// Unfiles a pending timer. \returns false when the id already fired,
  /// was cancelled, or never existed.
  bool cancel(uint64_t Id);

  /// Fires every timer whose deadline is <= \p NowNanos. Callbacks run
  /// after the wheel's bookkeeping, so they may schedule() and cancel()
  /// freely. \returns the number fired.
  size_t advance(uint64_t NowNanos);

  size_t pending() const { return Count; }

  /// Poll timeout that will not oversleep the next tick: -1 when no
  /// timers are filed, otherwise the ms until the next tick boundary
  /// (at least 1).
  int pollTimeoutMs(uint64_t NowNanos) const;

private:
  struct Timer {
    uint64_t Id = 0;
    uint64_t DeadlineNanos = 0;
    std::function<void()> Fn;
  };

  size_t slotOf(uint64_t DeadlineNanos) const {
    return static_cast<size_t>((DeadlineNanos / TickNanos) %
                               Slots.size());
  }

  std::vector<std::vector<Timer>> Slots;
  uint64_t TickNanos;
  uint64_t NextId = 1;
  size_t Count = 0;
  /// Last tick advance() scanned; rescanned by the next advance() since
  /// timers later in it may not have been due yet. ~0 until first call.
  uint64_t DoneTick = ~uint64_t{0};
};

/// Cross-thread wakeup for the event loop: notify() from any thread
/// makes the loop's poll return; the loop drains with drain(). Backed
/// by eventfd(2) on Linux, a nonblocking self-pipe elsewhere.
class WakeupFd {
public:
  WakeupFd();
  ~WakeupFd();
  WakeupFd(const WakeupFd &) = delete;
  WakeupFd &operator=(const WakeupFd &) = delete;

  bool valid() const { return ReadEnd >= 0; }
  /// The fd the loop registers for EvIn.
  int fd() const { return ReadEnd; }
  /// Thread-safe; coalesces with pending notifications.
  void notify();
  /// Loop-side: consumes all pending notifications.
  void drain();

private:
  int ReadEnd = -1;
  int WriteEnd = -1; ///< == ReadEnd for eventfd
};

/// Marks \p Fd nonblocking (O_NONBLOCK). \returns false on error.
bool setNonBlocking(int Fd);

/// Opens a nonblocking listening TCP socket on \p BindAddress:\p Port
/// (SO_REUSEADDR; port 0 picks an ephemeral port). With \p ReusePort
/// the socket also sets SO_REUSEPORT so several listeners can share the
/// port (one per reactor) and the kernel spreads accepts across them;
/// where the platform lacks SO_REUSEPORT the call fails rather than
/// silently binding exclusively, so callers can fall back to a
/// single-acceptor handoff. \returns the fd.
ErrorOr<int> listenTcp(const std::string &BindAddress, uint16_t Port,
                       int Backlog, bool ReusePort = false);

/// The locally bound port of \p Fd (after listenTcp with port 0).
ErrorOr<uint16_t> localPort(int Fd);

/// Blocking-style TCP connect with a timeout, returning a *blocking*
/// connected socket (TCP_NODELAY set — the wire protocol is
/// request/response and Nagle would serialize pipelined frames).
ErrorOr<int> connectTcp(const std::string &Host, uint16_t Port,
                        int TimeoutMs);

} // namespace net
} // namespace cdvs

#endif // CDVS_NET_EVENTLOOP_H
