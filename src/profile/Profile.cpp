//===- profile/Profile.cpp - Profiles feeding the DVS MILP ----------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "profile/Profile.h"

#include <cassert>

using namespace cdvs;

Profile cdvs::collectProfile(Simulator &Sim, const ModeTable &Modes,
                             int ReferenceMode) {
  const int NumModes = static_cast<int>(Modes.size());
  if (ReferenceMode < 0)
    ReferenceMode = NumModes - 1; // fastest
  assert(ReferenceMode < NumModes && "reference mode out of range");

  Profile P;
  P.NumBlocks = Sim.function().numBlocks();
  P.NumModes = NumModes;
  P.TimePerInvocation.assign(P.NumBlocks,
                             std::vector<double>(NumModes, 0.0));
  P.EnergyPerInvocation.assign(P.NumBlocks,
                               std::vector<double>(NumModes, 0.0));
  P.TotalTimeAtMode.assign(NumModes, 0.0);
  P.TotalEnergyAtMode.assign(NumModes, 0.0);

  uint64_t FirstInstructions = 0;
  for (int M = 0; M < NumModes; ++M) {
    RunStats S = Sim.runAtLevel(Modes.level(M));
    assert(S.Completed && "profiling run hit the instruction cap");
    // Control flow must be mode-invariant (paper assumption 1).
    if (M == 0)
      FirstInstructions = S.Instructions;
    assert(S.Instructions == FirstInstructions &&
           "control flow varied across modes");
    (void)FirstInstructions;
    P.TotalTimeAtMode[M] = S.TimeSeconds;
    P.TotalEnergyAtMode[M] = S.EnergyJoules;
    for (int B = 0; B < P.NumBlocks; ++B) {
      if (S.BlockExecs[B] == 0)
        continue;
      double Execs = static_cast<double>(S.BlockExecs[B]);
      P.TimePerInvocation[B][M] = S.BlockTimeSeconds[B] / Execs;
      P.EnergyPerInvocation[B][M] = S.BlockEnergyJoules[B] / Execs;
    }
    if (M == ReferenceMode) {
      P.BlockExecs = S.BlockExecs;
      P.EdgeCounts = S.EdgeCounts;
      P.PathCounts = S.PathCounts;
      P.Reference = S;
    }
  }
  return P;
}
