//===- profile/Profile.h - Profiles feeding the DVS MILP --------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Profiling data in exactly the shape the paper's MILP consumes
/// (Section 4.2): per-block, per-mode invocation time Tjm and energy Ejm,
/// edge counts Gij, and local-path counts Dhij. A Profiler produces one
/// Profile per input by running the simulator once per available mode —
/// per-mode profiling is required because memory asynchrony makes
/// execution time a non-linear function of clock frequency.
///
/// Multiple input categories (Section 4.3) are a vector of Profiles with
/// occurrence probabilities.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_PROFILE_PROFILE_H
#define CDVS_PROFILE_PROFILE_H

#include "sim/Simulator.h"

#include <map>
#include <vector>

namespace cdvs {

/// Profile of one program on one input over all modes of a ModeTable.
struct Profile {
  int NumBlocks = 0;
  int NumModes = 0;

  /// TimePerInvocation[j][m] — seconds per invocation of block j at
  /// mode m (Tjm). Blocks never executed have zero rows.
  std::vector<std::vector<double>> TimePerInvocation;
  /// EnergyPerInvocation[j][m] — joules per invocation (Ejm).
  std::vector<std::vector<double>> EnergyPerInvocation;

  std::vector<uint64_t> BlockExecs;         ///< at the reference mode
  std::map<CfgEdge, uint64_t> EdgeCounts;   ///< Gij
  std::map<LocalPath, uint64_t> PathCounts; ///< Dhij

  /// Whole-program time/energy when run entirely at each mode
  /// (Table 4's "exec time at 200/600/800 MHz" columns).
  std::vector<double> TotalTimeAtMode;
  std::vector<double> TotalEnergyAtMode;

  /// Reference-mode run statistics (analytic parameter extraction).
  RunStats Reference;
};

/// One input category for the multi-data-set formulation: a profile plus
/// its probability pg.
struct CategoryProfile {
  Profile Data;
  double Probability = 1.0;
};

/// Runs a configured Simulator once per mode and assembles a Profile.
///
/// The caller owns simulator setup (registers/memory = the input data
/// set). The reference mode (default: fastest) provides edge/path counts;
/// control flow is input-deterministic, so counts agree across modes —
/// asserted cheaply via total instruction counts.
Profile collectProfile(Simulator &Sim, const ModeTable &Modes,
                       int ReferenceMode = -1);

} // namespace cdvs

#endif // CDVS_PROFILE_PROFILE_H
