//===- taskgraph/TaskGraph.cpp - DAG workload model -----------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "taskgraph/TaskGraph.h"

#include "support/Hash.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <queue>
#include <set>
#include <unordered_set>

namespace cdvs {
namespace taskgraph {

ErrorOr<bool> validateGraph(const TaskGraph &G) {
  if (G.Nodes.empty())
    return makeError("task graph '" + G.Name + "' has no nodes");
  std::unordered_set<std::string> Names;
  for (size_t I = 0; I < G.Nodes.size(); ++I) {
    const TaskNode &N = G.Nodes[I];
    if (N.Name.empty())
      return makeError("task graph '" + G.Name + "': node " +
                       std::to_string(I) + " has an empty name");
    for (char C : N.Name)
      if (!(std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
            C == '-' || C == '.'))
        return makeError("task graph '" + G.Name + "': task name '" +
                         N.Name +
                         "' contains characters outside [A-Za-z0-9_.-]");
    if (!Names.insert(N.Name).second)
      return makeError("task graph '" + G.Name + "': duplicate task name '" +
                       N.Name + "'");
    if (N.Workload.empty())
      return makeError("task graph '" + G.Name + "': task '" + N.Name +
                       "' has an empty workload");
    if (!(N.ActualFactor > 0.0) || !std::isfinite(N.ActualFactor))
      return makeError("task graph '" + G.Name + "': task '" + N.Name +
                       "' has non-positive or non-finite actual factor");
  }
  const int NumNodes = static_cast<int>(G.Nodes.size());
  std::set<std::pair<int, int>> Seen;
  for (const auto &E : G.Edges) {
    if (E.first < 0 || E.first >= NumNodes || E.second < 0 ||
        E.second >= NumNodes)
      return makeError("task graph '" + G.Name + "': edge (" +
                       std::to_string(E.first) + ", " +
                       std::to_string(E.second) + ") is out of range");
    if (E.first == E.second)
      return makeError("task graph '" + G.Name + "': self edge on task '" +
                       G.Nodes[E.first].Name + "'");
    if (!Seen.insert(E).second)
      return makeError("task graph '" + G.Name + "': duplicate edge (" +
                       G.Nodes[E.first].Name + " -> " +
                       G.Nodes[E.second].Name + ")");
  }
  // Acyclicity falls out of Kahn's algorithm below; run it here so a
  // caller that only validates still rejects cyclic graphs.
  std::vector<int> InDegree(NumNodes, 0);
  for (const auto &E : G.Edges)
    ++InDegree[E.second];
  std::priority_queue<int, std::vector<int>, std::greater<int>> Ready;
  for (int I = 0; I < NumNodes; ++I)
    if (InDegree[I] == 0)
      Ready.push(I);
  std::vector<std::vector<int>> Succ(NumNodes);
  for (const auto &E : G.Edges)
    Succ[E.first].push_back(E.second);
  int Emitted = 0;
  while (!Ready.empty()) {
    int N = Ready.top();
    Ready.pop();
    ++Emitted;
    for (int S : Succ[N])
      if (--InDegree[S] == 0)
        Ready.push(S);
  }
  if (Emitted != NumNodes)
    return makeError("task graph '" + G.Name + "' has a precedence cycle");
  return true;
}

ErrorOr<std::vector<int>> topoOrder(const TaskGraph &G) {
  ErrorOr<bool> Valid = validateGraph(G);
  if (!Valid)
    return makeError(Valid.message());
  const int NumNodes = static_cast<int>(G.Nodes.size());
  std::vector<int> InDegree(NumNodes, 0);
  std::vector<std::vector<int>> Succ(NumNodes);
  for (const auto &E : G.Edges) {
    ++InDegree[E.second];
    Succ[E.first].push_back(E.second);
  }
  std::priority_queue<int, std::vector<int>, std::greater<int>> Ready;
  for (int I = 0; I < NumNodes; ++I)
    if (InDegree[I] == 0)
      Ready.push(I);
  std::vector<int> Order;
  Order.reserve(NumNodes);
  while (!Ready.empty()) {
    int N = Ready.top();
    Ready.pop();
    Order.push_back(N);
    for (int S : Succ[N])
      if (--InDegree[S] == 0)
        Ready.push(S);
  }
  return Order;
}

std::vector<std::vector<int>> predecessorsOf(const TaskGraph &G) {
  std::vector<std::vector<int>> Pred(G.Nodes.size());
  for (const auto &E : G.Edges)
    Pred[E.second].push_back(E.first);
  for (auto &P : Pred)
    std::sort(P.begin(), P.end());
  return Pred;
}

std::vector<std::vector<int>> successorsOf(const TaskGraph &G) {
  std::vector<std::vector<int>> Succ(G.Nodes.size());
  for (const auto &E : G.Edges)
    Succ[E.first].push_back(E.second);
  for (auto &S : Succ)
    std::sort(S.begin(), S.end());
  return Succ;
}

Fingerprint128 fingerprintTaskGraph(const TaskGraph &G) {
  HashBuilder H;
  H.add(std::string("cdvs-taskgraph-v1"));
  H.add(G.Name);
  H.add(static_cast<uint64_t>(G.Nodes.size()));
  for (const TaskNode &N : G.Nodes) {
    H.add(N.Name);
    H.add(N.Workload);
    H.add(N.Input);
    H.add(N.ActualFactor);
  }
  std::vector<std::pair<int, int>> Edges = G.Edges;
  std::sort(Edges.begin(), Edges.end());
  H.add(static_cast<uint64_t>(Edges.size()));
  for (const auto &E : Edges) {
    H.add(static_cast<int64_t>(E.first));
    H.add(static_cast<int64_t>(E.second));
  }
  if (G.DeadlineSeconds > 0) {
    H.add(static_cast<uint64_t>(1));
    H.add(G.DeadlineSeconds);
  } else {
    H.add(static_cast<uint64_t>(0));
    H.add(G.DeadlineTightness);
  }
  Fingerprint128 F;
  H.digestRaw(F.Hi, F.Lo);
  return F;
}

} // namespace taskgraph
} // namespace cdvs
