//===- taskgraph/PlanIO.cpp - Task-plan serialization ---------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "taskgraph/PlanIO.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace cdvs {
namespace taskgraph {

namespace {

std::string g17(double V) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

} // namespace

std::string writeTaskPlan(const TaskGraph &G, const OnlineResult &R) {
  std::string Out;
  Out += "cdvs-taskplan v1\n";
  Out += "graph " + G.Name + "\n";
  Out += "deadline " + g17(R.DeadlineSeconds) + "\n";
  Out += "tasks " + std::to_string(R.Tasks.size()) + "\n";
  for (size_t I = 0; I < R.Tasks.size(); ++I) {
    const TaskExecRecord &T = R.Tasks[I];
    Out += "task " + G.Nodes[I].Name + " mode " + std::to_string(T.Mode) +
           " start " + g17(T.Start) + " finish " + g17(T.Finish) +
           " actual " + g17(T.ActualSeconds) + " energy " +
           g17(T.PlannedEnergyJoules) + "\n";
  }
  Out += "replans " + std::to_string(R.Replans) + " accepted " +
         std::to_string(R.ReplansAccepted) + "\n";
  size_t LogLines = 0;
  for (char C : R.ReplanLog)
    if (C == '\n')
      ++LogLines;
  Out += "log " + std::to_string(LogLines) + "\n";
  Out += R.ReplanLog;
  Out += "static_energy " + g17(R.StaticEnergyJoules) + "\n";
  Out += "planned_energy " + g17(R.PlannedEnergyJoules) + "\n";
  Out += "actual_energy " + g17(R.ActualEnergyJoules) + "\n";
  Out += "makespan " + g17(R.MakespanSeconds) + "\n";
  Out += std::string("deadline_met ") + (R.DeadlineMet ? "1" : "0") + "\n";
  Out += "end\n";
  return Out;
}

ErrorOr<OnlineResult> readTaskPlan(const std::string &Text,
                                   std::vector<std::string> *TaskNames) {
  std::istringstream In(Text);
  std::string Line;
  int LineNo = 0;
  auto fail = [&](const std::string &What) {
    return makeError("taskplan line " + std::to_string(LineNo) + ": " + What);
  };
  auto nextLine = [&]() -> bool {
    if (!std::getline(In, Line))
      return false;
    ++LineNo;
    return true;
  };

  if (!nextLine() || Line != "cdvs-taskplan v1")
    return fail("expected header 'cdvs-taskplan v1'");

  OnlineResult R;
  R.Feasible = true;
  std::vector<std::string> Names;

  if (!nextLine())
    return fail("truncated before 'graph'");
  {
    std::istringstream L(Line);
    std::string Kw, Name;
    if (!(L >> Kw >> Name) || Kw != "graph")
      return fail("expected 'graph <name>'");
  }
  if (!nextLine())
    return fail("truncated before 'deadline'");
  {
    std::istringstream L(Line);
    std::string Kw;
    if (!(L >> Kw >> R.DeadlineSeconds) || Kw != "deadline")
      return fail("expected 'deadline <seconds>'");
  }
  size_t NumTasks = 0;
  if (!nextLine())
    return fail("truncated before 'tasks'");
  {
    std::istringstream L(Line);
    std::string Kw;
    if (!(L >> Kw >> NumTasks) || Kw != "tasks")
      return fail("expected 'tasks <n>'");
  }
  for (size_t I = 0; I < NumTasks; ++I) {
    if (!nextLine())
      return fail("truncated task list");
    std::istringstream L(Line);
    std::string Kw, Name, KMode, KStart, KFinish, KActual, KEnergy;
    TaskExecRecord T;
    if (!(L >> Kw >> Name >> KMode >> T.Mode >> KStart >> T.Start >>
          KFinish >> T.Finish >> KActual >> T.ActualSeconds >> KEnergy >>
          T.PlannedEnergyJoules) ||
        Kw != "task" || KMode != "mode" || KStart != "start" ||
        KFinish != "finish" || KActual != "actual" || KEnergy != "energy")
      return fail("malformed task line");
    if (T.Mode < 0)
      return fail("negative mode index");
    T.ActualEnergyJoules = 0.0; // not serialized per task
    T.PlannedSeconds = 0.0;
    Names.push_back(Name);
    R.Tasks.push_back(T);
  }
  if (!nextLine())
    return fail("truncated before 'replans'");
  {
    std::istringstream L(Line);
    std::string Kw, KAcc;
    if (!(L >> Kw >> R.Replans >> KAcc >> R.ReplansAccepted) ||
        Kw != "replans" || KAcc != "accepted")
      return fail("expected 'replans <n> accepted <k>'");
  }
  size_t LogLines = 0;
  if (!nextLine())
    return fail("truncated before 'log'");
  {
    std::istringstream L(Line);
    std::string Kw;
    if (!(L >> Kw >> LogLines) || Kw != "log")
      return fail("expected 'log <lines>'");
  }
  for (size_t I = 0; I < LogLines; ++I) {
    if (!nextLine())
      return fail("truncated replan log");
    R.ReplanLog += Line;
    R.ReplanLog += "\n";
  }
  auto scalar = [&](const char *Kw, double &Out) -> std::string {
    if (!nextLine())
      return std::string("truncated before '") + Kw + "'";
    std::istringstream L(Line);
    std::string K;
    if (!(L >> K >> Out) || K != Kw)
      return std::string("expected '") + Kw + " <value>'";
    return "";
  };
  std::string E;
  if (!(E = scalar("static_energy", R.StaticEnergyJoules)).empty())
    return fail(E);
  if (!(E = scalar("planned_energy", R.PlannedEnergyJoules)).empty())
    return fail(E);
  if (!(E = scalar("actual_energy", R.ActualEnergyJoules)).empty())
    return fail(E);
  if (!(E = scalar("makespan", R.MakespanSeconds)).empty())
    return fail(E);
  int Met = 0;
  {
    if (!nextLine())
      return fail("truncated before 'deadline_met'");
    std::istringstream L(Line);
    std::string K;
    if (!(L >> K >> Met) || K != "deadline_met" || (Met != 0 && Met != 1))
      return fail("expected 'deadline_met <0|1>'");
    R.DeadlineMet = Met == 1;
  }
  if (!nextLine() || Line != "end")
    return fail("expected trailing 'end'");
  if (TaskNames)
    *TaskNames = std::move(Names);
  return R;
}

ErrorOr<bool> writeTaskPlanFile(const std::string &Path, const TaskGraph &G,
                                const OnlineResult &R) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return makeError("cannot open '" + Path + "' for writing");
  Out << writeTaskPlan(G, R);
  Out.flush();
  if (!Out)
    return makeError("write to '" + Path + "' failed");
  return true;
}

} // namespace taskgraph
} // namespace cdvs
