//===- taskgraph/Planner.h - Interval MILP over a task graph ----*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-task mode-assignment MILP. For each plannable task i and mode
/// m there is a binary k[i][m] with sum_m k[i][m] = 1 (registered as an
/// SOS1 group so branch-and-bound branches on the group, the same trick
/// the single-program formulation uses), plus a continuous completion
/// variable C_i bounded above by the shared deadline. Rows:
///
///   release     C_i - sum_m T[i][m] k[i][m] >= R_i
///   precedence  C_i - C_j - sum_m T[i][m] k[i][m] >= 0   for edges j->i
///   objective   min sum_{i,m} E[i][m] k[i][m]
///
/// which is exactly the discrete form of the interval LP in Aupy et al.
/// ("Reclaiming the energy of a schedule"): under unlimited parallelism
/// the only coupling between tasks is precedence, so per-task completion
/// times are enough — no machine-assignment binaries.
///
/// The emitted plan is the *left-shifted* realization of the chosen
/// modes: start times are recomputed greedily in canonical topological
/// order (start_i = max(R_i, max over preds finish_j)), which never
/// finishes a task later than the MILP's C_i, keeps the plan byte-
/// deterministic given the modes, and removes any slack the solver
/// happened to leave in the continuous variables.
///
/// Re-planning uses the same entry point: the online loop marks
/// completed/running tasks non-plannable and encodes their influence as
/// release times on the survivors.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_TASKGRAPH_PLANNER_H
#define CDVS_TASKGRAPH_PLANNER_H

#include "milp/MilpSolver.h"
#include "taskgraph/TaskGraph.h"

#include <vector>

namespace cdvs {
namespace taskgraph {

/// Profiled per-task costs, indexed [task][mode]. Every task shares one
/// mode table; mode 0 is the slowest (highest time, lowest energy) and
/// the last mode the fastest, matching Profile::TotalTimeAtMode.
struct TaskCosts {
  std::vector<std::vector<double>> TimeAtMode;   ///< seconds
  std::vector<std::vector<double>> EnergyAtMode; ///< joules

  int numModes() const {
    return TimeAtMode.empty() ? 0 : static_cast<int>(TimeAtMode[0].size());
  }
};

/// One task's slot in a plan. Mode == -1 marks a task the planner was
/// told not to plan (already completed or running in a re-plan).
struct TaskDecision {
  int Mode = -1;
  double Start = 0.0;  ///< left-shifted start, seconds
  double Finish = 0.0; ///< Start + profiled duration at Mode
  double PlannedSeconds = 0.0;
  double PlannedEnergyJoules = 0.0;
};

/// A solved (sub)plan.
struct TaskPlan {
  MilpStatus Status = MilpStatus::Limit;
  bool Feasible = false;
  /// Sum of profiled energies over the planned tasks only.
  double PlannedEnergyJoules = 0.0;
  /// Max left-shifted finish over the planned tasks (0 if none).
  double MakespanSeconds = 0.0;
  std::vector<TaskDecision> Tasks; ///< indexed by node
  long Nodes = 0;                  ///< branch-and-bound nodes explored
  double SolveSeconds = 0.0;
};

struct PlannerOptions {
  MilpOptions Milp;
};

/// Plans modes for the subset of \p G with Plannable[i] != 0, subject to
/// per-task release times \p ReleaseSeconds (seconds; influence of
/// completed/running predecessors) and the shared \p DeadlineSeconds.
/// Empty Plannable means "plan everything"; empty ReleaseSeconds means
/// all-zero. The graph must validate; Costs must cover every node with
/// at least one mode. Deterministic for fixed inputs and
/// Opts.Milp.NumThreads == 1.
TaskPlan planTaskGraph(const TaskGraph &G, const TaskCosts &Costs,
                       double DeadlineSeconds,
                       const PlannerOptions &Opts = PlannerOptions(),
                       const std::vector<char> &Plannable = {},
                       const std::vector<double> &ReleaseSeconds = {});

/// Critical-path length (seconds) using, per task, the time at \p Mode
/// < 0 ? per-task fastest (last) mode : fixed mode index. Used by the
/// service bound stage: the all-fastest critical path is the tightest
/// deadline any plan can meet.
double criticalPathSeconds(const TaskGraph &G, const TaskCosts &Costs,
                           int Mode);

} // namespace taskgraph
} // namespace cdvs

#endif // CDVS_TASKGRAPH_PLANNER_H
