//===- taskgraph/Generator.h - Canned graph instances -----------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic set of task-graph instances over the Section 6
/// workloads (adpcm, epic, gsm, mpg123, mpeg_decode) — the shared
/// corpus of the taskgraph tests, `dvsd --taskgraph`, the dvs-loadgen
/// graph mode, and bench_taskgraph (BENCH_taskgraph.json). Shapes cover
/// chains, a diamond, a fork-join, and a 3-layer wide graph; every
/// instance but `chain4-late` has all ActualFactors <= 1 (tasks finish
/// early, so the online mode must reclaim slack and never spend more
/// profiled energy than the static plan), while `chain4-late` overruns
/// its first task to exercise the forced-accept branch of the
/// monotonicity guard.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_TASKGRAPH_GENERATOR_H
#define CDVS_TASKGRAPH_GENERATOR_H

#include "support/Error.h"
#include "taskgraph/TaskGraph.h"

#include <vector>

namespace cdvs {
namespace taskgraph {

/// All canned instances, in a fixed order.
std::vector<TaskGraph> cannedTaskGraphs();

/// Lookup by TaskGraph::Name; errors naming the known set on a miss.
ErrorOr<TaskGraph> cannedTaskGraph(const std::string &Name);

} // namespace taskgraph
} // namespace cdvs

#endif // CDVS_TASKGRAPH_GENERATOR_H
