//===- taskgraph/Online.cpp - Online slack reclamation --------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "taskgraph/Online.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace cdvs {
namespace taskgraph {

namespace {

struct OnlineMetrics {
  obs::Counter &Replans;
  obs::Counter &ReplansAccepted;
  obs::Counter &EnergySaved;
  OnlineMetrics()
      : Replans(obs::metrics().counter(
            "cdvs_taskgraph_replans_total",
            "Task-graph re-solves attempted at completion events")),
        ReplansAccepted(obs::metrics().counter(
            "cdvs_taskgraph_replans_accepted_total",
            "Task-graph re-solves that replaced the incumbent assignment")),
        EnergySaved(obs::metrics().counter(
            "cdvs_taskgraph_energy_saved_joules_total",
            "Profiled energy reclaimed by online re-planning vs the "
            "static plan")) {}
};

OnlineMetrics &onlineMetrics() {
  static OnlineMetrics M;
  return M;
}

enum class TaskState { NotStarted, Running, Done };

void appendG17(std::string &Out, double V) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  Out += Buf;
}

/// Left-shifted makespan of the NotStarted subset under \p Modes and
/// \p Release; the incumbent-feasibility probe of the monotonicity
/// guard.
double incumbentMakespan(const TaskGraph &G, const TaskCosts &Costs,
                         const std::vector<int> &Order,
                         const std::vector<std::vector<int>> &Pred,
                         const std::vector<TaskState> &State,
                         const std::vector<int> &Modes,
                         const std::vector<double> &Release) {
  std::vector<double> Finish(G.Nodes.size(), 0.0);
  double Makespan = 0.0;
  for (int N : Order) {
    if (State[N] != TaskState::NotStarted)
      continue;
    double Start = Release[N];
    for (int P : Pred[N])
      if (State[P] == TaskState::NotStarted)
        Start = std::max(Start, Finish[P]);
    Finish[N] = Start + Costs.TimeAtMode[N][Modes[N]];
    Makespan = std::max(Makespan, Finish[N]);
  }
  return Makespan;
}

} // namespace

OnlineResult runOnline(const TaskGraph &G, const TaskCosts &Costs,
                       double DeadlineSeconds, const OnlineOptions &Opts) {
  OnlineResult R;
  R.DeadlineSeconds = DeadlineSeconds;
  ErrorOr<std::vector<int>> OrderOr = topoOrder(G);
  if (!OrderOr)
    return R;
  const std::vector<int> &Order = *OrderOr;
  const int NumNodes = static_cast<int>(G.Nodes.size());
  std::vector<std::vector<int>> Pred = predecessorsOf(G);
  std::vector<std::vector<int>> Succ = successorsOf(G);

  R.StaticPlan = planTaskGraph(G, Costs, DeadlineSeconds, Opts.Planner);
  if (!R.StaticPlan.Feasible)
    return R;
  R.Feasible = true;
  R.StaticEnergyJoules = R.StaticPlan.PlannedEnergyJoules;

  std::vector<int> Modes(NumNodes);
  for (int I = 0; I < NumNodes; ++I)
    Modes[I] = R.StaticPlan.Tasks[I].Mode;

  std::vector<TaskState> State(NumNodes, TaskState::NotStarted);
  std::vector<int> UnfinishedPreds(NumNodes, 0);
  for (int I = 0; I < NumNodes; ++I)
    UnfinishedPreds[I] = static_cast<int>(Pred[I].size());
  R.Tasks.assign(NumNodes, TaskExecRecord());

  auto startTask = [&](int I, double Now) {
    TaskExecRecord &T = R.Tasks[I];
    T.Mode = Modes[I];
    T.Start = Now;
    T.PlannedSeconds = Costs.TimeAtMode[I][T.Mode];
    T.ActualSeconds = T.PlannedSeconds * G.Nodes[I].ActualFactor;
    T.Finish = Now + T.ActualSeconds;
    T.PlannedEnergyJoules = Costs.EnergyAtMode[I][T.Mode];
    T.ActualEnergyJoules = T.PlannedEnergyJoules * G.Nodes[I].ActualFactor;
    State[I] = TaskState::Running;
  };

  for (int I = 0; I < NumNodes; ++I)
    if (UnfinishedPreds[I] == 0)
      startTask(I, 0.0);

  int EventIndex = 0;
  int DoneCount = 0;
  while (DoneCount < NumNodes) {
    // Next completion: smallest (finish, index) among running tasks.
    int Next = -1;
    for (int I = 0; I < NumNodes; ++I) {
      if (State[I] != TaskState::Running)
        continue;
      if (Next < 0 || R.Tasks[I].Finish < R.Tasks[Next].Finish)
        Next = I;
    }
    assert(Next >= 0 && "acyclic validated graph cannot stall");
    double Now = R.Tasks[Next].Finish;
    State[Next] = TaskState::Done;
    ++DoneCount;
    ++EventIndex;
    for (int S : Succ[Next])
      --UnfinishedPreds[S];

    int Remaining = NumNodes - DoneCount;
    int Unstarted = 0;
    for (int I = 0; I < NumNodes; ++I)
      if (State[I] == TaskState::NotStarted)
        ++Unstarted;

    if (Opts.Replan && Unstarted > 0) {
      obs::TraceSpan Span("replan", "taskgraph");
      Span.arg("event", EventIndex);
      Span.arg("unstarted", Unstarted);
      ++R.Replans;
      onlineMetrics().Replans.inc();

      std::vector<char> Plannable(NumNodes, 0);
      std::vector<double> Release(NumNodes, 0.0);
      for (int I = 0; I < NumNodes; ++I) {
        if (State[I] != TaskState::NotStarted)
          continue;
        Plannable[I] = 1;
        double Rel = Now; // nothing can start in the past
        for (int P : Pred[I]) {
          if (State[P] == TaskState::Done)
            Rel = std::max(Rel, R.Tasks[P].Finish);
          else if (State[P] == TaskState::Running)
            // Profiled prediction for the running predecessor; an
            // overrunning task keeps pushing this forward as "now".
            Rel = std::max(Rel, std::max(Now, R.Tasks[P].Start +
                                                  R.Tasks[P].PlannedSeconds));
        }
        Release[I] = Rel;
      }

      double IncumbentEnergy = 0.0;
      for (int I = 0; I < NumNodes; ++I)
        if (State[I] == TaskState::NotStarted)
          IncumbentEnergy += Costs.EnergyAtMode[I][Modes[I]];
      bool IncumbentFeasible =
          incumbentMakespan(G, Costs, Order, Pred, State, Modes, Release) <=
          DeadlineSeconds + 1e-9;

      TaskPlan NewPlan = planTaskGraph(G, Costs, DeadlineSeconds,
                                       Opts.Planner, Plannable, Release);
      const char *Decision;
      double ChosenEnergy = IncumbentEnergy;
      if (NewPlan.Feasible &&
          (!IncumbentFeasible ||
           NewPlan.PlannedEnergyJoules <= IncumbentEnergy + 1e-12)) {
        for (int I = 0; I < NumNodes; ++I)
          if (State[I] == TaskState::NotStarted)
            Modes[I] = NewPlan.Tasks[I].Mode;
        ++R.ReplansAccepted;
        onlineMetrics().ReplansAccepted.inc();
        Decision = "accept";
        ChosenEnergy = NewPlan.PlannedEnergyJoules;
      } else if (!NewPlan.Feasible) {
        Decision = "infeasible";
      } else {
        Decision = "keep";
      }
      Span.arg("accepted", Decision[0] == 'a' ? 1.0 : 0.0);

      R.ReplanLog += "event ";
      R.ReplanLog += std::to_string(EventIndex);
      R.ReplanLog += " done ";
      R.ReplanLog += G.Nodes[Next].Name;
      R.ReplanLog += " t ";
      appendG17(R.ReplanLog, Now);
      R.ReplanLog += " remaining ";
      R.ReplanLog += std::to_string(Remaining);
      R.ReplanLog += " replan ";
      R.ReplanLog += Decision;
      R.ReplanLog += " energy ";
      appendG17(R.ReplanLog, IncumbentEnergy);
      R.ReplanLog += " -> ";
      appendG17(R.ReplanLog, ChosenEnergy);
      R.ReplanLog += "\n";
    }

    // Start everything that just became ready (in index order; starts
    // share the same timestamp so order is cosmetic but fixed).
    for (int I = 0; I < NumNodes; ++I)
      if (State[I] == TaskState::NotStarted && UnfinishedPreds[I] == 0)
        startTask(I, std::max(Now, 0.0));
  }

  for (int I = 0; I < NumNodes; ++I) {
    const TaskExecRecord &T = R.Tasks[I];
    R.PlannedEnergyJoules += T.PlannedEnergyJoules;
    R.ActualEnergyJoules += T.ActualEnergyJoules;
    R.MakespanSeconds = std::max(R.MakespanSeconds, T.Finish);
  }
  R.DeadlineMet = R.MakespanSeconds <= DeadlineSeconds + 1e-9;
  if (Opts.Replan && R.StaticEnergyJoules > R.PlannedEnergyJoules)
    onlineMetrics().EnergySaved.inc(R.StaticEnergyJoules -
                                    R.PlannedEnergyJoules);
  return R;
}

} // namespace taskgraph
} // namespace cdvs
