//===- taskgraph/Online.h - Online slack reclamation ------------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The online executor: runs a task graph against its static plan while
/// the "hardware" (each node's hidden ActualFactor) reveals actual
/// completion times, and re-solves the remaining subgraph at every
/// completion event so reclaimed slack turns into slower, cheaper modes
/// — Aupy et al.'s slack-reclamation discipline on top of the discrete
/// interval MILP in taskgraph/Planner.h.
///
/// Semantics, fixed so runs are byte-reproducible:
///
///  - Unlimited parallelism: a task starts the instant its last
///    predecessor finishes (and never before its re-planned release).
///  - Completion events are processed in ascending (finish time, node
///    index) order; ties cannot reorder across runs.
///  - At each completion event with unstarted tasks left, the remaining
///    subgraph re-solves with releases derived from actual finishes of
///    done tasks and profiled predictions for still-running ones.
///  - Monotonicity guard: a re-plan is *accepted* only if it is feasible
///    and its predicted remaining profiled energy is <= the incumbent
///    assignment's — unless the incumbent has become deadline-infeasible
///    under the updated releases, in which case any feasible re-plan is
///    taken. With every ActualFactor <= 1 this guarantees the final
///    committed (profiled) energy never exceeds the static plan's.
///  - All MILP (re-)solves run with the options the caller fixes
///    (NumThreads = 1 in the service), so the chosen argmin — not just
///    the optimal objective — is thread-count independent.
///
/// Every re-solve emits a `replan` trace span and bumps the
/// cdvs_taskgraph_replans{,_accepted}_total counters; the decision trail
/// is also recorded in OnlineResult::ReplanLog as canonical %.17g text,
/// which the determinism tests compare byte-for-byte across worker and
/// reactor counts.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_TASKGRAPH_ONLINE_H
#define CDVS_TASKGRAPH_ONLINE_H

#include "taskgraph/Planner.h"

#include <string>
#include <vector>

namespace cdvs {
namespace taskgraph {

struct OnlineOptions {
  /// Re-solve at completion events. Off = execute the static plan and
  /// only record actual times (the "static" rows of the bench pairing).
  bool Replan = true;
  PlannerOptions Planner;
};

/// What one task actually did.
struct TaskExecRecord {
  int Mode = -1;               ///< final committed mode
  double Start = 0.0;          ///< actual (simulated) start, seconds
  double Finish = 0.0;         ///< actual finish, seconds
  double PlannedSeconds = 0.0; ///< profiled duration at Mode
  double ActualSeconds = 0.0;  ///< PlannedSeconds * ActualFactor
  double PlannedEnergyJoules = 0.0;
  /// Energy scaled like the runtime: the task holds its (V, f) point for
  /// ActualFactor times the profiled duration.
  double ActualEnergyJoules = 0.0;
};

struct OnlineResult {
  bool Feasible = false;     ///< static plan solved (run happened at all)
  TaskPlan StaticPlan;       ///< the initial full-graph plan
  std::vector<TaskExecRecord> Tasks; ///< indexed by node
  double DeadlineSeconds = 0.0;
  /// Profiled energy of the static plan (sum E[i][static mode]).
  double StaticEnergyJoules = 0.0;
  /// Profiled energy at the final committed modes. The headline number:
  /// <= StaticEnergyJoules whenever no task overran its profile.
  double PlannedEnergyJoules = 0.0;
  /// Factor-scaled energy actually spent (informational).
  double ActualEnergyJoules = 0.0;
  double MakespanSeconds = 0.0; ///< actual makespan
  bool DeadlineMet = false;     ///< MakespanSeconds <= deadline (+1e-9)
  int Replans = 0;              ///< re-solves attempted
  int ReplansAccepted = 0;      ///< re-solves that replaced the incumbent
  /// Canonical one-line-per-event decision log (see file comment).
  std::string ReplanLog;
};

/// Executes \p G with the hidden ActualFactors, re-planning per
/// \p Opts. Costs/Deadline as for planTaskGraph. Deterministic: equal
/// inputs produce byte-identical results including ReplanLog.
OnlineResult runOnline(const TaskGraph &G, const TaskCosts &Costs,
                       double DeadlineSeconds,
                       const OnlineOptions &Opts = OnlineOptions());

} // namespace taskgraph
} // namespace cdvs

#endif // CDVS_TASKGRAPH_ONLINE_H
