//===- taskgraph/TaskGraph.h - DAG workload model ----------------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-task workload model: a DAG whose nodes are existing IR
/// programs (workload + input name, profiled elsewhere), whose edges are
/// precedence constraints, and which carries one shared deadline. This
/// is the scenario space of Aupy et al. ("Reclaiming the energy of a
/// schedule"): tasks run under unlimited parallelism — a task starts the
/// instant all of its predecessors have finished — and the scheduler
/// picks one discrete (V, f) mode per task so the whole graph meets the
/// deadline at minimum energy.
///
/// Each node also carries an ActualFactor: the ratio of the task's
/// *actual* runtime to its *profiled* runtime at whatever mode it runs
/// in. The factor is hidden from the planner and revealed only when the
/// task completes — it is what the online slack-reclamation loop
/// (taskgraph/Online.h) reacts to.
///
/// The model is value-semantic and validated as a unit: validateGraph
/// checks names, edge endpoints, and acyclicity, and topoOrder returns
/// the canonical topological order (Kahn's algorithm, smallest node
/// index first) that every downstream consumer iterates in, so planning
/// and verification never disagree on tie-breaks.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_TASKGRAPH_TASKGRAPH_H
#define CDVS_TASKGRAPH_TASKGRAPH_H

#include "milp/Fingerprint.h"
#include "support/Error.h"

#include <string>
#include <utility>
#include <vector>

namespace cdvs {
namespace taskgraph {

/// One task: a named reference to an IR program with a completion-time
/// surprise factor.
struct TaskNode {
  std::string Name;     ///< unique within the graph
  std::string Workload; ///< workloads::workloadByName key
  std::string Input;    ///< input name; empty selects the default input
  /// actual runtime / profiled runtime at the chosen mode, revealed at
  /// completion. < 1 means the task finishes early (reclaimable slack),
  /// > 1 means it overruns.
  double ActualFactor = 1.0;
};

/// A DAG of tasks with precedence edges and one shared deadline.
struct TaskGraph {
  std::string Name;
  std::vector<TaskNode> Nodes;
  /// (Pred, Succ) node-index pairs: Succ may start only after Pred
  /// finishes.
  std::vector<std::pair<int, int>> Edges;
  /// Absolute shared deadline in seconds; 0 means "derive from
  /// DeadlineTightness" (the service's bound stage interpolates between
  /// the all-fastest and all-slowest critical paths, mirroring the
  /// single-program request contract).
  double DeadlineSeconds = 0.0;
  double DeadlineTightness = 0.5;
};

/// Structural validation: nonempty node list, unique nonempty names,
/// in-range edge endpoints, no self edges, no duplicate edges, positive
/// finite ActualFactor, and acyclicity. \returns true or the first
/// violation found.
ErrorOr<bool> validateGraph(const TaskGraph &G);

/// Canonical topological order: Kahn's algorithm taking the smallest
/// ready node index first. Errors on any validateGraph violation
/// (including cycles). Deterministic for a given graph.
ErrorOr<std::vector<int>> topoOrder(const TaskGraph &G);

/// Predecessor lists indexed by node (each list sorted ascending).
std::vector<std::vector<int>> predecessorsOf(const TaskGraph &G);

/// Successor lists indexed by node (each list sorted ascending).
std::vector<std::vector<int>> successorsOf(const TaskGraph &G);

/// Content fingerprint over the normalized graph: version tag, name,
/// nodes in index order (name, workload, input, actual factor), edges
/// in sorted order, and the deadline knobs. Two graphs with equal
/// content hash equal; the cluster routing key and the service result
/// cache both key on this.
Fingerprint128 fingerprintTaskGraph(const TaskGraph &G);

} // namespace taskgraph
} // namespace cdvs

#endif // CDVS_TASKGRAPH_TASKGRAPH_H
