//===- taskgraph/PlanIO.h - Task-plan serialization -------------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The canonical `cdvs-taskplan v1` text format — the task-graph
/// sibling of dvs/ScheduleIO.h's `cdvs-schedule v1`:
///
///   cdvs-taskplan v1
///   graph <name>
///   deadline <%.17g>
///   tasks <n>
///   task <name> mode <m> start <s> finish <f> actual <a> energy <e>  x n
///   replans <attempted> accepted <k>
///   log <lines>
///   <replan log lines>                                               x lines
///   static_energy <%.17g>
///   planned_energy <%.17g>
///   actual_energy <%.17g>
///   makespan <%.17g>
///   deadline_met <0|1>
///   end
///
/// Tasks appear in node-index order; every float is %.17g, so equal
/// results serialize byte-identically — the service cache and the
/// determinism gates compare plans by string equality, and
/// write(read(write(R))) == write(R).
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_TASKGRAPH_PLANIO_H
#define CDVS_TASKGRAPH_PLANIO_H

#include "support/Error.h"
#include "taskgraph/Online.h"

#include <string>

namespace cdvs {
namespace taskgraph {

/// Serializes \p R (an executed plan for \p G) canonically; see the
/// file comment.
std::string writeTaskPlan(const TaskGraph &G, const OnlineResult &R);

/// Parses a `cdvs-taskplan v1` document back into an OnlineResult plus
/// the task names it recorded (returned through \p TaskNames when
/// non-null). Errors name the offending line. The StaticPlan member is
/// not serialized and comes back empty.
ErrorOr<OnlineResult> readTaskPlan(const std::string &Text,
                                   std::vector<std::string> *TaskNames =
                                       nullptr);

/// writeTaskPlan straight to \p Path; errors on I/O failure.
ErrorOr<bool> writeTaskPlanFile(const std::string &Path, const TaskGraph &G,
                                const OnlineResult &R);

} // namespace taskgraph
} // namespace cdvs

#endif // CDVS_TASKGRAPH_PLANIO_H
