//===- taskgraph/Planner.cpp - Interval MILP over a task graph ------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "taskgraph/Planner.h"

#include "lp/LpProblem.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cdvs {
namespace taskgraph {

double criticalPathSeconds(const TaskGraph &G, const TaskCosts &Costs,
                           int Mode) {
  ErrorOr<std::vector<int>> Order = topoOrder(G);
  if (!Order)
    return 0.0;
  std::vector<std::vector<int>> Pred = predecessorsOf(G);
  std::vector<double> Finish(G.Nodes.size(), 0.0);
  double Longest = 0.0;
  for (int N : *Order) {
    double Start = 0.0;
    for (int P : Pred[N])
      Start = std::max(Start, Finish[P]);
    const std::vector<double> &T = Costs.TimeAtMode[N];
    double Dur = Mode < 0 ? T.back() : T[Mode];
    Finish[N] = Start + Dur;
    Longest = std::max(Longest, Finish[N]);
  }
  return Longest;
}

TaskPlan planTaskGraph(const TaskGraph &G, const TaskCosts &Costs,
                       double DeadlineSeconds, const PlannerOptions &Opts,
                       const std::vector<char> &Plannable,
                       const std::vector<double> &ReleaseSeconds) {
  TaskPlan Plan;
  const int NumNodes = static_cast<int>(G.Nodes.size());
  const int NumModes = Costs.numModes();
  assert(static_cast<int>(Costs.TimeAtMode.size()) == NumNodes &&
         static_cast<int>(Costs.EnergyAtMode.size()) == NumNodes &&
         NumModes > 0 && "costs must cover every node");
  ErrorOr<std::vector<int>> Order = topoOrder(G);
  if (!Order) {
    Plan.Status = MilpStatus::Infeasible;
    return Plan;
  }
  std::vector<char> Plan_(NumNodes, 1);
  if (!Plannable.empty()) {
    assert(static_cast<int>(Plannable.size()) == NumNodes);
    Plan_ = Plannable;
  }
  std::vector<double> Release(NumNodes, 0.0);
  if (!ReleaseSeconds.empty()) {
    assert(static_cast<int>(ReleaseSeconds.size()) == NumNodes);
    Release = ReleaseSeconds;
  }
  Plan.Tasks.assign(NumNodes, TaskDecision());

  int NumPlanned = 0;
  for (int I = 0; I < NumNodes; ++I)
    if (Plan_[I])
      ++NumPlanned;
  if (NumPlanned == 0) {
    // Nothing left to decide: trivially feasible, zero planned energy.
    Plan.Status = MilpStatus::Optimal;
    Plan.Feasible = true;
    return Plan;
  }

  // Build the MILP. Variable layout: per plannable task, NumModes mode
  // binaries followed by one completion variable.
  LpProblem P;
  std::vector<int> ModeVarBase(NumNodes, -1), CompletionVar(NumNodes, -1);
  std::vector<int> IntegerVars;
  IntegerVars.reserve(static_cast<size_t>(NumPlanned) * NumModes);
  for (int I = 0; I < NumNodes; ++I) {
    if (!Plan_[I])
      continue;
    ModeVarBase[I] = P.numVariables();
    for (int M = 0; M < NumModes; ++M) {
      int V = P.addVariable(0.0, 1.0, Costs.EnergyAtMode[I][M],
                            "k_" + G.Nodes[I].Name + "_" +
                                std::to_string(M));
      IntegerVars.push_back(V);
    }
    CompletionVar[I] = P.addVariable(0.0, DeadlineSeconds, 0.0,
                                     "C_" + G.Nodes[I].Name);
  }
  std::vector<LpTerm> Terms;
  for (int I = 0; I < NumNodes; ++I) {
    if (!Plan_[I])
      continue;
    // sum_m k[i][m] == 1
    Terms.clear();
    for (int M = 0; M < NumModes; ++M)
      Terms.push_back({ModeVarBase[I] + M, 1.0});
    P.addRow(RowSense::EQ, 1.0, Terms);
    // release: C_i - sum_m T[i][m] k[i][m] >= R_i
    Terms.clear();
    Terms.push_back({CompletionVar[I], 1.0});
    for (int M = 0; M < NumModes; ++M)
      Terms.push_back({ModeVarBase[I] + M, -Costs.TimeAtMode[I][M]});
    P.addRow(RowSense::GE, Release[I], Terms);
  }
  for (const auto &E : G.Edges) {
    int J = E.first, I = E.second;
    if (!Plan_[I] || !Plan_[J])
      continue; // non-plannable endpoints act through Release instead
    // precedence: C_i - C_j - sum_m T[i][m] k[i][m] >= 0
    Terms.clear();
    Terms.push_back({CompletionVar[I], 1.0});
    Terms.push_back({CompletionVar[J], -1.0});
    for (int M = 0; M < NumModes; ++M)
      Terms.push_back({ModeVarBase[I] + M, -Costs.TimeAtMode[I][M]});
    P.addRow(RowSense::GE, 0.0, Terms);
  }

  MilpSolver Solver(P, IntegerVars, Opts.Milp);
  for (int I = 0; I < NumNodes; ++I) {
    if (!Plan_[I])
      continue;
    std::vector<int> Group(NumModes);
    for (int M = 0; M < NumModes; ++M)
      Group[M] = ModeVarBase[I] + M;
    Solver.addSos1Group(Group);
  }
  MilpSolution Sol = Solver.solve();
  Plan.Status = Sol.Status;
  Plan.Nodes = Sol.Nodes;
  Plan.SolveSeconds = Sol.SolveSeconds;
  if (Sol.Status != MilpStatus::Optimal && Sol.Status != MilpStatus::Feasible)
    return Plan;
  Plan.Feasible = true;

  // Decode modes: the unique binary at ~1 in each SOS1 group.
  for (int I = 0; I < NumNodes; ++I) {
    if (!Plan_[I])
      continue;
    int Best = 0;
    double BestVal = -1.0;
    for (int M = 0; M < NumModes; ++M) {
      double V = Sol.X[ModeVarBase[I] + M];
      if (V > BestVal) {
        BestVal = V;
        Best = M;
      }
    }
    TaskDecision &D = Plan.Tasks[I];
    D.Mode = Best;
    D.PlannedSeconds = Costs.TimeAtMode[I][Best];
    D.PlannedEnergyJoules = Costs.EnergyAtMode[I][Best];
  }

  // Left-shift: canonical start/finish from releases + precedence in
  // topological order. Never later than the MILP's completion point.
  std::vector<std::vector<int>> Pred = predecessorsOf(G);
  for (int N : *Order) {
    TaskDecision &D = Plan.Tasks[N];
    if (D.Mode < 0)
      continue;
    double Start = Release[N];
    for (int Pn : Pred[N])
      if (Plan_[Pn] && Plan.Tasks[Pn].Mode >= 0)
        Start = std::max(Start, Plan.Tasks[Pn].Finish);
    D.Start = Start;
    D.Finish = Start + D.PlannedSeconds;
    Plan.MakespanSeconds = std::max(Plan.MakespanSeconds, D.Finish);
    Plan.PlannedEnergyJoules += D.PlannedEnergyJoules;
  }
  return Plan;
}

} // namespace taskgraph
} // namespace cdvs
