//===- taskgraph/Generator.cpp - Canned graph instances -------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "taskgraph/Generator.h"

namespace cdvs {
namespace taskgraph {

namespace {

TaskNode node(const char *Name, const char *Workload, double Factor) {
  TaskNode N;
  N.Name = Name;
  N.Workload = Workload;
  N.ActualFactor = Factor;
  return N;
}

TaskGraph pair2Early() {
  TaskGraph G;
  G.Name = "pair2-early";
  G.Nodes = {node("encode", "adpcm", 0.5), node("compress", "gsm", 0.5)};
  G.Edges = {{0, 1}};
  G.DeadlineTightness = 0.5;
  return G;
}

TaskGraph chain4Early() {
  TaskGraph G;
  G.Name = "chain4-early";
  G.Nodes = {node("ingest", "adpcm", 0.6), node("speech", "gsm", 0.75),
             node("audio", "mpg123", 0.8), node("video", "mpeg_decode", 0.9)};
  G.Edges = {{0, 1}, {1, 2}, {2, 3}};
  G.DeadlineTightness = 0.5;
  return G;
}

TaskGraph diamond4Early() {
  TaskGraph G;
  G.Name = "diamond4-early";
  G.Nodes = {node("split", "adpcm", 0.7), node("left", "gsm", 0.65),
             node("right", "mpg123", 0.9),
             node("join", "mpeg_decode", 0.8)};
  G.Edges = {{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  G.DeadlineTightness = 0.45;
  return G;
}

TaskGraph forkjoin6Mixed() {
  TaskGraph G;
  G.Name = "forkjoin6-mixed";
  G.Nodes = {node("fan", "adpcm", 0.8),     node("w0", "gsm", 0.7),
             node("w1", "mpg123", 1.0),     node("w2", "mpeg_decode", 0.6),
             node("w3", "adpcm", 0.95),     node("gather", "gsm", 0.85)};
  G.Edges = {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 5}, {2, 5}, {3, 5}, {4, 5}};
  G.DeadlineTightness = 0.5;
  return G;
}

TaskGraph wide8Layers() {
  TaskGraph G;
  G.Name = "wide8-layers";
  G.Nodes = {node("l0a", "adpcm", 0.7),       node("l0b", "gsm", 0.8),
             node("l1a", "mpg123", 0.65),     node("l1b", "mpeg_decode", 0.9),
             node("l1c", "adpcm", 0.75),      node("l2a", "gsm", 0.85),
             node("l2b", "mpg123", 0.6),      node("l2c", "mpeg_decode", 0.95)};
  G.Edges = {{0, 2}, {0, 3}, {1, 3}, {1, 4}, {2, 5}, {2, 6},
             {3, 6}, {3, 7}, {4, 7}, {4, 5}};
  G.DeadlineTightness = 0.5;
  return G;
}

TaskGraph chain4Late() {
  TaskGraph G;
  G.Name = "chain4-late";
  // The head overruns its profile by 25%; the re-planner must speed up
  // the survivors to keep the (looser) deadline.
  G.Nodes = {node("head", "gsm", 1.25), node("mid0", "adpcm", 0.9),
             node("mid1", "mpg123", 0.85),
             node("tail", "mpeg_decode", 0.9)};
  G.Edges = {{0, 1}, {1, 2}, {2, 3}};
  G.DeadlineTightness = 0.6;
  return G;
}

} // namespace

std::vector<TaskGraph> cannedTaskGraphs() {
  return {pair2Early(),     chain4Early(), diamond4Early(),
          forkjoin6Mixed(), wide8Layers(), chain4Late()};
}

ErrorOr<TaskGraph> cannedTaskGraph(const std::string &Name) {
  std::string Known;
  for (TaskGraph &G : cannedTaskGraphs()) {
    if (G.Name == Name)
      return G;
    if (!Known.empty())
      Known += ", ";
    Known += G.Name;
  }
  return makeError("unknown canned task graph '" + Name + "' (known: " +
                   Known + ")");
}

} // namespace taskgraph
} // namespace cdvs
