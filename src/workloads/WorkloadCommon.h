//===- workloads/WorkloadCommon.h - Shared workload helpers -----*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the workload generators: deterministic memory
/// initialization and the register-convention constants.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_WORKLOADS_WORKLOADCOMMON_H
#define CDVS_WORKLOADS_WORKLOADCOMMON_H

#include "sim/Simulator.h"
#include "support/Rng.h"

#include <cstdint>

namespace cdvs {

/// Fills \p Count 32-bit words starting at byte offset \p Offset with
/// deterministic pseudo-random values in [0, Range).
inline void fillRandomWords(Simulator &Sim, uint64_t Offset, uint64_t Count,
                            uint64_t Range, uint64_t Seed) {
  Rng R(Seed);
  for (uint64_t I = 0; I < Count; ++I)
    Sim.setInitialMem32(Offset + 4 * I,
                        static_cast<uint32_t>(R.nextBelow(Range)));
}

/// Fills words with a repeating pattern (used for frame-type tables).
inline void fillPatternWords(Simulator &Sim, uint64_t Offset,
                             uint64_t Count, const std::vector<uint32_t> &
                             Pattern) {
  for (uint64_t I = 0; I < Count; ++I)
    Sim.setInitialMem32(Offset + 4 * I, Pattern[I % Pattern.size()]);
}

} // namespace cdvs

#endif // CDVS_WORKLOADS_WORKLOADCOMMON_H
