//===- workloads/Adpcm.cpp - ADPCM speech codec analogue -------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
//
// Shape: the hot codec loop over a large sample buffer, then a lighter
// post-filter pass over the produced output. Codec loop per sample: a
// software-pipelined load (two iterations ahead, so DRAM misses overlap
// the integer step-adaptation kernel), a sign-dependent branch, a small
// multiply-based step update, and an output store. The input buffer
// (~480 KB) streams through the caches, so about one load in eight
// misses to DRAM. The post-filter is a second, smaller region the MILP
// can downshift independently — multi-scale region structure like real
// MediaBench codecs.
//
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadCommon.h"
#include "workloads/Workloads.h"

#include "ir/IRBuilder.h"

using namespace cdvs;

namespace {

// Register conventions.
constexpr int RZero = 0;
constexpr int RN = 1;      // sample count (input parameter)
constexpr int RIn = 2;     // input base
constexpr int ROut = 3;    // output base
constexpr int RStep = 4;
constexpr int RPred = 5;
constexpr int RI = 6;
constexpr int RT0 = 7;
constexpr int RT1 = 8;
constexpr int ROne = 9;
constexpr int RT2 = 10;
constexpr int RTwo = 11;
constexpr int RDiff = 12;
constexpr int RSign = 13;
constexpr int RT3 = 14;
constexpr int RCur = 16;  // current sample
constexpr int RNext = 17; // sample i+1
constexpr int RNext2 = 18;// sample i+2
constexpr int RNext3 = 19;// sample i+3
constexpr int RThree = 20;
constexpr int RFive = 21;
constexpr int RMask = 22;
constexpr int RPrev = 23; // post-filter smoothing state

constexpr uint64_t InOff = 0;
constexpr uint64_t OutOff = 640 * 1024;
constexpr uint64_t MemSize = 1280 * 1024;

} // namespace

Workload cdvs::makeAdpcm() {
  auto Fn = std::make_shared<Function>("adpcm", 25, MemSize);
  IRBuilder B(*Fn);

  int Entry = B.createBlock("entry");
  int Head = B.createBlock("loop_head");
  int Body = B.createBlock("body");
  int Neg = B.createBlock("step_down");
  int Pos = B.createBlock("step_up");
  int Join = B.createBlock("join");
  int PfHead = B.createBlock("postfilter_head");
  int PfBody = B.createBlock("postfilter_body");
  int Exit = B.createBlock("exit");

  B.setInsertPoint(Entry);
  B.movImm(RZero, 0);
  B.movImm(ROne, 1);
  B.movImm(RTwo, 2);
  B.movImm(RThree, 3);
  B.movImm(RFive, 5);
  B.movImm(RMask, 0xFFFF);
  B.movImm(RIn, static_cast<int64_t>(InOff));
  B.movImm(ROut, static_cast<int64_t>(OutOff));
  B.movImm(RStep, 16);
  B.movImm(RPred, 0);
  B.movImm(RI, 0);
  // Prime the three-deep load pipeline.
  B.load(RCur, RIn, 0);
  B.load(RNext, RIn, 4);
  B.load(RNext2, RIn, 8);
  B.jump(Head);

  B.setInsertPoint(Head);
  B.cmpLt(RT0, RI, RN);
  B.condBr(RT0, Body, PfHead);

  B.setInsertPoint(Body);
  // Prefetch sample i+3 (software pipelining: creates memory overlap).
  B.add(RT1, RI, RThree);
  B.shl(RT1, RT1, RTwo);
  B.add(RT1, RT1, RIn);
  B.load(RNext3, RT1, 0);
  // diff = cur - pred; branch on its sign.
  B.sub(RDiff, RCur, RPred);
  B.cmpLt(RSign, RDiff, RZero);
  B.condBr(RSign, Neg, Pos);

  B.setInsertPoint(Neg);
  B.sub(RPred, RPred, RStep);
  B.mul(RT3, RStep, RThree); // step = step * 3 / 4
  B.shr(RStep, RT3, RTwo);
  B.jump(Join);

  B.setInsertPoint(Pos);
  B.add(RPred, RPred, RStep);
  B.mul(RT3, RStep, RFive); // step = step * 5 / 4
  B.shr(RStep, RT3, RTwo);
  B.jump(Join);

  B.setInsertPoint(Join);
  B.or_(RStep, RStep, ROne);   // keep step >= 1
  B.and_(RPred, RPred, RMask); // bounded predictor state
  B.shl(RT2, RI, RTwo);
  B.add(RT2, RT2, ROut);
  B.store(RPred, RT2, 0);
  // Rotate the load pipeline and advance.
  B.mov(RCur, RNext);
  B.mov(RNext, RNext2);
  B.mov(RNext2, RNext3);
  B.add(RI, RI, ROne);
  B.jump(Head);

  // ---- Post-filter: smooth the output in place (output is L2-warm
  // after the codec loop, so this region is lighter on DRAM). ----
  B.setInsertPoint(PfHead);
  B.movImm(RI, 0);
  B.movImm(RPrev, 0);
  B.jump(PfBody);

  B.setInsertPoint(PfBody);
  B.shl(RT2, RI, RTwo);
  B.add(RT2, RT2, ROut);
  B.load(RT1, RT2, 0);
  B.add(RPrev, RPrev, RT1);
  B.shr(RPrev, RPrev, ROne);
  B.store(RPrev, RT2, 0);
  B.add(RI, RI, ROne);
  B.cmpLt(RT0, RI, RN);
  B.condBr(RT0, PfBody, Exit);

  B.setInsertPoint(Exit);
  B.ret();

  Workload W;
  W.Name = "adpcm";
  W.Fn = Fn;
  W.Inputs.push_back(
      {"clinton", "speech", [](Simulator &Sim) {
         const uint64_t N = 120000;
         Sim.setInitialReg(RN, static_cast<int64_t>(N));
         fillRandomWords(Sim, InOff, N + 3, 1 << 16, /*Seed=*/0xadbc01);
       }});
  W.Inputs.push_back(
      {"rossini", "music", [](Simulator &Sim) {
         const uint64_t N = 88000;
         Sim.setInitialReg(RN, static_cast<int64_t>(N));
         fillRandomWords(Sim, InOff, N + 3, 1 << 14, /*Seed=*/0xadbc02);
       }});
  return W;
}
