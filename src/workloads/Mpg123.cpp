//===- workloads/Mpg123.cpp - MP3 decoder analogue -------------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
//
// Shape: a granule loop; each granule computes a 32-tap windowed dot
// product (window table L1-resident, sample ring streamed from DRAM)
// and every 16th granule additionally shifts a region of the ring
// (streaming copy). The dot-product chain is FP-flavored dependent
// compute; the ring walk supplies the invariant memory time.
//
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadCommon.h"
#include "workloads/Workloads.h"

#include "ir/IRBuilder.h"

using namespace cdvs;

namespace {

constexpr int RZero = 0;
constexpr int RG = 1;      // granule count (parameter)
constexpr int RWin = 2;    // window table base
constexpr int RRing = 3;   // sample ring base
constexpr int ROut = 4;    // output base
constexpr int RGran = 5;
constexpr int RJ = 6;
constexpr int RAcc = 7;
constexpr int RT0 = 8;
constexpr int RT1 = 9;
constexpr int RT2 = 10;
constexpr int RW = 11;
constexpr int RS = 12;
constexpr int ROne = 13;
constexpr int RTwo = 14;
constexpr int RTaps = 15;   // 32
constexpr int RWMask = 16;  // 31
constexpr int RRMask = 17;  // ring mask (words)
constexpr int RSh = 18;     // shift-iteration count
constexpr int RShMask = 19; // 15 (every 16th granule shifts)
constexpr int RT3 = 20;
constexpr int RBase = 21;   // ring position of this granule

constexpr uint64_t WinOff = 0;            // 32 words
constexpr uint64_t OutOff = 4 * 1024;
constexpr uint64_t RingOff = 128 * 1024;  // 160K words = 640 KB
constexpr uint64_t RingWords = 160 * 1024;
constexpr uint64_t MemSize = 1024 * 1024;

} // namespace

Workload cdvs::makeMpg123() {
  auto Fn = std::make_shared<Function>("mpg123", 24, MemSize);
  IRBuilder B(*Fn);

  int Entry = B.createBlock("entry");
  int GHead = B.createBlock("granule_head");
  int GBody = B.createBlock("granule_body");
  int DHead = B.createBlock("dot_head");
  int DBody = B.createBlock("dot_body");
  int GDone = B.createBlock("granule_done");
  int SHead = B.createBlock("shift_head");
  int SBody = B.createBlock("shift_body");
  int GLatch = B.createBlock("granule_latch");
  int Exit = B.createBlock("exit");

  B.setInsertPoint(Entry);
  B.movImm(RZero, 0);
  B.movImm(ROne, 1);
  B.movImm(RTwo, 2);
  B.movImm(RTaps, 32);
  B.movImm(RWMask, 31);
  B.movImm(RRMask, static_cast<int64_t>(RingWords - 1));
  B.movImm(RShMask, 15);
  B.movImm(RWin, static_cast<int64_t>(WinOff));
  B.movImm(ROut, static_cast<int64_t>(OutOff));
  B.movImm(RRing, static_cast<int64_t>(RingOff));
  B.movImm(RGran, 0);
  B.jump(GHead);

  B.setInsertPoint(GHead);
  B.cmpLt(RT0, RGran, RG);
  B.condBr(RT0, GBody, Exit);

  B.setInsertPoint(GBody);
  // Ring base advances 37 words per granule (wraps over 640 KB).
  B.movImm(RT1, 37);
  B.mul(RBase, RGran, RT1);
  B.and_(RBase, RBase, RRMask);
  B.movImm(RJ, 0);
  B.movImm(RAcc, 0);
  B.jump(DHead);

  B.setInsertPoint(DHead);
  B.cmpLt(RT0, RJ, RTaps);
  B.condBr(RT0, DBody, GDone);

  B.setInsertPoint(DBody);
  // w = window[j]  (L1 hit), s = ring[(base + j) & mask] (streams DRAM)
  B.shl(RT1, RJ, RTwo);
  B.add(RT1, RT1, RWin);
  B.load(RW, RT1, 0);
  B.add(RT2, RBase, RJ);
  B.and_(RT2, RT2, RRMask);
  B.shl(RT2, RT2, RTwo);
  B.add(RT2, RT2, RRing);
  B.load(RS, RT2, 0);
  B.fmul(RT3, RW, RS);
  B.fadd(RAcc, RAcc, RT3);
  B.add(RJ, RJ, ROne);
  B.jump(DHead);

  B.setInsertPoint(GDone);
  B.shr(RT0, RAcc, RTwo);
  B.and_(RT1, RGran, RWMask);
  B.shl(RT1, RT1, RTwo);
  B.add(RT1, RT1, ROut);
  B.store(RT0, RT1, 0);
  // Every 16th granule runs the ring-shift path.
  B.and_(RT2, RGran, RShMask);
  B.cmpEq(RT2, RT2, RZero);
  B.condBr(RT2, SHead, GLatch);

  B.setInsertPoint(SHead);
  B.movImm(RSh, 0);
  B.jump(SBody);

  B.setInsertPoint(SBody);
  // ring[(base + 512 + sh) & m] = ring[(base + sh) & m] — streaming copy.
  B.add(RT1, RBase, RSh);
  B.and_(RT1, RT1, RRMask);
  B.shl(RT1, RT1, RTwo);
  B.add(RT1, RT1, RRing);
  B.load(RT3, RT1, 0);
  B.movImm(RT0, 512);
  B.add(RT2, RBase, RT0);
  B.add(RT2, RT2, RSh);
  B.and_(RT2, RT2, RRMask);
  B.shl(RT2, RT2, RTwo);
  B.add(RT2, RT2, RRing);
  B.store(RT3, RT2, 0);
  B.add(RSh, RSh, ROne);
  B.movImm(RT0, 224);
  B.cmpLt(RT0, RSh, RT0);
  B.condBr(RT0, SBody, GLatch);

  B.setInsertPoint(GLatch);
  B.add(RGran, RGran, ROne);
  B.jump(GHead);

  B.setInsertPoint(Exit);
  B.ret();

  Workload W;
  W.Name = "mpg123";
  W.Fn = Fn;
  W.Inputs.push_back(
      {"track1", "audio", [](Simulator &Sim) {
         const uint64_t Granules = 2600;
         Sim.setInitialReg(RG, static_cast<int64_t>(Granules));
         fillRandomWords(Sim, WinOff, 32, 512, 0x3123a);
         fillRandomWords(Sim, RingOff, RingWords, 1 << 12, 0x3123b);
       }});
  W.Inputs.push_back(
      {"track2", "audio", [](Simulator &Sim) {
         const uint64_t Granules = 2000;
         Sim.setInitialReg(RG, static_cast<int64_t>(Granules));
         fillRandomWords(Sim, WinOff, 32, 512, 0x4123a);
         fillRandomWords(Sim, RingOff, RingWords, 1 << 12, 0x4123b);
       }});
  return W;
}
