//===- workloads/Workloads.h - MediaBench-analogue programs -----*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic stand-ins for the MediaBench programs the paper evaluates
/// (adpcm, epic, gsm, mpeg2-decode, mpg123, ghostscript). Each is a
/// register-machine IR program whose loop structure, compute/memory mix,
/// and working-set size are tuned so the extracted program parameters
/// (Noverlap, Ndependent, Ncache, tinvariant) land in the same regimes
/// as the paper's Table 7 — the evaluation depends only on those shapes,
/// not on codec semantics (see DESIGN.md, substitutions).
///
/// Inputs: every workload ships at least one input; the mpeg analogue
/// ships four inputs in two categories ("noB" = I/P only, "B2" = two B
/// frames between anchors), mirroring the paper's Section 6.4 study.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_WORKLOADS_WORKLOADS_H
#define CDVS_WORKLOADS_WORKLOADS_H

#include "ir/Function.h"
#include "sim/Simulator.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace cdvs {

/// One named input data set for a workload.
struct WorkloadInput {
  std::string Name;     ///< e.g. "flwr"
  std::string Category; ///< e.g. "B2" or "noB"
  /// Writes registers and the initial memory image for this input.
  std::function<void(Simulator &)> Setup;
};

/// A benchmark program plus its inputs.
struct Workload {
  std::string Name;
  std::shared_ptr<Function> Fn; ///< shared: Simulator holds a reference
  std::vector<WorkloadInput> Inputs;

  const WorkloadInput &input(const std::string &Name) const;
  const WorkloadInput &defaultInput() const { return Inputs.front(); }
};

/// ADPCM speech codec analogue: tiny compute kernel streaming a large
/// sample buffer; software-pipelined loads give memory overlap.
Workload makeAdpcm();

/// EPIC image codec analogue: two wavelet-like passes over an image that
/// fits in L2 but not L1; FP-heavy compute.
Workload makeEpic();

/// GSM speech codec analogue: multiply-heavy LTP filter over L1-resident
/// state; little DRAM traffic (dependent-compute bound).
Workload makeGsm();

/// MPEG-2 decoder analogue: per-frame dispatch to I/P/B paths; motion
/// compensation streams large reference frames. Inputs: 100b, bbc (noB
/// category), flwr, cact (B2 category).
Workload makeMpegDecode();

/// MP3 decoder analogue: subband synthesis dot products plus a periodic
/// ring-buffer shift that streams DRAM.
Workload makeMpg123();

/// Ghostscript analogue: span rasterization writing a framebuffer; store
/// misses are hidden by the write buffer.
Workload makeGhostscript();

/// All six, in the paper's usual order.
std::vector<Workload> allWorkloads();

/// Finds a workload by name (asserts on unknown names).
Workload workloadByName(const std::string &Name);

} // namespace cdvs

#endif // CDVS_WORKLOADS_WORKLOADS_H
