//===- workloads/Ghostscript.cpp - PostScript renderer analogue ------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
//
// Shape: span rasterization. An outer loop walks a span list (length,
// color, clip flag); clipped spans take a short rejection path, visible
// spans run an inner fill loop storing pixels into a 1 MB framebuffer.
// Store misses are hidden by the write buffer, so the profile has heavy
// cache-op cycles but almost no invariant DRAM time — like the paper's
// ghostscript run, whose total execution is tiny and savings thin.
//
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadCommon.h"
#include "workloads/Workloads.h"

#include "ir/IRBuilder.h"

using namespace cdvs;

namespace {

constexpr int RZero = 0;
constexpr int RS = 1;     // span count (parameter)
constexpr int RList = 2;  // span list base
constexpr int RFb = 3;    // framebuffer base
constexpr int RSpan = 4;
constexpr int RT0 = 5;
constexpr int RT1 = 6;
constexpr int RLen = 7;
constexpr int RColor = 8;
constexpr int RClip = 9;
constexpr int RPos = 10;
constexpr int RJ = 11;
constexpr int ROne = 12;
constexpr int RTwo = 13;
constexpr int RFMask = 14; // framebuffer word mask
constexpr int RT2 = 15;
constexpr int RThree = 16;

constexpr uint64_t ListOff = 0;             // 3 words per span
constexpr uint64_t FbOff = 64 * 1024;       // 256K words = 1 MB
constexpr uint64_t FbWords = 256 * 1024;
constexpr uint64_t MemSize = 1216 * 1024;

} // namespace

Workload cdvs::makeGhostscript() {
  auto Fn = std::make_shared<Function>("ghostscript", 20, MemSize);
  IRBuilder B(*Fn);

  int Entry = B.createBlock("entry");
  int SHead = B.createBlock("span_head");
  int SBody = B.createBlock("span_load");
  int Clip = B.createBlock("span_clipped");
  int FHead = B.createBlock("fill_head");
  int FBody = B.createBlock("fill_body");
  int SLatch = B.createBlock("span_latch");
  int Exit = B.createBlock("exit");

  B.setInsertPoint(Entry);
  B.movImm(RZero, 0);
  B.movImm(ROne, 1);
  B.movImm(RTwo, 2);
  B.movImm(RThree, 3);
  B.movImm(RFMask, static_cast<int64_t>(FbWords - 1));
  B.movImm(RList, static_cast<int64_t>(ListOff));
  B.movImm(RFb, static_cast<int64_t>(FbOff));
  B.movImm(RSpan, 0);
  B.jump(SHead);

  B.setInsertPoint(SHead);
  B.cmpLt(RT0, RSpan, RS);
  B.condBr(RT0, SBody, Exit);

  B.setInsertPoint(SBody);
  // desc = list[3*span]: len, color, clip.
  B.mul(RT1, RSpan, RThree);
  B.shl(RT1, RT1, RTwo);
  B.add(RT1, RT1, RList);
  B.load(RLen, RT1, 0);
  B.load(RColor, RT1, 4);
  B.load(RClip, RT1, 8);
  // position = (span * 977) & mask
  B.movImm(RT2, 977);
  B.mul(RPos, RSpan, RT2);
  B.and_(RPos, RPos, RFMask);
  B.condBr(RClip, Clip, FHead);

  B.setInsertPoint(Clip);
  // Rejected span: a little bookkeeping arithmetic only.
  B.add(RT0, RPos, RLen);
  B.shr(RT0, RT0, ROne);
  B.jump(SLatch);

  B.setInsertPoint(FHead);
  B.movImm(RJ, 0);
  B.jump(FBody);

  B.setInsertPoint(FBody);
  // fb[(pos + j) & mask] = color
  B.add(RT1, RPos, RJ);
  B.and_(RT1, RT1, RFMask);
  B.shl(RT1, RT1, RTwo);
  B.add(RT1, RT1, RFb);
  B.store(RColor, RT1, 0);
  B.add(RJ, RJ, ROne);
  B.cmpLt(RT0, RJ, RLen);
  B.condBr(RT0, FBody, SLatch);

  B.setInsertPoint(SLatch);
  B.add(RSpan, RSpan, ROne);
  B.jump(SHead);

  B.setInsertPoint(Exit);
  B.ret();

  Workload W;
  W.Name = "ghostscript";
  W.Fn = Fn;
  W.Inputs.push_back(
      {"tiger", "page", [](Simulator &Sim) {
         const uint64_t Spans = 2600;
         Sim.setInitialReg(RS, static_cast<int64_t>(Spans));
         Rng R(0x9057);
         for (uint64_t I = 0; I < Spans; ++I) {
           uint32_t Len = 8 + static_cast<uint32_t>(R.nextBelow(80));
           uint32_t Color = static_cast<uint32_t>(R.nextBelow(1 << 24));
           uint32_t Clip = R.nextBool(0.2) ? 1 : 0;
           Sim.setInitialMem32(ListOff + 12 * I + 0, Len);
           Sim.setInitialMem32(ListOff + 12 * I + 4, Color);
           Sim.setInitialMem32(ListOff + 12 * I + 8, Clip);
         }
       }});
  return W;
}
