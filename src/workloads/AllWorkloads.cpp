//===- workloads/AllWorkloads.cpp - workload registry ----------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "support/Error.h"

using namespace cdvs;

const WorkloadInput &Workload::input(const std::string &InputName) const {
  for (const WorkloadInput &I : Inputs)
    if (I.Name == InputName)
      return I;
  cdvsUnreachable(("unknown input '" + InputName + "' for workload '" +
                   Name + "'")
                      .c_str());
}

std::vector<Workload> cdvs::allWorkloads() {
  std::vector<Workload> All;
  All.push_back(makeAdpcm());
  All.push_back(makeEpic());
  All.push_back(makeGsm());
  All.push_back(makeMpegDecode());
  All.push_back(makeMpg123());
  All.push_back(makeGhostscript());
  return All;
}

Workload cdvs::workloadByName(const std::string &Name) {
  for (Workload &W : allWorkloads())
    if (W.Name == Name)
      return W;
  cdvsUnreachable(("unknown workload '" + Name + "'").c_str());
}
