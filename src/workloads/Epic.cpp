//===- workloads/Epic.cpp - EPIC image codec analogue ----------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
//
// Shape: two wavelet-like filter passes over a 512x512-word image
// (1 MB: larger than both L1 and L2).
//  * Pass 1 walks rows sequentially (cold DRAM misses, software
//    pipelined two loads ahead so FP compute overlaps the misses) and
//    writes a temp plane.
//  * Pass 2 walks the temp plane column-wise (2 KB stride: every access
//    a new cache block; one column group in eight re-misses to DRAM,
//    the rest hit L1/L2), also pipelined two rows ahead.
// FP multiply/add dominates compute. The mixed overlap/hit-heavy
// profile puts epic in the regime where the paper reports its largest
// mid-deadline savings.
//
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadCommon.h"
#include "workloads/Workloads.h"

#include "ir/IRBuilder.h"

using namespace cdvs;

namespace {

constexpr int RZero = 0;
constexpr int RDim = 1;   // image dimension (parameter, 256)
constexpr int RImg = 2;
constexpr int RTmp = 3;
constexpr int RW1 = 4;    // filter weight 1
constexpr int RW2 = 5;    // filter weight 2
constexpr int RRow = 6;
constexpr int RCol = 7;
constexpr int RT0 = 8;
constexpr int RT1 = 9;
constexpr int RT2 = 10;
constexpr int RP0 = 11;   // pipelined pixel (current)
constexpr int RP1 = 12;   // pixel +1
constexpr int RP2 = 13;   // pixel +2
constexpr int RAcc = 14;
constexpr int ROne = 15;
constexpr int RTwo = 16;
constexpr int RIdx = 17;  // linear index
constexpr int RLimit = 18;// dim*dim
constexpr int RStride = 19;
constexpr int RT3 = 20;
constexpr int RShift = 21;

constexpr uint64_t ImgOff = 0;
constexpr uint64_t TmpOff = 1024 * 1024;
constexpr uint64_t MemSize = 2304 * 1024;

} // namespace

Workload cdvs::makeEpic() {
  auto Fn = std::make_shared<Function>("epic", 24, MemSize);
  IRBuilder B(*Fn);

  int Entry = B.createBlock("entry");
  int P1Head = B.createBlock("pass1_head");
  int P1Body = B.createBlock("pass1_body");
  int P2Init = B.createBlock("pass2_init");
  int P2OHead = B.createBlock("pass2_col_head");
  int P2IHead = B.createBlock("pass2_row_head");
  int P2Body = B.createBlock("pass2_body");
  int P2Latch = B.createBlock("pass2_col_latch");
  int Exit = B.createBlock("exit");

  B.setInsertPoint(Entry);
  B.movImm(RZero, 0);
  B.movImm(ROne, 1);
  B.movImm(RTwo, 2);
  B.movImm(RShift, 7);
  B.movImm(RW1, 5);
  B.movImm(RW2, 3);
  B.movImm(RImg, static_cast<int64_t>(ImgOff));
  B.movImm(RTmp, static_cast<int64_t>(TmpOff));
  B.mul(RLimit, RDim, RDim);
  B.movImm(RIdx, 0);
  // Prime the two-deep pipeline on the linear pass.
  B.load(RP0, RImg, 0);
  B.load(RP1, RImg, 4);
  B.jump(P1Head);

  // ---- Pass 1: linear sweep, pipelined loads, FP filter. ----
  B.setInsertPoint(P1Head);
  B.cmpLt(RT0, RIdx, RLimit);
  B.condBr(RT0, P1Body, P2Init);

  B.setInsertPoint(P1Body);
  B.add(RT1, RIdx, RTwo); // prefetch idx+2
  B.shl(RT1, RT1, RTwo);
  B.add(RT1, RT1, RImg);
  B.load(RP2, RT1, 0);
  // acc = (p0*w1 + p1*w2) >> 7  (FP classes)
  B.fmul(RT2, RP0, RW1);
  B.fmul(RT3, RP1, RW2);
  B.fadd(RAcc, RT2, RT3);
  B.shr(RAcc, RAcc, RShift);
  B.shl(RT1, RIdx, RTwo);
  B.add(RT1, RT1, RTmp);
  B.store(RAcc, RT1, 0);
  B.mov(RP0, RP1);
  B.mov(RP1, RP2);
  B.add(RIdx, RIdx, ROne);
  B.jump(P1Head);

  // ---- Pass 2: column-major sweep of the temp plane. ----
  B.setInsertPoint(P2Init);
  B.movImm(RCol, 0);
  B.shl(RStride, RDim, RTwo); // row stride in bytes
  B.jump(P2OHead);

  B.setInsertPoint(P2OHead);
  B.cmpLt(RT0, RCol, RDim);
  B.condBr(RT0, P2IHead, Exit);
  // (true -> run the column; false -> done)

  B.setInsertPoint(P2IHead);
  B.movImm(RRow, 0);
  B.movImm(RAcc, 0);
  // Prime the column pipeline: rows 0 and 1 of this column.
  B.shl(RT1, RCol, RTwo);
  B.add(RT1, RT1, RTmp);
  B.load(RP0, RT1, 0);
  B.add(RT1, RT1, RStride);
  B.load(RP1, RT1, 0);
  B.jump(P2Body);

  B.setInsertPoint(P2Body);
  // Prefetch (row+2, col): addr = tmp + ((row+2)*dim + col) * 4 —
  // a 2 KB-stride walk, two rows ahead of the consumer.
  B.add(RT1, RRow, RTwo);
  B.mul(RT1, RT1, RDim);
  B.add(RT1, RT1, RCol);
  B.shl(RT1, RT1, RTwo);
  B.add(RT1, RT1, RTmp);
  B.load(RP2, RT1, 0);
  B.fmul(RT2, RP0, RW1);
  B.fadd(RAcc, RAcc, RT2);
  B.shr(RAcc, RAcc, ROne);
  // img[row, col] = acc
  B.mul(RT3, RRow, RDim);
  B.add(RT3, RT3, RCol);
  B.shl(RT3, RT3, RTwo);
  B.add(RT3, RT3, RImg);
  B.store(RAcc, RT3, 0);
  B.mov(RP0, RP1);
  B.mov(RP1, RP2);
  B.add(RRow, RRow, ROne);
  B.cmpLt(RT0, RRow, RDim);
  B.condBr(RT0, P2Body, P2Latch);

  B.setInsertPoint(P2Latch);
  B.add(RCol, RCol, ROne);
  B.jump(P2OHead);

  B.setInsertPoint(Exit);
  B.ret();

  Workload W;
  W.Name = "epic";
  W.Fn = Fn;
  W.Inputs.push_back(
      {"baboon", "image", [](Simulator &Sim) {
         const uint64_t Dim = 512;
         Sim.setInitialReg(RDim, static_cast<int64_t>(Dim));
         fillRandomWords(Sim, ImgOff, Dim * Dim + 2, 255, 0xe91c);
       }});
  W.Inputs.push_back(
      {"lena", "image", [](Simulator &Sim) {
         const uint64_t Dim = 384; // smaller frame, same pass structure
         Sim.setInitialReg(RDim, static_cast<int64_t>(Dim));
         fillRandomWords(Sim, ImgOff, Dim * Dim + 2, 255, 0x1e7a);
       }});
  return W;
}
