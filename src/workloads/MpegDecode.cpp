//===- workloads/MpegDecode.cpp - MPEG-2 decoder analogue ------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
//
// Shape: a frame loop with a per-frame VLD-like bit-unpacking loop
// (compute bound, L1 resident) followed by a dispatch on the frame type
// read from the input's frame-pattern table:
//  * I frames run an IDCT-like integer kernel over an L1-resident
//    coefficient table (compute bound);
//  * P frames run motion compensation streaming one large reference
//    plane (DRAM misses, software pipelined);
//  * B frames average two reference planes (double the DRAM traffic).
// Inputs come in the paper's two categories: "noB" streams (100b, bbc —
// I/P only) and "B2" streams (flwr, cact — two B frames between
// anchors). Category changes which paths are hot, which is exactly what
// Section 6.4's profile-mismatch study needs.
//
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadCommon.h"
#include "workloads/Workloads.h"

#include "ir/IRBuilder.h"

using namespace cdvs;

namespace {

constexpr int RZero = 0;
constexpr int RFCount = 1; // frame count (parameter)
constexpr int RKIters = 2; // per-frame kernel iterations (parameter)
constexpr int RPat = 3;    // frame-type pattern base
constexpr int RRefA = 4;
constexpr int RRefB = 5;
constexpr int RCur = 6;
constexpr int RCoef = 7;
constexpr int RFrame = 8;
constexpr int RType = 9;
constexpr int RK = 10;
constexpr int RT0 = 11;
constexpr int RT1 = 12;
constexpr int RT2 = 13;
constexpr int RT3 = 14;
constexpr int RA = 15;    // pipelined ref A value
constexpr int RA1 = 16;
constexpr int RB = 17;    // ref B value
constexpr int RB1 = 18;
constexpr int ROne = 19;
constexpr int RTwo = 20;
constexpr int RMask = 21;  // plane index mask
constexpr int RCMask = 22; // coef index mask
constexpr int RMot = 23;   // motion offset (parameter, input dependent)
constexpr int RPMask = 24; // pattern index mask
constexpr int RRes = 25;   // residual value
constexpr int RA2 = 26;    // ref A value, two iterations ahead
constexpr int RB2 = 27;    // ref B value, two iterations ahead
constexpr int RVld = 28;   // VLD loop counter / state

constexpr uint64_t PatOff = 0;              // 256 words
constexpr uint64_t CoefOff = 2 * 1024;      // 256 words
constexpr uint64_t RefAOff = 64 * 1024;     // 128K words = 512 KB
constexpr uint64_t RefBOff = 576 * 1024;    // 128K words
constexpr uint64_t CurOff = 1088 * 1024;    // output plane (512 KB)
constexpr uint64_t MemSize = 1664 * 1024;
// Each reference plane is as large as the whole L2, so motion
// compensation streams from DRAM instead of hitting the L2.
constexpr uint64_t PlaneWords = 128 * 1024;

} // namespace

Workload cdvs::makeMpegDecode() {
  auto Fn = std::make_shared<Function>("mpeg_decode", 29, MemSize);
  IRBuilder B(*Fn);

  int Entry = B.createBlock("entry");
  int FHead = B.createBlock("frame_head");
  int VldHead = B.createBlock("vld_head");
  int VldBody = B.createBlock("vld_body");
  int FBody = B.createBlock("frame_dispatch");
  int ChkP = B.createBlock("check_p");
  int IHead = B.createBlock("idct_head");
  int IBody = B.createBlock("idct_body");
  int PHead = B.createBlock("mc_p_head");
  int PBody = B.createBlock("mc_p_body");
  int BHead = B.createBlock("mc_b_head");
  int BBody = B.createBlock("mc_b_body");
  int FLatch = B.createBlock("frame_latch");
  int Exit = B.createBlock("exit");

  B.setInsertPoint(Entry);
  B.movImm(RZero, 0);
  B.movImm(ROne, 1);
  B.movImm(RTwo, 2);
  B.movImm(RMask, static_cast<int64_t>(PlaneWords - 1));
  B.movImm(RCMask, 255);
  B.movImm(RPMask, 255);
  B.movImm(RPat, static_cast<int64_t>(PatOff));
  B.movImm(RCoef, static_cast<int64_t>(CoefOff));
  B.movImm(RRefA, static_cast<int64_t>(RefAOff));
  B.movImm(RRefB, static_cast<int64_t>(RefBOff));
  B.movImm(RCur, static_cast<int64_t>(CurOff));
  B.movImm(RFrame, 0);
  B.jump(FHead);

  B.setInsertPoint(FHead);
  B.cmpLt(RT0, RFrame, RFCount);
  B.condBr(RT0, VldHead, Exit);

  // ---- Per-frame VLD: bit-unpacking arithmetic on L1-resident
  // coefficient words (a mid-size compute-bound region). ----
  B.setInsertPoint(VldHead);
  B.movImm(RVld, 0);
  B.jump(VldBody);

  B.setInsertPoint(VldBody);
  B.and_(RT1, RVld, RCMask);
  B.shl(RT1, RT1, RTwo);
  B.add(RT1, RT1, RCoef);
  B.load(RT2, RT1, 0);
  B.xor_(RT2, RT2, RVld);
  B.shr(RT3, RT2, ROne);
  B.add(RT3, RT3, RT2);
  B.and_(RT3, RT3, RCMask);
  B.add(RVld, RVld, ROne);
  B.movImm(RT0, 160);
  B.cmpLt(RT0, RVld, RT0);
  B.condBr(RT0, VldBody, FBody);

  B.setInsertPoint(FBody);
  // type = pattern[frame & 255]; 0 = I, 1 = P, 2 = B.
  B.and_(RT1, RFrame, RPMask);
  B.shl(RT1, RT1, RTwo);
  B.add(RT1, RT1, RPat);
  B.load(RType, RT1, 0);
  B.movImm(RK, 0);
  B.cmpEq(RT0, RType, RZero);
  B.condBr(RT0, IHead, ChkP);

  B.setInsertPoint(ChkP);
  B.cmpEq(RT0, RType, ROne);
  B.condBr(RT0, PHead, BHead);

  // ---- I frames: IDCT-like integer kernel on L1-resident tables. ----
  B.setInsertPoint(IHead);
  B.cmpLt(RT0, RK, RKIters);
  B.condBr(RT0, IBody, FLatch);

  B.setInsertPoint(IBody);
  B.and_(RT1, RK, RCMask);
  B.shl(RT1, RT1, RTwo);
  B.add(RT1, RT1, RCoef);
  B.load(RT2, RT1, 0);
  B.mul(RT3, RT2, RT2);     // butterfly-ish multiplies
  B.shr(RT3, RT3, RTwo);
  B.mul(RT3, RT3, RT2);
  B.shr(RT3, RT3, RTwo);
  B.add(RT3, RT3, RK);
  // cur[(k*33 + frame) & mask] = value
  B.movImm(RT0, 33);
  B.mul(RT0, RK, RT0);
  B.add(RT0, RT0, RFrame);
  B.and_(RT0, RT0, RMask);
  B.shl(RT0, RT0, RTwo);
  B.add(RT0, RT0, RCur);
  B.store(RT3, RT0, 0);
  B.add(RK, RK, ROne);
  B.jump(IHead);

  // ---- P frames: one reference plane streamed, pipelined. ----
  B.setInsertPoint(PHead);
  B.cmpLt(RT0, RK, RKIters);
  B.condBr(RT0, PBody, FLatch);

  B.setInsertPoint(PBody);
  // addr = refA + ((k*9 + frame*motion) & mask)*4 — strided stream.
  B.movImm(RT1, 9);
  B.mul(RT1, RK, RT1);
  B.mul(RT2, RFrame, RMot);
  B.add(RT1, RT1, RT2);
  B.and_(RT1, RT1, RMask);
  B.shl(RT1, RT1, RTwo);
  B.add(RT1, RT1, RRefA);
  B.load(RA2, RT1, 0); // pipelined: consumed two iterations later as RA
  // residual = coef[k & 255]
  B.and_(RT2, RK, RCMask);
  B.shl(RT2, RT2, RTwo);
  B.add(RT2, RT2, RCoef);
  B.load(RRes, RT2, 0);
  B.add(RT3, RA, RRes);
  B.shr(RT3, RT3, ROne);
  B.shl(RT0, RK, RTwo);
  B.add(RT0, RT0, RCur);
  B.store(RT3, RT0, 0);
  B.mov(RA, RA1);
  B.mov(RA1, RA2);
  B.add(RK, RK, ROne);
  B.jump(PHead);

  // ---- B frames: two reference planes streamed and averaged. ----
  B.setInsertPoint(BHead);
  B.cmpLt(RT0, RK, RKIters);
  B.condBr(RT0, BBody, FLatch);

  B.setInsertPoint(BBody);
  B.movImm(RT1, 9);
  B.mul(RT1, RK, RT1);
  B.mul(RT2, RFrame, RMot);
  B.add(RT1, RT1, RT2);
  B.and_(RT1, RT1, RMask);
  B.shl(RT1, RT1, RTwo);
  B.add(RT3, RT1, RRefA);
  B.load(RA2, RT3, 0);
  B.add(RT3, RT1, RRefB);
  B.load(RB2, RT3, 0);
  // avg of last iteration's pipelined values + residual
  B.add(RT2, RA, RB);
  B.shr(RT2, RT2, ROne);
  B.and_(RT0, RK, RCMask);
  B.shl(RT0, RT0, RTwo);
  B.add(RT0, RT0, RCoef);
  B.load(RRes, RT0, 0);
  B.add(RT2, RT2, RRes);
  B.shl(RT0, RK, RTwo);
  B.add(RT0, RT0, RCur);
  B.store(RT2, RT0, 0);
  B.mov(RA, RA1);
  B.mov(RA1, RA2);
  B.mov(RB, RB1);
  B.mov(RB1, RB2);
  B.add(RK, RK, ROne);
  B.jump(BHead);

  B.setInsertPoint(FLatch);
  B.add(RFrame, RFrame, ROne);
  B.jump(FHead);

  B.setInsertPoint(Exit);
  B.ret();

  // Input construction ------------------------------------------------
  auto makeSetup = [](uint64_t Frames, uint64_t Iters, int64_t Motion,
                      std::vector<uint32_t> Pattern, uint64_t Seed) {
    return [=](Simulator &Sim) {
      Sim.setInitialReg(RFCount, static_cast<int64_t>(Frames));
      Sim.setInitialReg(RKIters, static_cast<int64_t>(Iters));
      Sim.setInitialReg(RMot, Motion);
      fillPatternWords(Sim, PatOff, 256, Pattern);
      fillRandomWords(Sim, CoefOff, 256, 1024, Seed);
      fillRandomWords(Sim, RefAOff, PlaneWords, 255, Seed + 1);
      fillRandomWords(Sim, RefBOff, PlaneWords, 255, Seed + 2);
    };
  };

  // Categories: "noB" = I,P,P,P,...; "B2" = I,B,B,P,B,B,...
  std::vector<uint32_t> NoB = {0, 1, 1, 1, 1, 1};
  std::vector<uint32_t> B2 = {0, 2, 2, 1, 2, 2};

  Workload W;
  W.Name = "mpeg_decode";
  W.Fn = Fn;
  W.Inputs.push_back(
      {"100b", "noB", makeSetup(96, 700, 1365, NoB, 0x100b)});
  W.Inputs.push_back(
      {"bbc", "noB", makeSetup(128, 600, 1311, NoB, 0xbbc)});
  W.Inputs.push_back(
      {"flwr", "B2", makeSetup(96, 700, 1365, B2, 0xf1e2)});
  W.Inputs.push_back(
      {"cact", "B2", makeSetup(120, 640, 1237, B2, 0xcac7)});
  return W;
}
