//===- workloads/Gsm.cpp - GSM speech codec analogue -----------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
//
// Shape: two phases, like a real encoder front end.
//  * Phase 1 — VAD/noise estimation: a light streaming pass over the
//    whole input (memory bound, pipelined loads: DRAM overlap).
//  * Phase 2 — the frame loop around a 40-sample inner LTP-filter loop,
//    multiply-heavy on L1-resident coefficient/history tables (the
//    input words were already touched by phase 1, so this phase is
//    dependent-compute bound). Per frame there is a long divide and a
//    data-dependent "voiced" smoothing path.
// The phase split gives the MILP a real opportunity: run the
// memory-bound scan slow and the compute-bound filter fast.
//
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadCommon.h"
#include "workloads/Workloads.h"

#include "ir/IRBuilder.h"

using namespace cdvs;

namespace {

constexpr int RZero = 0;
constexpr int RF = 1;     // frame count (parameter)
constexpr int RIn = 2;    // input stream base
constexpr int ROut = 3;   // per-frame output base
constexpr int RCoef = 4;  // coefficient table base
constexpr int RHist = 5;  // history ring base
constexpr int RFrame = 6; // frame index
constexpr int RJ = 7;     // sample index
constexpr int RAcc = 8;
constexpr int RT0 = 9;
constexpr int RT1 = 10;
constexpr int RT2 = 11;
constexpr int RX = 12;
constexpr int RC = 13;
constexpr int RH = 14;
constexpr int ROne = 15;
constexpr int RTwo = 16;
constexpr int RFort = 17;  // 40
constexpr int RCMask = 18; // 15  (coef index mask)
constexpr int RHMask = 19; // 1023 (history ring mask)
constexpr int RScale = 20;
constexpr int RFB = 21;    // frame base address
constexpr int RVBit = 22;  // voiced test mask
constexpr int RT3 = 23;
constexpr int RNoise = 24; // noise estimate (phase 1 result)
constexpr int RP0 = 25;    // pipelined scan value
constexpr int RP1 = 26;    // scan value +1
constexpr int RP2 = 27;    // scan value +2

constexpr uint64_t CoefOff = 0;          // 64 words
constexpr uint64_t HistOff = 4 * 1024;   // 1024 words = 4 KB
constexpr uint64_t OutOff = 16 * 1024;   // frame outputs
constexpr uint64_t InOff = 64 * 1024;    // streamed input
constexpr uint64_t MemSize = 768 * 1024;

} // namespace

Workload cdvs::makeGsm() {
  auto Fn = std::make_shared<Function>("gsm", 28, MemSize);
  IRBuilder B(*Fn);

  int Entry = B.createBlock("entry");
  int VHead = B.createBlock("vad_head");
  int VBody = B.createBlock("vad_body");
  int FHead = B.createBlock("frame_head");
  int FBody = B.createBlock("frame_body");
  int IHead = B.createBlock("ltp_head");
  int IBody = B.createBlock("ltp_body");
  int FDone = B.createBlock("frame_done");
  int Voiced = B.createBlock("voiced_smooth");
  int FLatch = B.createBlock("frame_latch");
  int Exit = B.createBlock("exit");

  B.setInsertPoint(Entry);
  B.movImm(RZero, 0);
  B.movImm(ROne, 1);
  B.movImm(RTwo, 2);
  B.movImm(RFort, 40);
  B.movImm(RCMask, 15);
  B.movImm(RHMask, 1023);
  B.movImm(RScale, 41);
  B.movImm(RVBit, 64);
  B.movImm(RIn, static_cast<int64_t>(InOff));
  B.movImm(ROut, static_cast<int64_t>(OutOff));
  B.movImm(RCoef, static_cast<int64_t>(CoefOff));
  B.movImm(RHist, static_cast<int64_t>(HistOff));
  B.movImm(RFrame, 0);
  B.movImm(RNoise, 0);
  // Total sample count for the scan: frames * 40.
  B.mul(RT2, RF, RFort);
  B.movImm(RJ, 0);
  // Prime the scan pipeline two loads deep.
  B.load(RP0, RIn, 0);
  B.load(RP1, RIn, 4);
  B.jump(VHead);

  // ---- Phase 1: VAD / noise-estimation scan over the input. ----
  B.setInsertPoint(VHead);
  B.cmpLt(RT0, RJ, RT2);
  B.condBr(RT0, VBody, FHead);

  B.setInsertPoint(VBody);
  B.add(RT1, RJ, RTwo); // prefetch sample j+2
  B.shl(RT1, RT1, RTwo);
  B.add(RT1, RT1, RIn);
  B.load(RP2, RT1, 0);
  B.add(RNoise, RNoise, RP0);
  B.shr(RNoise, RNoise, ROne);
  B.mov(RP0, RP1);
  B.mov(RP1, RP2);
  B.add(RJ, RJ, ROne);
  B.jump(VHead);

  // ---- Phase 2: the frame loop. ----
  B.setInsertPoint(FHead);
  B.cmpLt(RT0, RFrame, RF);
  B.condBr(RT0, FBody, Exit);

  B.setInsertPoint(FBody);
  // Frame base = In + 160*frame (40 words of 4 bytes).
  B.movImm(RT1, 160);
  B.mul(RFB, RFrame, RT1);
  B.add(RFB, RFB, RIn);
  B.movImm(RJ, 0);
  B.movImm(RAcc, 0);
  B.jump(IHead);

  B.setInsertPoint(IHead);
  B.cmpLt(RT0, RJ, RFort);
  B.condBr(RT0, IBody, FDone);

  B.setInsertPoint(IBody);
  // x = in[frame, j]  (streamed: the only DRAM traffic)
  B.shl(RT1, RJ, RTwo);
  B.add(RT1, RT1, RFB);
  B.load(RX, RT1, 0);
  // c = coef[j & 15]  (L1 resident)
  B.and_(RT2, RJ, RCMask);
  B.shl(RT2, RT2, RTwo);
  B.add(RT2, RT2, RCoef);
  B.load(RC, RT2, 0);
  // h = hist[(j + frame) & 1023]  (L1 resident)
  B.add(RT3, RJ, RFrame);
  B.and_(RT3, RT3, RHMask);
  B.shl(RT3, RT3, RTwo);
  B.add(RT3, RT3, RHist);
  B.load(RH, RT3, 0);
  // acc += x*c + h*c  (multiply-heavy dependent chain)
  B.mul(RT1, RX, RC);
  B.add(RAcc, RAcc, RT1);
  B.mul(RT2, RH, RC);
  B.add(RAcc, RAcc, RT2);
  // hist[idx] = acc (bounded)
  B.and_(RT1, RAcc, RHMask);
  B.store(RT1, RT3, 0);
  B.add(RJ, RJ, ROne);
  B.jump(IHead);

  B.setInsertPoint(FDone);
  // Long-latency normalization divide, then the voiced/unvoiced branch.
  B.div(RT0, RAcc, RScale);
  B.shl(RT1, RFrame, RTwo);
  B.add(RT1, RT1, ROut);
  B.store(RT0, RT1, 0);
  B.and_(RT2, RAcc, RVBit);
  B.condBr(RT2, Voiced, FLatch);

  B.setInsertPoint(Voiced);
  // Extra smoothing multiplies on the voiced path.
  B.mul(RT0, RT0, RScale);
  B.shr(RT0, RT0, RTwo);
  B.mul(RT0, RT0, RTwo);
  B.shr(RT0, RT0, ROne);
  B.jump(FLatch);

  B.setInsertPoint(FLatch);
  B.add(RFrame, RFrame, ROne);
  B.jump(FHead);

  B.setInsertPoint(Exit);
  B.ret();

  Workload W;
  W.Name = "gsm";
  W.Fn = Fn;
  W.Inputs.push_back(
      {"speech1", "speech", [](Simulator &Sim) {
         const uint64_t Frames = 2200;
         Sim.setInitialReg(RF, static_cast<int64_t>(Frames));
         fillRandomWords(Sim, CoefOff, 64, 4096, 0x65731);
         fillRandomWords(Sim, HistOff, 1024, 4096, 0x65732);
         fillRandomWords(Sim, InOff, Frames * 40, 1 << 16, 0x65733);
       }});
  W.Inputs.push_back(
      {"speech2", "speech", [](Simulator &Sim) {
         const uint64_t Frames = 1700;
         Sim.setInitialReg(RF, static_cast<int64_t>(Frames));
         fillRandomWords(Sim, CoefOff, 64, 4096, 0x75731);
         fillRandomWords(Sim, HistOff, 1024, 4096, 0x75732);
         fillRandomWords(Sim, InOff, Frames * 40, 1 << 16, 0x75733);
       }});
  return W;
}
