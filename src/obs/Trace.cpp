//===- obs/Trace.cpp - Structured tracing with a ring-buffer sink ----------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "obs/Metrics.h"

#include <cstdio>

using namespace cdvs;
using namespace cdvs::obs;

TraceRecorder::TraceRecorder(size_t Capacity) : Ring(Capacity) {}

void TraceRecorder::reset(size_t Capacity) {
  std::lock_guard<std::mutex> Lock(Mu);
  Ring.reset(Capacity);
  Dropped = 0;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Ring.clear();
  Dropped = 0;
}

void TraceRecorder::record(const TraceEvent &E) {
  bool Overwrote = false;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (!Ring.push(E)) {
      ++Dropped;
      Overwrote = true;
    }
  }
  if (Overwrote) {
    // Ring saturation is a measurement gap: count it where scrapers
    // look (dvs-stat surfaces this family next to the trace itself).
    static Counter &DroppedCtr = metrics().counter(
        "cdvs_trace_dropped_total",
        "Trace events lost to ring-buffer overwrite since process "
        "start.");
    DroppedCtr.inc();
  }
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Ring.size();
}

uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Dropped;
}

namespace {

/// JSON string escape for names/categories (literals in practice, but
/// stay correct for any content).
std::string jsonStr(const char *S) {
  std::string Out = "\"";
  for (; *S; ++S) {
    if (*S == '\\' || *S == '"')
      (Out += '\\') += *S;
    else if (*S == '\n')
      Out += "\\n";
    else
      Out += *S;
  }
  return Out + "\"";
}

std::string formatNum(double V) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.10g", V);
  return Buf;
}

/// Microsecond timestamp with sub-us precision, as trace_event wants.
std::string formatUs(uint64_t Nanos) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.3f",
                static_cast<double>(Nanos) / 1000.0);
  return Buf;
}

std::string hex64(uint64_t V) {
  char Buf[20];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

} // namespace

std::string TraceRecorder::renderChromeTrace(int Pid,
                                             const char *ProcessName)
    const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string PidStr = std::to_string(Pid);
  std::string Out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  if (ProcessName) {
    Out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + PidStr +
           ",\"args\":{\"name\":" + jsonStr(ProcessName) + "}}";
    First = false;
  }
  Ring.forEach([&](const TraceEvent &E) {
    if (!First)
      Out += ",";
    First = false;
    Out += "{\"name\":" + jsonStr(E.Name) +
           ",\"cat\":" + jsonStr(E.Cat) + ",\"ph\":\"";
    Out += E.Phase;
    Out += "\",\"pid\":" + PidStr +
           ",\"tid\":" + std::to_string(E.Tid) +
           ",\"ts\":" + formatUs(E.StartNs);
    if (E.Phase == 'X')
      Out += ",\"dur\":" + formatUs(E.DurNs);
    if (E.Phase == 'i')
      Out += ",\"s\":\"t\""; // thread-scoped instant
    if (E.TraceHi != 0 || E.TraceLo != 0)
      Out += ",\"trace_id\":\"" + hex64(E.TraceHi) + hex64(E.TraceLo) +
             "\",\"span_id\":\"" + hex64(E.SpanId) +
             "\",\"parent_span_id\":\"" + hex64(E.ParentSpan) + "\"";
    if (E.ArgKey0) {
      Out += ",\"args\":{" + jsonStr(E.ArgKey0) + ":" +
             formatNum(E.ArgVal0);
      if (E.ArgKey1)
        Out += "," + jsonStr(E.ArgKey1) + ":" + formatNum(E.ArgVal1);
      Out += "}";
    }
    Out += "}";
  });
  Out += "]}";
  return Out;
}

TraceRecorder &cdvs::obs::trace() {
  static TraceRecorder *R = new TraceRecorder();
  return *R;
}

uint32_t cdvs::obs::traceThreadId() {
  static std::atomic<uint32_t> Next{0};
  thread_local uint32_t Id =
      Next.fetch_add(1, std::memory_order_relaxed);
  return Id;
}

namespace {
thread_local SpanContext CurrentCtx;
} // namespace

SpanContext cdvs::obs::currentSpanContext() { return CurrentCtx; }

void cdvs::obs::setSpanContext(const SpanContext &Ctx) {
  CurrentCtx = Ctx;
}

uint64_t cdvs::obs::nextSpanId() {
  // splitmix64 over a per-process random-ish seed plus a counter: ids
  // are unique within the process and collide across processes with
  // negligible probability, which is all span identity needs.
  static std::atomic<uint64_t> Seq{
      (static_cast<uint64_t>(
           reinterpret_cast<uintptr_t>(&CurrentCtx)) << 16) ^
      monotonicNanos()};
  uint64_t Z = Seq.fetch_add(0x9e3779b97f4a7c15ull,
                             std::memory_order_relaxed) +
               0x9e3779b97f4a7c15ull;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  Z = Z ^ (Z >> 31);
  return Z ? Z : 1;
}

void cdvs::obs::traceInstant(const char *Name, const char *Cat,
                             const char *ArgKey, double ArgVal) {
  TraceRecorder &R = trace();
  if (!R.enabled())
    return;
  TraceEvent E;
  E.Name = Name;
  E.Cat = Cat;
  E.Phase = 'i';
  E.Tid = traceThreadId();
  E.StartNs = monotonicNanos();
  if (ArgKey) {
    E.ArgKey0 = ArgKey;
    E.ArgVal0 = ArgVal;
  }
  R.record(E);
}
