//===- obs/Trace.h - Structured tracing with a ring-buffer sink -*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scoped-span tracing for the scheduling pipeline. A TraceSpan stamps
/// monotonic begin/end times (support/Clock.h) for a named scope; spans
/// on the same thread nest by time containment, which is exactly how the
/// Chrome trace_event viewer (about:tracing, Perfetto) reconstructs call
/// trees, so no explicit parent ids are carried. Instant events mark
/// points in time (incumbent updates, admissions).
///
/// The sink is a bounded drop-oldest ring (support/RingBuffer.h): a long
/// run keeps the newest events and never grows. flushChromeTrace()
/// serializes the surviving events as Chrome trace_event JSON.
///
/// Overhead discipline: tracing is compiled in but DISABLED by default.
/// Every entry point checks one relaxed atomic bool first; a disabled
/// span construct/destruct is a load + branch and touches no clock, no
/// lock, no memory. Enabled spans take the recorder mutex only at scope
/// exit (one push per span). Span and category names must be string
/// literals (or otherwise outlive the recorder) — events store the
/// pointers, never copies.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_OBS_TRACE_H
#define CDVS_OBS_TRACE_H

#include "support/Clock.h"
#include "support/RingBuffer.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace cdvs {
namespace obs {

/// One trace event. Complete spans ('X') carry a duration; instants
/// ('i') are points. Up to two numeric args ride along and land in the
/// viewer's args pane.
struct TraceEvent {
  const char *Name = nullptr;
  const char *Cat = "cdvs";
  char Phase = 'X'; ///< 'X' complete, 'i' instant
  uint32_t Tid = 0;
  uint64_t StartNs = 0;
  uint64_t DurNs = 0;
  const char *ArgKey0 = nullptr;
  double ArgVal0 = 0.0;
  const char *ArgKey1 = nullptr;
  double ArgVal1 = 0.0;
};

/// Bounded trace sink; see the file comment.
class TraceRecorder {
public:
  explicit TraceRecorder(size_t Capacity = 1 << 16);

  /// Flips recording on or off; off drops events at the check, not the
  /// sink.
  void setEnabled(bool On) {
    Enabled.store(On, std::memory_order_relaxed);
  }
  bool enabled() const {
    return Enabled.load(std::memory_order_relaxed);
  }

  /// Drops all buffered events and re-sizes the ring.
  void reset(size_t Capacity);
  /// Drops all buffered events (capacity kept, dropped count cleared).
  void clear();

  void record(const TraceEvent &E);

  size_t size() const;
  /// Events lost to ring overwrite since the last clear/reset.
  uint64_t dropped() const;

  /// Serializes the surviving events (oldest first) as Chrome
  /// trace_event JSON: {"displayTimeUnit":"ms","traceEvents":[...]}.
  /// Timestamps are microseconds on the monotonic axis; load the file in
  /// Perfetto or about:tracing.
  std::string renderChromeTrace() const;

private:
  std::atomic<bool> Enabled{false};
  mutable std::mutex Mu;
  RingBuffer<TraceEvent> Ring;
  uint64_t Dropped = 0;
};

/// The process-wide recorder (never destroyed, like obs::metrics()).
TraceRecorder &trace();

/// Small dense id for the calling thread (0, 1, 2... in first-use
/// order) — stabler across runs than the platform thread id, and what
/// the Chrome viewer groups tracks by.
uint32_t traceThreadId();

/// Records an instant event if tracing is enabled.
void traceInstant(const char *Name, const char *Cat = "cdvs",
                  const char *ArgKey = nullptr, double ArgVal = 0.0);

/// RAII span: stamps the interval from construction to destruction on
/// the current thread's track. All work is skipped when tracing is
/// disabled at construction time.
class TraceSpan {
public:
  explicit TraceSpan(const char *Name, const char *Cat = "cdvs") {
    if (trace().enabled()) {
      E.Name = Name;
      E.Cat = Cat;
      E.StartNs = monotonicNanos();
    }
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;
  ~TraceSpan() {
    if (E.Name) {
      E.DurNs = monotonicNanos() - E.StartNs;
      E.Tid = traceThreadId();
      trace().record(E);
    }
  }

  /// Attaches a numeric arg (at most two; extras are dropped). \p Key
  /// must outlive the recorder (use literals).
  void arg(const char *Key, double Value) {
    if (!E.Name)
      return;
    if (!E.ArgKey0) {
      E.ArgKey0 = Key;
      E.ArgVal0 = Value;
    } else if (!E.ArgKey1) {
      E.ArgKey1 = Key;
      E.ArgVal1 = Value;
    }
  }

  /// Closes the span now instead of at scope exit (for stages whose
  /// lexical scope outlives the measured region). Idempotent.
  void end() {
    if (E.Name) {
      E.DurNs = monotonicNanos() - E.StartNs;
      E.Tid = traceThreadId();
      trace().record(E);
      E.Name = nullptr;
    }
  }

  /// True when this span is live (tracing was enabled at construction).
  bool active() const { return E.Name != nullptr; }

private:
  TraceEvent E;
};

} // namespace obs
} // namespace cdvs

#endif // CDVS_OBS_TRACE_H
