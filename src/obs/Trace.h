//===- obs/Trace.h - Structured tracing with a ring-buffer sink -*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scoped-span tracing for the scheduling pipeline. A TraceSpan stamps
/// monotonic begin/end times (support/Clock.h) for a named scope; spans
/// on the same thread nest by time containment, which is exactly how the
/// Chrome trace_event viewer (about:tracing, Perfetto) reconstructs call
/// trees, so explicit parent ids are not needed within one process.
/// Instant events mark points in time (incumbent updates, admissions).
///
/// For requests that cross processes (router -> server -> peer), a
/// thread-local SpanContext carries the distributed identity: a 128-bit
/// trace id, the nearest enclosing span id, and the sampling decision.
/// A ScopedSpanContext installs the context decoded from a wire frame;
/// every TraceSpan opened underneath allocates its own span id, stamps
/// trace/span/parent ids into its event, and becomes the parent of
/// deeper spans. dvs-stat stitches the per-process dumps back into one
/// timeline by these ids.
///
/// The sink is a bounded drop-oldest ring (support/RingBuffer.h): a long
/// run keeps the newest events and never grows. flushChromeTrace()
/// serializes the surviving events as Chrome trace_event JSON.
///
/// Overhead discipline: tracing is compiled in but DISABLED by default.
/// Every entry point checks one relaxed atomic bool first; a disabled
/// span construct/destruct is a load + branch and touches no clock, no
/// lock, no memory. Enabled spans take the recorder mutex only at scope
/// exit (one push per span). Span and category names must be string
/// literals (or otherwise outlive the recorder) — events store the
/// pointers, never copies.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_OBS_TRACE_H
#define CDVS_OBS_TRACE_H

#include "support/Clock.h"
#include "support/RingBuffer.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace cdvs {
namespace obs {

/// One trace event. Complete spans ('X') carry a duration; instants
/// ('i') are points. Up to two numeric args ride along and land in the
/// viewer's args pane.
struct TraceEvent {
  const char *Name = nullptr;
  const char *Cat = "cdvs";
  char Phase = 'X'; ///< 'X' complete, 'i' instant
  uint32_t Tid = 0;
  uint64_t StartNs = 0;
  uint64_t DurNs = 0;
  const char *ArgKey0 = nullptr;
  double ArgVal0 = 0.0;
  const char *ArgKey1 = nullptr;
  double ArgVal1 = 0.0;
  /// Distributed identity (all zero for spans opened outside any
  /// request context — local dvsd runs render exactly as before).
  uint64_t TraceHi = 0;
  uint64_t TraceLo = 0;
  uint64_t SpanId = 0;
  uint64_t ParentSpan = 0;
};

/// The thread's current position in a distributed trace: which trace it
/// serves and which span is the nearest open ancestor. Installed from a
/// decoded wire frame (ScopedSpanContext), advanced by TraceSpan.
struct SpanContext {
  uint64_t TraceHi = 0;
  uint64_t TraceLo = 0;
  uint64_t Span = 0;
  bool Sampled = false;

  bool valid() const { return TraceHi != 0 || TraceLo != 0; }
};

/// The calling thread's current context (zero when none installed).
SpanContext currentSpanContext();
/// Replaces the calling thread's context.
void setSpanContext(const SpanContext &Ctx);
/// A fresh process-unique span id (never zero).
uint64_t nextSpanId();

/// RAII: installs \p Ctx for the calling thread, restores the previous
/// context on destruction. Used at wire boundaries (request handling,
/// peer-fetch serving) where the context arrives by frame, not by
/// lexical nesting.
class ScopedSpanContext {
public:
  explicit ScopedSpanContext(const SpanContext &Ctx)
      : Saved(currentSpanContext()) {
    setSpanContext(Ctx);
  }
  ScopedSpanContext(const ScopedSpanContext &) = delete;
  ScopedSpanContext &operator=(const ScopedSpanContext &) = delete;
  ~ScopedSpanContext() { setSpanContext(Saved); }

private:
  SpanContext Saved;
};

/// Bounded trace sink; see the file comment.
class TraceRecorder {
public:
  explicit TraceRecorder(size_t Capacity = 1 << 16);

  /// Flips recording on or off; off drops events at the check, not the
  /// sink.
  void setEnabled(bool On) {
    Enabled.store(On, std::memory_order_relaxed);
  }
  bool enabled() const {
    return Enabled.load(std::memory_order_relaxed);
  }

  /// Drops all buffered events and re-sizes the ring.
  void reset(size_t Capacity);
  /// Drops all buffered events (capacity kept, dropped count cleared).
  void clear();

  void record(const TraceEvent &E);

  size_t size() const;
  /// Events lost to ring overwrite since the last clear/reset.
  uint64_t dropped() const;

  /// Serializes the surviving events (oldest first) as Chrome
  /// trace_event JSON: {"displayTimeUnit":"ms","traceEvents":[...]}.
  /// Timestamps are microseconds on the monotonic axis; load the file in
  /// Perfetto or about:tracing. Events carry \p Pid, and a non-null
  /// \p ProcessName adds a process_name metadata record so multi-process
  /// assemblies (dvs-stat --merge-trace) label tracks by role. Spans
  /// recorded under a SpanContext carry their trace/span/parent ids as
  /// hex strings.
  std::string renderChromeTrace(int Pid = 1,
                                const char *ProcessName = nullptr) const;

private:
  std::atomic<bool> Enabled{false};
  mutable std::mutex Mu;
  RingBuffer<TraceEvent> Ring;
  uint64_t Dropped = 0;
};

/// The process-wide recorder (never destroyed, like obs::metrics()).
TraceRecorder &trace();

/// Small dense id for the calling thread (0, 1, 2... in first-use
/// order) — stabler across runs than the platform thread id, and what
/// the Chrome viewer groups tracks by.
uint32_t traceThreadId();

/// Records an instant event if tracing is enabled.
void traceInstant(const char *Name, const char *Cat = "cdvs",
                  const char *ArgKey = nullptr, double ArgVal = 0.0);

/// RAII span: stamps the interval from construction to destruction on
/// the current thread's track. All work is skipped when tracing is
/// disabled at construction time.
class TraceSpan {
public:
  explicit TraceSpan(const char *Name, const char *Cat = "cdvs") {
    if (trace().enabled()) {
      E.Name = Name;
      E.Cat = Cat;
      E.StartNs = monotonicNanos();
      SpanContext Ctx = currentSpanContext();
      if (Ctx.valid()) {
        // Tag the event with the distributed identity and make this
        // span the parent of anything opened while it is live.
        E.TraceHi = Ctx.TraceHi;
        E.TraceLo = Ctx.TraceLo;
        E.ParentSpan = Ctx.Span;
        E.SpanId = nextSpanId();
        Saved = Ctx;
        Ctx.Span = E.SpanId;
        setSpanContext(Ctx);
        CtxPushed = true;
      }
    }
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;
  ~TraceSpan() { end(); }

  /// Attaches a numeric arg (at most two; extras are dropped). \p Key
  /// must outlive the recorder (use literals).
  void arg(const char *Key, double Value) {
    if (!E.Name)
      return;
    if (!E.ArgKey0) {
      E.ArgKey0 = Key;
      E.ArgVal0 = Value;
    } else if (!E.ArgKey1) {
      E.ArgKey1 = Key;
      E.ArgVal1 = Value;
    }
  }

  /// Closes the span now instead of at scope exit (for stages whose
  /// lexical scope outlives the measured region). Idempotent.
  void end() {
    if (E.Name) {
      E.DurNs = monotonicNanos() - E.StartNs;
      E.Tid = traceThreadId();
      trace().record(E);
      E.Name = nullptr;
    }
    if (CtxPushed) {
      setSpanContext(Saved);
      CtxPushed = false;
    }
  }

  /// True when this span is live (tracing was enabled at construction).
  bool active() const { return E.Name != nullptr; }

  /// This span's distributed id (0 outside a SpanContext).
  uint64_t spanId() const { return E.SpanId; }

private:
  TraceEvent E;
  SpanContext Saved;
  bool CtxPushed = false;
};

} // namespace obs
} // namespace cdvs

#endif // CDVS_OBS_TRACE_H
