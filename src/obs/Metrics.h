//===- obs/Metrics.h - Process-wide metrics registry ------------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The repo's metrics vocabulary: counters, gauges, and fixed-bucket
/// histograms, registered once by name (+ optional labels) in a
/// MetricsRegistry and updated lock-free afterwards — every mutation is
/// a single relaxed atomic op, so instrumented hot paths (B&B nodes,
/// simulator runs, cache shards) pay nanoseconds, not locks.
///
/// Registration is get-or-create and idempotent: a (name, labels) pair
/// always resolves to the same instrument, and the reference stays valid
/// for the registry's lifetime (instruments are never deallocated), so
/// call sites cache `static Counter &C = metrics().counter(...)` and
/// never touch the registry lock again.
///
/// Export: renderPrometheus() emits the text exposition format
/// (HELP/TYPE headers, labeled series, cumulative `_bucket{le=...}` +
/// `_sum`/`_count` for histograms) and renderJson() the same snapshot as
/// one JSON object, parseable by service/JsonLite. Snapshots taken while
/// writers run are per-instrument atomic, not globally consistent —
/// exactly the Prometheus scrape contract.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_OBS_METRICS_H
#define CDVS_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace cdvs {
namespace obs {

/// Monotonically increasing value. Doubles keep energy/seconds totals
/// exact enough (integers are exact to 2^53).
class Counter {
public:
  void inc(double Delta = 1.0) {
    V.fetch_add(Delta, std::memory_order_relaxed);
  }
  double value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<double> V{0.0};
};

/// A value that can go up and down (queue depths, configuration).
class Gauge {
public:
  void set(double Value) { V.store(Value, std::memory_order_relaxed); }
  void add(double Delta) { V.fetch_add(Delta, std::memory_order_relaxed); }
  /// Raises the gauge to \p Value if larger (peak tracking).
  void max(double Value) {
    double Cur = V.load(std::memory_order_relaxed);
    while (Cur < Value &&
           !V.compare_exchange_weak(Cur, Value, std::memory_order_relaxed))
      ;
  }
  double value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<double> V{0.0};
};

/// Fixed-bucket histogram with Prometheus `le` semantics: an observation
/// V lands in the first bucket whose upper bound satisfies V <= le; a
/// +Inf overflow bucket is implicit. Bucket counts are stored
/// non-cumulative and summed at export.
class Histogram {
public:
  /// \p UpperBounds must be strictly ascending and finite.
  explicit Histogram(std::vector<double> UpperBounds);

  void observe(double Value);

  /// Finite bucket bounds (excludes the implicit +Inf bucket).
  const std::vector<double> &upperBounds() const { return Ub; }
  /// Non-cumulative count of bucket \p I; I == upperBounds().size() is
  /// the +Inf bucket.
  uint64_t bucketCount(size_t I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return N.load(std::memory_order_relaxed); }
  double sum() const { return Sum.load(std::memory_order_relaxed); }

private:
  std::vector<double> Ub;
  std::unique_ptr<std::atomic<uint64_t>[]> Buckets; ///< Ub.size() + 1
  std::atomic<uint64_t> N{0};
  std::atomic<double> Sum{0.0};
};

/// Label set of one series; order is preserved into the exposition.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// `Count` buckets spaced linearly: Start, Start + Width, ...
std::vector<double> linearBuckets(double Start, double Width, int Count);
/// `Count` buckets spaced geometrically: Start, Start * Factor, ...
std::vector<double> exponentialBuckets(double Start, double Factor,
                                       int Count);
/// The default latency ladder: 1 us .. ~4.2 s, factor 4 (12 buckets).
/// One ladder everywhere keeps stage latencies cross-comparable.
const std::vector<double> &latencyBucketsSeconds();

/// Quantile estimate over cumulative histogram buckets, Prometheus
/// histogram_quantile style: \p Buckets is (le, cumulative count)
/// sorted ascending, normally ending with +Inf. Interpolates linearly
/// inside the bucket holding rank Q*count, with exact edges: Q <= 0
/// returns the first populated bucket's lower bound, Q >= 1 the last
/// populated bucket's upper bound (its lower bound when that bucket is
/// +Inf), and a distribution confined to one bucket returns that
/// bucket's upper bound — never a NaN, never a value outside the
/// populated range. Empty or all-zero buckets return 0.
double bucketQuantile(const std::vector<std::pair<double, double>> &Buckets,
                      double Q);

/// Name-keyed instrument store; see the file comment.
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// Get-or-create. \p Name must match the Prometheus metric-name
  /// grammar; re-registering an existing (name, labels) pair returns the
  /// existing instrument (the kind must match). References stay valid
  /// for the registry's lifetime.
  Counter &counter(const std::string &Name, const std::string &Help,
                   Labels L = {});
  Gauge &gauge(const std::string &Name, const std::string &Help,
               Labels L = {});
  /// \p UpperBounds is consulted only on first registration.
  Histogram &histogram(const std::string &Name, const std::string &Help,
                       const std::vector<double> &UpperBounds,
                       Labels L = {});

  /// Prometheus text exposition format, families sorted by name.
  std::string renderPrometheus() const;
  /// The same snapshot as one JSON object keyed by family name.
  std::string renderJson() const;

  /// Sorted names of every registered family (rename tripwire for
  /// scripts/check.sh).
  std::vector<std::string> familyNames() const;

private:
  enum class Kind { Counter, Gauge, Histogram };

  struct Series {
    Labels L;
    std::unique_ptr<Counter> C;
    std::unique_ptr<Gauge> G;
    std::unique_ptr<Histogram> H;
  };

  struct Family {
    Kind K = Kind::Counter;
    std::string Help;
    std::vector<double> Buckets; ///< histogram families only
    std::vector<std::unique_ptr<Series>> SeriesList;
  };

  Series &getOrCreate(const std::string &Name, const std::string &Help,
                      Kind K, const Labels &L,
                      const std::vector<double> *Buckets);

  mutable std::mutex Mu;
  std::map<std::string, Family> Families;
};

/// The process-wide registry every subsystem instruments into. Never
/// destroyed (leaked on exit) so instrumented code may run during static
/// teardown.
MetricsRegistry &metrics();

} // namespace obs
} // namespace cdvs

#endif // CDVS_OBS_METRICS_H
