//===- obs/Metrics.cpp - Process-wide metrics registry ---------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

using namespace cdvs;
using namespace cdvs::obs;

namespace {

/// Prometheus metric-name grammar: [a-zA-Z_:][a-zA-Z0-9_:]*
bool validMetricName(const std::string &Name) {
  if (Name.empty())
    return false;
  auto Head = [](char C) {
    return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_' ||
           C == ':';
  };
  if (!Head(Name[0]))
    return false;
  for (char C : Name.substr(1))
    if (!Head(C) && !(C >= '0' && C <= '9'))
      return false;
  return true;
}

/// Label-name grammar: [a-zA-Z_][a-zA-Z0-9_]*
bool validLabelName(const std::string &Name) {
  if (Name.empty())
    return false;
  auto Head = [](char C) {
    return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_';
  };
  if (!Head(Name[0]))
    return false;
  for (char C : Name.substr(1))
    if (!Head(C) && !(C >= '0' && C <= '9'))
      return false;
  return true;
}

/// Shortest round-trippable-enough decimal for exposition values.
std::string formatValue(double V) {
  if (std::isinf(V))
    return V > 0 ? "+Inf" : "-Inf";
  if (V == std::floor(V) && std::fabs(V) < 1e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.0f", V);
    return Buf;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.10g", V);
  return Buf;
}

/// Escapes a label value per the exposition format (\\, \", \n).
std::string escapeLabelValue(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '\\')
      Out += "\\\\";
    else if (C == '"')
      Out += "\\\"";
    else if (C == '\n')
      Out += "\\n";
    else
      Out += C;
  }
  return Out;
}

/// Renders {a="x",b="y"}; \p Extra appends one more pair (histogram le).
std::string labelBlock(const Labels &L, const std::string &ExtraKey = "",
                       const std::string &ExtraVal = "") {
  if (L.empty() && ExtraKey.empty())
    return "";
  std::string Out = "{";
  bool First = true;
  for (const auto &[K, V] : L) {
    if (!First)
      Out += ",";
    First = false;
    Out += K + "=\"" + escapeLabelValue(V) + "\"";
  }
  if (!ExtraKey.empty()) {
    if (!First)
      Out += ",";
    Out += ExtraKey + "=\"" + ExtraVal + "\"";
  }
  return Out + "}";
}

/// Escapes for a JSON string literal (the subset JsonLite understands).
std::string jsonStr(const std::string &S) {
  std::string Out = "\"";
  for (char C : S) {
    if (C == '\\' || C == '"')
      (Out += '\\') += C;
    else if (C == '\n')
      Out += "\\n";
    else
      Out += C;
  }
  return Out + "\"";
}

} // namespace

Histogram::Histogram(std::vector<double> UpperBounds)
    : Ub(std::move(UpperBounds)),
      Buckets(new std::atomic<uint64_t>[Ub.size() + 1]) {
  for (size_t I = 0; I + 1 < Ub.size(); ++I)
    assert(Ub[I] < Ub[I + 1] && "histogram bounds must ascend");
  for (size_t I = 0; I <= Ub.size(); ++I)
    Buckets[I].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double Value) {
  // First bound >= Value (le semantics); past-the-end is the +Inf bucket.
  size_t I = std::lower_bound(Ub.begin(), Ub.end(), Value) - Ub.begin();
  Buckets[I].fetch_add(1, std::memory_order_relaxed);
  N.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Value, std::memory_order_relaxed);
}

std::vector<double> cdvs::obs::linearBuckets(double Start, double Width,
                                             int Count) {
  std::vector<double> B;
  for (int I = 0; I < Count; ++I)
    B.push_back(Start + Width * I);
  return B;
}

std::vector<double> cdvs::obs::exponentialBuckets(double Start,
                                                  double Factor,
                                                  int Count) {
  std::vector<double> B;
  double V = Start;
  for (int I = 0; I < Count; ++I, V *= Factor)
    B.push_back(V);
  return B;
}

const std::vector<double> &cdvs::obs::latencyBucketsSeconds() {
  static const std::vector<double> B =
      exponentialBuckets(1e-6, 4.0, 12); // 1us .. ~4.2s, +Inf above
  return B;
}

double cdvs::obs::bucketQuantile(
    const std::vector<std::pair<double, double>> &Buckets, double Q) {
  if (Buckets.empty())
    return 0.0;
  double Total = Buckets.back().second;
  if (Total <= 0.0)
    return 0.0;
  auto lowerBound = [&](size_t I) {
    return I == 0 ? 0.0 : Buckets[I - 1].first;
  };
  // First and last populated buckets bound everything observable.
  size_t First = 0;
  while (Buckets[First].second <= 0.0)
    ++First;
  size_t Last = First;
  while (Buckets[Last].second < Total)
    ++Last;
  if (Q <= 0.0)
    return lowerBound(First);
  if (Q >= 1.0 || First == Last)
    // The edge (and a distribution confined to one bucket) has no
    // interpolation room: answer the tightest knowable bound.
    return std::isinf(Buckets[Last].first) ? lowerBound(Last)
                                           : Buckets[Last].first;
  double Rank = Q * Total;
  for (size_t I = First; I <= Last; ++I) {
    if (Buckets[I].second >= Rank) {
      double Lo = lowerBound(I);
      double LoCount = I == 0 ? 0.0 : Buckets[I - 1].second;
      double Hi = Buckets[I].first;
      if (std::isinf(Hi))
        return Lo; // best knowable bound
      double Span = Buckets[I].second - LoCount;
      double Frac = Span > 0.0 ? (Rank - LoCount) / Span : 0.0;
      return Lo + Frac * (Hi - Lo);
    }
  }
  return Buckets[Last].first;
}

MetricsRegistry::Series &
MetricsRegistry::getOrCreate(const std::string &Name,
                             const std::string &Help, Kind K,
                             const Labels &L,
                             const std::vector<double> *Buckets) {
  assert(validMetricName(Name) && "bad metric name");
  for ([[maybe_unused]] const auto &[LK, LV] : L)
    assert(validLabelName(LK) && "bad label name");

  std::lock_guard<std::mutex> Lock(Mu);
  auto [It, Inserted] = Families.try_emplace(Name);
  Family &F = It->second;
  if (Inserted) {
    F.K = K;
    F.Help = Help;
    if (Buckets)
      F.Buckets = *Buckets;
  } else {
    assert(F.K == K && "metric re-registered with a different kind");
  }
  for (auto &S : F.SeriesList)
    if (S->L == L)
      return *S;
  auto S = std::make_unique<Series>();
  S->L = L;
  switch (K) {
  case Kind::Counter:
    S->C = std::make_unique<Counter>();
    break;
  case Kind::Gauge:
    S->G = std::make_unique<Gauge>();
    break;
  case Kind::Histogram:
    S->H = std::make_unique<Histogram>(F.Buckets);
    break;
  }
  F.SeriesList.push_back(std::move(S));
  return *F.SeriesList.back();
}

Counter &MetricsRegistry::counter(const std::string &Name,
                                  const std::string &Help, Labels L) {
  return *getOrCreate(Name, Help, Kind::Counter, L, nullptr).C;
}

Gauge &MetricsRegistry::gauge(const std::string &Name,
                              const std::string &Help, Labels L) {
  return *getOrCreate(Name, Help, Kind::Gauge, L, nullptr).G;
}

Histogram &MetricsRegistry::histogram(const std::string &Name,
                                      const std::string &Help,
                                      const std::vector<double> &Ub,
                                      Labels L) {
  return *getOrCreate(Name, Help, Kind::Histogram, L, &Ub).H;
}

std::string MetricsRegistry::renderPrometheus() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Out;
  for (const auto &[Name, F] : Families) {
    Out += "# HELP " + Name + " " + F.Help + "\n";
    Out += "# TYPE " + Name + " ";
    Out += F.K == Kind::Counter
               ? "counter"
               : (F.K == Kind::Gauge ? "gauge" : "histogram");
    Out += "\n";
    for (const auto &S : F.SeriesList) {
      switch (F.K) {
      case Kind::Counter:
        Out += Name + labelBlock(S->L) + " " +
               formatValue(S->C->value()) + "\n";
        break;
      case Kind::Gauge:
        Out += Name + labelBlock(S->L) + " " +
               formatValue(S->G->value()) + "\n";
        break;
      case Kind::Histogram: {
        const Histogram &H = *S->H;
        uint64_t Cum = 0;
        for (size_t I = 0; I < H.upperBounds().size(); ++I) {
          Cum += H.bucketCount(I);
          Out += Name + "_bucket" +
                 labelBlock(S->L, "le",
                            formatValue(H.upperBounds()[I])) +
                 " " + std::to_string(Cum) + "\n";
        }
        Cum += H.bucketCount(H.upperBounds().size());
        Out += Name + "_bucket" + labelBlock(S->L, "le", "+Inf") + " " +
               std::to_string(Cum) + "\n";
        Out += Name + "_sum" + labelBlock(S->L) + " " +
               formatValue(H.sum()) + "\n";
        Out += Name + "_count" + labelBlock(S->L) + " " +
               std::to_string(H.count()) + "\n";
        break;
      }
      }
    }
  }
  return Out;
}

std::string MetricsRegistry::renderJson() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Out = "{";
  bool FirstFam = true;
  for (const auto &[Name, F] : Families) {
    if (!FirstFam)
      Out += ",";
    FirstFam = false;
    Out += jsonStr(Name) + ":{\"type\":";
    Out += F.K == Kind::Counter
               ? "\"counter\""
               : (F.K == Kind::Gauge ? "\"gauge\"" : "\"histogram\"");
    Out += ",\"help\":" + jsonStr(F.Help) + ",\"series\":[";
    bool FirstSer = true;
    for (const auto &S : F.SeriesList) {
      if (!FirstSer)
        Out += ",";
      FirstSer = false;
      Out += "{\"labels\":{";
      bool FirstLab = true;
      for (const auto &[K, V] : S->L) {
        if (!FirstLab)
          Out += ",";
        FirstLab = false;
        Out += jsonStr(K) + ":" + jsonStr(V);
      }
      Out += "}";
      switch (F.K) {
      case Kind::Counter:
        Out += ",\"value\":" + formatValue(S->C->value());
        break;
      case Kind::Gauge:
        Out += ",\"value\":" + formatValue(S->G->value());
        break;
      case Kind::Histogram: {
        // Counts are cumulative, matching the Prometheus meaning of an
        // `le` bound, so both exports describe the same distribution.
        const Histogram &H = *S->H;
        Out += ",\"buckets\":[";
        uint64_t Cum = 0;
        for (size_t I = 0; I <= H.upperBounds().size(); ++I) {
          if (I)
            Out += ",";
          std::string Le = I < H.upperBounds().size()
                               ? formatValue(H.upperBounds()[I])
                               : "+Inf";
          Cum += H.bucketCount(I);
          Out += "{\"le\":" + jsonStr(Le) +
                 ",\"count\":" + std::to_string(Cum) + "}";
        }
        Out += "],\"sum\":" + formatValue(H.sum()) +
               ",\"count\":" + std::to_string(H.count());
        break;
      }
      }
      Out += "}";
    }
    Out += "]}";
  }
  return Out + "}";
}

std::vector<std::string> MetricsRegistry::familyNames() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::string> Names;
  Names.reserve(Families.size());
  for (const auto &[Name, F] : Families)
    Names.push_back(Name);
  return Names;
}

MetricsRegistry &cdvs::obs::metrics() {
  static MetricsRegistry *R = new MetricsRegistry();
  return *R;
}
